#!/usr/bin/env python
"""Validate emitted run manifests against the checked-in JSON schema.

Usage::

    python scripts/validate_manifest.py schemas/run_manifest.schema.json out.json
    python scripts/validate_manifest.py schemas/run_manifest.schema.json DIR/table5.json --bench

Plain mode validates one run manifest (``repro run --manifest``); with
``--bench`` the file is an experiment-level manifest (``repro bench
--manifest DIR``): the aggregate keys are checked and every entry of
``runs`` is validated against the run schema.

Exits non-zero listing every problem found.  Dependency-free: the
validation logic lives in :func:`repro.core.manifest.validate_manifest`
and supports the JSON Schema subset the checked-in schema uses.
"""

from __future__ import annotations

import argparse
import json
import sys

BENCH_REQUIRED = {
    "experiment": str,
    "wall_clock_s": (int, float),
    "workers": int,
    "n_runs": int,
    "runs": list,
    "totals": dict,
}

TOTALS_REQUIRED = (
    "cost_usd", "unknown_price", "tokens", "requests", "retries",
    "failures", "cache_hits", "cache_lookups", "cache_hit_rate",
)

# Resilience totals (PR 4) are optional — manifests written before the
# chaos harness keep validating — but when present they must be typed.
TOTALS_OPTIONAL = {
    "quarantined": int,
    "degraded": bool,
    "coverage": (int, float),
}


def validate_bench(instance: dict, run_schema: dict) -> list[str]:
    problems: list[str] = []
    for key, expected in BENCH_REQUIRED.items():
        if key not in instance:
            problems.append(f"$: missing required key {key!r}")
        elif not isinstance(instance[key], expected):
            problems.append(
                f"$.{key}: expected {expected}, got {type(instance[key]).__name__}"
            )
    totals = instance.get("totals", {})
    for key in TOTALS_REQUIRED:
        if key not in totals:
            problems.append(f"$.totals: missing required key {key!r}")
    for key, expected in TOTALS_OPTIONAL.items():
        if key in totals and not isinstance(totals[key], expected):
            problems.append(
                f"$.totals.{key}: expected {expected}, "
                f"got {type(totals[key]).__name__}"
            )
    from repro.core.manifest import validate_manifest

    for index, run in enumerate(instance.get("runs", [])):
        problems.extend(
            validate_manifest(run, run_schema, path=f"$.runs[{index}]")
        )
    if instance.get("n_runs") != len(instance.get("runs", [])):
        problems.append("$.n_runs: does not match len(runs)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("schema", help="path to run_manifest.schema.json")
    parser.add_argument("manifest", help="manifest JSON file to validate")
    parser.add_argument("--bench", action="store_true",
                        help="treat the file as a bench (experiment-level) "
                             "manifest wrapping per-run manifests")
    args = parser.parse_args(argv)

    from repro.core.manifest import validate_manifest

    with open(args.schema, encoding="utf-8") as handle:
        schema = json.load(handle)
    with open(args.manifest, encoding="utf-8") as handle:
        instance = json.load(handle)

    if args.bench:
        problems = validate_bench(instance, schema)
    else:
        problems = validate_manifest(instance, schema)
    if problems:
        for problem in problems:
            print(f"INVALID {args.manifest}: {problem}", file=sys.stderr)
        return 1
    print(f"OK {args.manifest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
