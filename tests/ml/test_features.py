"""Tests for repro.ml.features."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import FeatureHasher, StandardScaler, hash_token


class TestHashToken:
    def test_stable_across_calls(self):
        assert hash_token("sony", 512) == hash_token("sony", 512)

    def test_bucket_in_range(self):
        bucket, sign = hash_token("anything", 64)
        assert 0 <= bucket < 64
        assert sign in (1.0, -1.0)

    def test_salt_changes_mapping(self):
        assert hash_token("sony", 4096) != hash_token("sony", 4096, salt="other")

    @given(st.text(min_size=1, max_size=20), st.integers(min_value=1, max_value=1024))
    def test_always_valid(self, token, dim):
        bucket, sign = hash_token(token, dim)
        assert 0 <= bucket < dim


class TestFeatureHasher:
    def test_unit_norm(self):
        row = FeatureHasher(dim=128).transform_one(["a", "b", "c"])
        assert np.linalg.norm(row) == pytest.approx(1.0)

    def test_empty_tokens_zero_vector(self):
        row = FeatureHasher(dim=16).transform_one([])
        assert np.linalg.norm(row) == 0.0

    def test_batch_shape(self):
        matrix = FeatureHasher(dim=32).transform([["a"], ["b", "c"]])
        assert matrix.shape == (2, 32)

    def test_empty_batch(self):
        assert FeatureHasher(dim=8).transform([]).shape == (0, 8)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            FeatureHasher(dim=0)

    def test_same_tokens_same_vector(self):
        hasher = FeatureHasher(dim=64)
        assert np.allclose(hasher.transform_one(["x", "y"]),
                           hasher.transform_one(["x", "y"]))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        matrix = np.random.default_rng(0).normal(5.0, 2.0, size=(200, 3))
        scaled = StandardScaler().fit_transform(matrix)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_guarded(self):
        matrix = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(matrix)
        assert np.isfinite(scaled).all()

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
