"""Tests for repro.ml.naive_bayes."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.ml import MultinomialNaiveBayes


def _toy():
    model = MultinomialNaiveBayes(alpha=0.5)
    model.partial_fit(["rain", "wet", "cold"], "winter")
    model.partial_fit(["snow", "cold", "ice"], "winter")
    model.partial_fit(["sun", "hot", "beach"], "summer")
    model.partial_fit(["hot", "dry", "sun"], "summer")
    return model


class TestPrediction:
    def test_obvious_classes(self):
        model = _toy()
        assert model.predict(["cold", "snow"]) == "winter"
        assert model.predict(["sun", "beach"]) == "summer"

    def test_unseen_tokens_are_ignored(self):
        model = _toy()
        assert model.predict(["cold", "zzz", "qqq"]) == "winter"

    def test_top_k_ordering(self):
        model = _toy()
        ranked = model.top_k(["cold"], k=2)
        assert ranked[0][0] == "winter"
        assert ranked[0][1] >= ranked[1][1]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().predict(["x"])

    def test_unknown_label_score(self):
        assert _toy().log_score(["cold"], "autumn") == -math.inf

    def test_fit_batch_equals_partial(self):
        batch = MultinomialNaiveBayes(alpha=0.5).fit(
            [["a", "b"], ["c"]], ["x", "y"]
        )
        partial = MultinomialNaiveBayes(alpha=0.5)
        partial.partial_fit(["a", "b"], "x")
        partial.partial_fit(["c"], "y")
        assert batch.log_score(["a"], "x") == partial.log_score(["a"], "x")

    def test_fit_length_mismatch(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([["a"]], ["x", "y"])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0.0)

    def test_invalid_prior_weight(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(prior_weight=-0.1)


class TestComplementMode:
    def test_resists_class_size_skew(self):
        """A discriminative token seen once must beat a 20x larger class."""
        model = MultinomialNaiveBayes(alpha=0.25, complement=True, prior_weight=0.2)
        for i in range(20):
            model.partial_fit(["common", f"filler{i}", "noise"], "big")
        model.partial_fit(["common", "area415", "noise"], "small")
        assert model.predict(["common", "area415"]) == "small"

    def test_vanilla_mode_prior_dominates(self):
        """Same data, vanilla NB with full prior: the big class wins.

        This contrast is exactly why the imputation models use complement
        NB.
        """
        model = MultinomialNaiveBayes(alpha=0.25, complement=False, prior_weight=1.0)
        for i in range(20):
            model.partial_fit(["common", f"filler{i}", "noise"], "big")
        model.partial_fit(["common", "area415", "noise"], "small")
        # "common"/"noise" appear 20x more often in the big class.
        assert model.predict(["common", "noise"]) == "big"


class TestProperties:
    @given(st.lists(
        st.tuples(
            st.lists(st.sampled_from("abcdef"), min_size=1, max_size=4),
            st.sampled_from(["x", "y"]),
        ),
        min_size=2, max_size=12,
    ).filter(lambda obs: len({label for _t, label in obs}) == 2))
    def test_prediction_is_a_known_class(self, observations):
        model = MultinomialNaiveBayes()
        for tokens, label in observations:
            model.partial_fit(tokens, label)
        assert model.predict(["a", "b"]) in model.classes

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=5))
    def test_scores_are_finite_for_known_classes(self, tokens):
        model = _toy()
        for label in model.classes:
            assert model.log_score(tokens, label) > -math.inf
