"""Tests for repro.ml.forest."""

import numpy as np
import pytest

from repro.ml import StumpForest


def _xorish(n=300, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(-1, 1, size=(n, 2))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(float)
    return features, labels


class TestForest:
    def test_learns_nonlinear_boundary(self):
        features, labels = _xorish()
        model = StumpForest(n_trees=40, max_depth=3, seed=0).fit(features, labels)
        assert (model.predict(features) == labels).mean() > 0.85

    def test_probabilities_in_unit_interval(self):
        features, labels = _xorish()
        probs = StumpForest(seed=1).fit(features, labels).predict_proba(features)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    def test_deterministic_given_seed(self):
        features, labels = _xorish()
        a = StumpForest(seed=7).fit(features, labels).predict_proba(features[:20])
        b = StumpForest(seed=7).fit(features, labels).predict_proba(features[:20])
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        features, labels = _xorish()
        a = StumpForest(seed=1).fit(features, labels).predict_proba(features)
        b = StumpForest(seed=2).fit(features, labels).predict_proba(features)
        assert not np.allclose(a, b)

    def test_pure_class(self):
        features = np.random.default_rng(0).normal(size=(20, 2))
        model = StumpForest().fit(features, np.ones(20))
        assert model.predict(features).all()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            StumpForest().predict(np.zeros((1, 2)))

    def test_empty_dataset(self):
        with pytest.raises(ValueError):
            StumpForest().fit(np.zeros((0, 2)), np.zeros(0))

    def test_invalid_n_trees(self):
        with pytest.raises(ValueError):
            StumpForest(n_trees=0)

    def test_depth_limits_capacity(self):
        features, labels = _xorish()
        shallow = StumpForest(n_trees=30, max_depth=1, seed=0).fit(features, labels)
        deep = StumpForest(n_trees=30, max_depth=4, seed=0).fit(features, labels)
        acc_shallow = (shallow.predict(features) == labels).mean()
        acc_deep = (deep.predict(features) == labels).mean()
        # Depth-1 stumps cannot express XOR; deeper trees can.
        assert acc_deep > acc_shallow
