"""Tests for repro.ml.validation."""

import pytest

from repro.ml import train_validation_split


class TestSplit:
    def test_sizes(self):
        train, valid = train_validation_split(list(range(100)), 0.1, seed=0)
        assert len(valid) == 10
        assert len(train) == 90

    def test_disjoint_and_complete(self):
        items = list(range(50))
        train, valid = train_validation_split(items, 0.2, seed=3)
        assert sorted(train + valid) == items

    def test_deterministic(self):
        items = list(range(40))
        a = train_validation_split(items, 0.25, seed=5)
        b = train_validation_split(items, 0.25, seed=5)
        assert a == b

    def test_seed_changes_split(self):
        items = list(range(40))
        a = train_validation_split(items, 0.25, seed=1)
        b = train_validation_split(items, 0.25, seed=2)
        assert a != b

    def test_stratified_preserves_classes(self):
        items = list(range(100))
        labels = [1 if i < 10 else 0 for i in items]
        train, valid = train_validation_split(
            items, 0.2, seed=0, stratify_labels=labels
        )
        assert any(i < 10 for i in valid), "minority class present in validation"
        assert any(i < 10 for i in train), "minority class never exhausted"

    def test_stratified_singleton_class_stays_in_train(self):
        items = ["only-positive"] + [f"n{i}" for i in range(20)]
        labels = [1] + [0] * 20
        train, _valid = train_validation_split(
            items, 0.2, seed=0, stratify_labels=labels
        )
        assert "only-positive" in train

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_validation_split([1, 2], 0.0)
        with pytest.raises(ValueError):
            train_validation_split([1, 2], 1.0)

    def test_stratify_length_mismatch(self):
        with pytest.raises(ValueError):
            train_validation_split([1, 2, 3], 0.5, stratify_labels=[0, 1])

    def test_tiny_input(self):
        train, valid = train_validation_split([1], 0.5)
        assert train == [1] and valid == []
