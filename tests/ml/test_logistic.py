"""Tests for repro.ml.logistic."""

import numpy as np
import pytest

from repro.ml import LogisticRegression


def _separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 3))
    labels = (features[:, 0] + 0.5 * features[:, 1] > 0).astype(float)
    return features, labels


class TestFit:
    def test_learns_separable_data(self):
        features, labels = _separable()
        model = LogisticRegression().fit(features, labels)
        assert (model.predict(features) == labels).mean() > 0.97

    def test_probabilities_in_unit_interval(self):
        features, labels = _separable()
        probs = LogisticRegression().fit(features, labels).predict_proba(features)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    def test_balanced_weights_help_skew(self):
        rng = np.random.default_rng(1)
        # 5% positives, cleanly separable on feature 0.
        features = rng.normal(size=(400, 2))
        labels = (features[:, 0] > 1.6).astype(float)
        balanced = LogisticRegression(class_weight="balanced").fit(features, labels)
        recall = (balanced.predict(features)[labels == 1] == 1).mean()
        assert recall > 0.8

    def test_deterministic(self):
        features, labels = _separable()
        a = LogisticRegression().fit(features, labels)
        b = LogisticRegression().fit(features, labels)
        assert np.allclose(a.weights_, b.weights_)

    def test_regularization_shrinks_weights(self):
        features, labels = _separable()
        lax = LogisticRegression(l2=1e-5).fit(features, labels)
        tight = LogisticRegression(l2=1.0).fit(features, labels)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(lax.weights_)


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_empty_dataset(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((0, 2)), np.zeros(0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_one_dimensional_features_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(3), np.zeros(3))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_zero_epochs_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(epochs=0)

    def test_single_class_does_not_crash(self):
        features = np.ones((10, 2))
        labels = np.zeros(10)
        model = LogisticRegression().fit(features, labels)
        assert model.predict(features).sum() == 0
