"""Performance smoke tests: guard against pathological slowdowns.

These are generous budgets (CI machines vary); their job is catching
accidental quadratic blowups, not micro-optimization.
"""

import time

import pytest

from repro.datasets import load_dataset
from repro.fm import SimulatedFoundationModel
from repro.knowledge.world import build_world


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestBudgets:
    def test_world_builds_quickly(self):
        assert _timed(lambda: build_world(n_tail_cities=20)) < 5.0

    def test_dataset_generation_quick(self):
        assert _timed(lambda: load_dataset("walmart_amazon", seed=7)) < 5.0

    def test_completion_throughput(self, fm_175b):
        prompts = [
            f"name: place {i}. phone: 415-775-70{i % 90 + 10:02d}. city?"
            for i in range(200)
        ]

        def run():
            for prompt in prompts:
                fm_175b.complete(prompt)

        assert _timed(run) < 10.0

    def test_matching_prompt_throughput(self, fm_175b):
        dataset = load_dataset("dblp_acm")
        from repro.core.prompts import build_entity_matching_prompt

        demos = dataset.train[:10]
        prompts = [
            build_entity_matching_prompt(pair, demos)
            for pair in dataset.test[:150]
        ]

        def run():
            for prompt in prompts:
                fm_175b.complete(prompt)

        # Demo similarities are memoized after the first prompt.
        assert _timed(run) < 15.0

    def test_tde_search_bounded(self):
        from repro.baselines import TdeSynthesizer

        dataset = load_dataset("stackoverflow")
        synthesizer = TdeSynthesizer()

        def run():
            for case in dataset.cases:
                synthesizer.run_case(case)

        assert _timed(run) < 20.0
