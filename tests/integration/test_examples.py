"""Every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=420,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their story"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
