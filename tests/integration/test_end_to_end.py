"""End-to-end integration: paper-shaped claims on reduced workloads.

These run the real pipelines (datasets → prompts → FM → metrics, plus
baselines) on small slices so the whole stack is exercised in seconds.
The full-size versions live in benchmarks/.
"""

import pytest

from repro.core.tasks import (
    run_entity_matching,
    run_error_detection,
    run_imputation,
    run_schema_matching,
    run_transformation,
)
from repro.datasets import load_dataset
from repro.api.backends import get_backend


class TestFewShotBeatsZeroShot:
    """The paper's headline: demonstrations move every task."""

    def test_entity_matching(self, fm_175b):
        dataset = load_dataset("walmart_amazon")
        zero = run_entity_matching(fm_175b, dataset, k=0, max_examples=120)
        few = run_entity_matching(fm_175b, dataset, k=10, selection="manual",
                                  max_examples=120)
        assert few.metric > zero.metric

    def test_error_detection(self, fm_175b):
        dataset = load_dataset("hospital")
        zero = run_error_detection(fm_175b, dataset, k=0, max_examples=300)
        few = run_error_detection(fm_175b, dataset, k=10, selection="manual",
                                  max_examples=300)
        assert zero.metric < 0.3
        assert few.metric > 0.85

    def test_imputation(self, fm_175b):
        dataset = load_dataset("restaurant")
        zero = run_imputation(fm_175b, dataset, k=0)
        few = run_imputation(fm_175b, dataset, k=10, selection="manual")
        assert few.metric >= zero.metric

    def test_schema_matching(self, fm_175b):
        dataset = load_dataset("synthea")
        zero = run_schema_matching(fm_175b, dataset, k=0)
        few = run_schema_matching(fm_175b, dataset, k=3, selection="manual")
        assert zero.metric < 0.1
        assert few.metric > 0.3

    def test_transformation(self, fm_175b):
        dataset = load_dataset("bing_querylogs")
        zero = run_transformation(fm_175b, dataset, k=0)
        few = run_transformation(fm_175b, dataset, k=3)
        assert few.metric > zero.metric + 0.2


class TestModelScaling:
    """Bigger simulated models are better, task by task."""

    def test_imputation_scales(self, fm_13b, fm_67b, fm_175b):
        dataset = load_dataset("restaurant")
        scores = [
            run_imputation(model, dataset, k=10, selection="random").metric
            for model in (fm_13b, fm_67b, fm_175b)
        ]
        assert scores[0] <= scores[1] + 0.05
        assert scores[1] <= scores[2] + 0.05
        assert scores[2] > scores[0]

    def test_hospital_needs_scale(self, fm_67b, fm_175b):
        dataset = load_dataset("hospital")
        small = run_error_detection(fm_67b, dataset, k=10, selection="manual",
                                    max_examples=300)
        large = run_error_detection(fm_175b, dataset, k=10, selection="manual",
                                    max_examples=300)
        assert small.metric < 0.1 < large.metric


class TestDeterminism:
    """Identical runs must be bit-identical — the repo's reproducibility
    contract."""

    def test_same_run_twice(self):
        dataset = load_dataset("beer")
        a = run_entity_matching(
            get_backend("gpt3-175b"), dataset, k=10,
            selection="manual",
        )
        b = run_entity_matching(
            get_backend("gpt3-175b"), dataset, k=10,
            selection="manual",
        )
        assert a.metric == b.metric
        assert a.predictions == b.predictions

    def test_dataset_rebuild_identical(self):
        a = load_dataset("restaurant")
        b = load_dataset("restaurant")
        assert [e.answer for e in a.test] == [e.answer for e in b.test]


class TestCostAccounting:
    def test_full_run_costs_are_tracked(self):
        from repro.api import CompletionClient

        client = CompletionClient("gpt3-175b")
        dataset = load_dataset("beer")
        run_entity_matching(client, dataset, k=5, selection="random",
                            max_examples=30)
        usage = client.usage.per_model["gpt3-175b"]
        assert usage.n_requests >= 30
        assert usage.cost_usd > 0
