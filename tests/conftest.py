"""Shared fixtures: expensive objects are built once per session."""

from __future__ import annotations

import pytest

from repro.fm import SimulatedFoundationModel
from repro.knowledge.world import default_world


@pytest.fixture(scope="session")
def world():
    return default_world()


@pytest.fixture(scope="session")
def kb(world):
    return world.kb


@pytest.fixture(scope="session")
def fm_175b():
    return SimulatedFoundationModel("gpt3-175b")


@pytest.fixture(scope="session")
def fm_67b():
    return SimulatedFoundationModel("gpt3-6.7b")


@pytest.fixture(scope="session")
def fm_13b():
    return SimulatedFoundationModel("gpt3-1.3b")
