"""Shared fixtures: expensive objects are built once per session."""

from __future__ import annotations

import pytest

from repro.api.backends import get_backend
from repro.knowledge.world import default_world


@pytest.fixture(scope="session")
def world():
    return default_world()


@pytest.fixture(scope="session")
def kb(world):
    return world.kb


@pytest.fixture(scope="session")
def fm_175b():
    return get_backend("gpt3-175b")


@pytest.fixture(scope="session")
def fm_67b():
    return get_backend("gpt3-6.7b")


@pytest.fixture(scope="session")
def fm_13b():
    return get_backend("gpt3-1.3b")
