"""The headline guarantee: exactly-once under violence.

Every test here compares a sharded multi-process run against the
single-process ``run_task`` oracle — predictions must be byte-identical
(positional list equality) and the merged manifest must report zero
duplicate backend calls, whatever was SIGKILLed along the way.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task
from repro.datasets import load_dataset
from repro.shard import ShardSupervisor, build_shard_plan, merge_run
from repro.shard.plan import ShardPlan

pytestmark = pytest.mark.smoke

TASK, DATASET, MODEL = "em", "fodors_zagats", "gpt3-175b"
K, SEED, MAX_EXAMPLES = 3, 0, 24

MANIFEST_SCHEMA = json.loads(
    (
        pathlib.Path(__file__).resolve().parents[2]
        / "schemas" / "run_manifest.schema.json"
    ).read_text()
)


def assert_schema_valid(manifest) -> None:
    problems = validate_manifest(manifest.to_dict(), MANIFEST_SCHEMA)
    assert problems == []


@pytest.fixture(scope="module")
def oracle():
    """Single-process reference predictions for the shared config."""
    run = run_task(
        TASK, MODEL, load_dataset(DATASET), k=K, selection="random",
        seed=SEED, max_examples=MAX_EXAMPLES,
    )
    return list(run.predictions)


def shard_plan(n_shards=4):
    return build_shard_plan(
        TASK, DATASET, model=MODEL, n_shards=n_shards, k=K,
        selection="random", seed=SEED, max_examples=MAX_EXAMPLES,
    )


def drive(run_dir, *, n_workers=2, n_shards=4, **kwargs):
    supervisor = ShardSupervisor(
        run_dir, shard_plan(n_shards), n_workers=n_workers,
        lease_ttl_s=2.0, **kwargs,
    )
    return supervisor.run()


class TestCleanRun:
    def test_matches_single_process_oracle(self, tmp_path, oracle):
        merged = drive(tmp_path / "run")
        assert merged.predictions == oracle
        assert merged.duplicate_backend_calls == 0
        assert merged.manifest.shards["chaos_kills"] == 0
        assert_schema_valid(merged.manifest)

    def test_merge_refuses_selection_that_calls_the_model(self, tmp_path):
        plan = build_shard_plan(
            TASK, DATASET, model=MODEL, n_shards=2, k=3,
            selection="manual", max_examples=8,
        )
        with pytest.raises(ValueError, match="random"):
            ShardSupervisor(tmp_path / "run", plan).run()

    def test_dirty_chaos_profile_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fully-recoverable"):
            ShardSupervisor(
                tmp_path / "run", shard_plan(), chaos_profile="garbage"
            )


class TestChaosRun:
    def test_worker_kills_leave_predictions_identical(self, tmp_path, oracle):
        merged = drive(
            tmp_path / "run", chaos_profile="shard-heavy", chaos_seed=0,
        )
        shards = merged.manifest.shards
        assert shards["chaos_kills"] >= 1, "the drill must actually kill"
        assert shards["restarts"] >= 1
        assert merged.predictions == oracle
        assert merged.duplicate_backend_calls == 0
        assert_schema_valid(merged.manifest)


class TestResumeDeterminism:
    """ISSUE matrix: {1, 4} workers x {thread, async} executors."""

    @pytest.mark.parametrize("n_workers", [1, 4])
    @pytest.mark.parametrize("executor_kind", ["thread", "async"])
    def test_matrix_cell_matches_oracle(
        self, tmp_path, oracle, n_workers, executor_kind
    ):
        merged = drive(
            tmp_path / "run", n_workers=n_workers,
            executor_kind=executor_kind, intra_workers=2,
        )
        assert merged.predictions == oracle
        assert merged.duplicate_backend_calls == 0
        assert merged.metric == pytest.approx(merged.metric)
        stable = {
            key: merged.manifest.to_dict()[key]
            for key in ("task", "dataset", "model", "k", "selection",
                        "seed", "n_examples", "metric")
        }
        reference = drive(tmp_path / "ref", n_workers=1)
        ref_stable = {
            key: reference.manifest.to_dict()[key] for key in stable
        }
        assert stable == ref_stable


class TestSupervisorViolence:
    def _spawn_shard_run(self, run_dir, extra=()):
        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        argv = [
            sys.executable, "-m", "repro", "shard-run", TASK, DATASET,
            "--run-dir", str(run_dir), "--shards", "4", "--workers", "2",
            "--k", str(K), "--seed", str(SEED),
            "--max-examples", str(MAX_EXAMPLES), "--lease-ttl-s", "2",
            *extra,
        ]
        return subprocess.Popen(
            argv, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )

    def test_sigkill_supervisor_then_resume_is_identical(
        self, tmp_path, oracle
    ):
        run_dir = tmp_path / "run"
        process = self._spawn_shard_run(run_dir)
        # Let it make partial progress, then kill the supervisor dead.
        deadline = time.monotonic() + 60
        journals = run_dir / "journals"
        while time.monotonic() < deadline:
            if journals.is_dir() and any(journals.iterdir()):
                break
            if process.poll() is not None:
                break
            time.sleep(0.05)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)

        # Workers notice the re-parenting and drain; then resume.
        time.sleep(1.0)
        merged = drive(run_dir, resume=True)
        assert merged.predictions == oracle
        assert merged.duplicate_backend_calls == 0
        assert_schema_valid(merged.manifest)

    def test_worker_exhaustion_reports_resumable_error(self, tmp_path):
        from repro.shard import ShardRunIncompleteError

        run_dir = tmp_path / "run"
        # One worker, zero restart budget, aggressive kill schedule: the
        # run cannot finish in one invocation.
        with pytest.raises(ShardRunIncompleteError, match="--resume"):
            drive(
                run_dir, n_workers=1, max_restarts=0,
                chaos_profile="shard-heavy", chaos_seed=0,
            )
        # The same directory resumes clean with chaos off (the plan
        # fingerprint excludes chaos knobs by design).
        merged = drive(run_dir, resume=True)
        assert merged.duplicate_backend_calls == 0
        assert merged.manifest.shards["resumed"] is True
        assert merged.manifest.shards["chaos_kills"] >= 1


class TestMergeGuards:
    def test_incomplete_run_refuses_to_merge(self, tmp_path):
        from repro.shard import IncompleteRunError

        plan = shard_plan()
        run_dir = tmp_path / "run"
        (run_dir / "journals").mkdir(parents=True)
        plan.save(run_dir / "plan.json")
        with pytest.raises(IncompleteRunError, match="--resume"):
            merge_run(run_dir, plan)

    def test_journal_from_another_plan_is_ignored(self, tmp_path):
        from repro.shard.merge import read_journal
        from repro.shard.worker import journal_path

        merged_dir = tmp_path / "run"
        drive(merged_dir, n_shards=2, n_workers=1)
        plan = ShardPlan.load(merged_dir / "plan.json")
        completed, _ = read_journal(
            journal_path(str(merged_dir), 0), plan.shard_fingerprint(0)
        )
        assert completed  # sanity: the real fingerprint reads fine
        wrong, _ = read_journal(
            journal_path(str(merged_dir), 0), "not-the-fingerprint"
        )
        assert wrong == {}
