"""Lease protocol: acquire, renew, release, steal, expiry, pid-death."""

import json
import os

import pytest

from repro.shard.lease import LeaseBoard, LeaseLostError

pytestmark = pytest.mark.smoke


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def board(tmp_path, clock):
    return LeaseBoard(tmp_path / "leases", ttl_s=10.0, clock=clock)


class TestAcquire:
    def test_acquire_then_conflict(self, board):
        lease = board.try_acquire(0, "w0")
        assert lease is not None and lease.owner == "w0"
        assert board.try_acquire(0, "w1") is None

    def test_release_frees_the_shard(self, board):
        lease = board.try_acquire(0, "w0")
        board.release(lease)
        assert board.try_acquire(0, "w1") is not None

    def test_independent_shards_coexist(self, board):
        assert board.try_acquire(0, "w0") is not None
        assert board.try_acquire(1, "w1") is not None


class TestRenew:
    def test_renew_pushes_expiry(self, board, clock):
        lease = board.try_acquire(0, "w0")
        clock.now += 6.0
        renewed = board.renew(lease)
        assert renewed.expires_at == clock.now + board.ttl_s
        assert renewed.token == lease.token

    def test_renew_after_steal_raises(self, board, clock):
        lease = board.try_acquire(0, "w0")
        clock.now += 11.0  # expired
        stolen = board.try_acquire(0, "w1")
        assert stolen is not None
        with pytest.raises(LeaseLostError):
            board.renew(lease)

    def test_release_after_steal_leaves_new_owner_alone(self, board, clock):
        lease = board.try_acquire(0, "w0")
        clock.now += 11.0
        board.try_acquire(0, "w1")
        board.release(lease)  # token mismatch: must be a no-op
        assert board.read(0).owner == "w1"


class TestSteal:
    def test_expired_lease_is_stolen(self, board, clock):
        board.try_acquire(0, "w0")
        clock.now += 10.0
        stolen = board.try_acquire(0, "w1")
        assert stolen is not None and stolen.owner == "w1"
        assert board.reclaimed == 1

    def test_live_lease_is_not_stolen(self, board, clock):
        board.try_acquire(0, "w0")
        clock.now += 5.0
        assert board.try_acquire(0, "w1") is None
        assert board.reclaimed == 0

    def test_dead_pid_is_stolen_before_expiry(self, tmp_path, clock):
        board = LeaseBoard(tmp_path / "leases", ttl_s=10.0, clock=clock)
        lease = board.try_acquire(0, "w0")
        # Rewrite the lease as if owned by a long-dead pid.
        path = board._path(0)
        payload = json.loads(open(path).read())
        payload["pid"] = 2**22 - 1  # far beyond any live pid here
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert clock.now < lease.expires_at  # not yet expired
        stolen = board.try_acquire(0, "w1")
        assert stolen is not None and stolen.owner == "w1"

    def test_torn_lease_file_reads_as_none(self, board):
        os.makedirs(board.directory, exist_ok=True)
        with open(board._path(3), "w") as handle:
            handle.write('{"shard_id": 3, "owner"')  # torn mid-write
        assert board.read(3) is None


class TestSweep:
    def test_sweep_reclaims_only_dead_leases(self, board, clock):
        board.try_acquire(0, "w0")
        board.try_acquire(1, "w0")
        clock.now += 11.0
        live = board.try_acquire(2, "w1")  # fresh, must survive
        assert live is not None
        assert board.sweep() == 2
        assert board.read(0) is None and board.read(1) is None
        assert board.read(2).owner == "w1"

    def test_sweep_on_empty_board_is_zero(self, board):
        assert board.sweep() == 0
