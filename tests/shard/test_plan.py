"""ShardPlan: fingerprints, partitioning, round-trips, resume safety."""

import dataclasses
import json

import pytest

from repro.shard.plan import (
    ShardPlan,
    ShardPlanMismatchError,
    build_shard_plan,
    partition,
)

pytestmark = pytest.mark.smoke


def em_plan(**overrides):
    kwargs = dict(
        model="gpt3-175b", n_shards=4, k=3, selection="random",
        split="test", seed=0, max_examples=24,
    )
    kwargs.update(overrides)
    return build_shard_plan("em", "fodors_zagats", **kwargs)


class TestPartition:
    def test_covers_every_index_exactly_once(self):
        for n_examples, n_shards in [(24, 4), (25, 4), (7, 3), (1, 5)]:
            shards = partition(n_examples, n_shards)
            seen = [i for shard in shards for i in shard.indices]
            assert seen == list(range(n_examples))

    def test_near_equal_sizes(self):
        shards = partition(25, 4)
        sizes = [shard.n_examples for shard in shards]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_more_shards_than_examples_clamps(self):
        assert len(partition(3, 10)) == 3

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition(10, 0)


class TestFingerprint:
    def test_deterministic_across_builds(self):
        assert em_plan().fingerprint == em_plan().fingerprint

    def test_every_knob_changes_the_fingerprint(self):
        base = em_plan()
        for overrides in [
            dict(k=0), dict(seed=1), dict(max_examples=20),
            dict(n_shards=2), dict(model="gpt3-6.7b"),
        ]:
            assert em_plan(**overrides).fingerprint != base.fingerprint

    def test_shard_fingerprints_are_distinct(self):
        plan = em_plan()
        digests = {plan.shard_fingerprint(s.shard_id) for s in plan.shards}
        assert len(digests) == plan.n_shards


class TestRoundTrip:
    def test_save_load_preserves_identity(self, tmp_path):
        plan = em_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = ShardPlan.load(path)
        assert loaded == plan
        assert loaded.fingerprint == plan.fingerprint

    def test_edited_plan_json_is_rejected(self, tmp_path):
        plan = em_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        payload = json.loads(path.read_text())
        payload["seed"] = 99  # tampered, fingerprint now stale
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardPlanMismatchError):
            ShardPlan.load(path)

    def test_require_same_refuses_a_different_run(self):
        with pytest.raises(ShardPlanMismatchError):
            em_plan().require_same(em_plan(seed=1))
        em_plan().require_same(em_plan())  # identical: no error

    def test_plan_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            em_plan().seed = 1
