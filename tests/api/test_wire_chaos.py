"""Wire-level fault model: taxonomy, contract validation, ChaosTransport.

DESIGN §4f's first layer, pinned: every way a real completion endpoint
misbehaves on the wire surfaces as a *typed* exception the existing
:class:`~repro.api.retry.RetryPolicy` already classifies correctly —
429s retryable with ``Retry-After`` as a backoff floor, 5xx retryable,
other 4xx fatal, mangled bodies retryable — and the injected chaos is a
pure function of ``(seed, kind, prompt)``, never call order or worker
count.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api.backends import (
    DirectOpenAIBackend,
    InProcessFakeTransport,
    validate_completion_response,
)
from repro.api.faults import (
    WIRE_PROFILES,
    ChaosTransport,
    WireFaultProfile,
    get_wire_profile,
)
from repro.api.retry import (
    BackendHTTPError,
    BackendRateLimitError,
    BackendRequestError,
    BackendUnavailableError,
    DEFAULT_RETRY_ON,
    FatalError,
    MalformedResponseError,
    RateLimitError,
    RetryPolicy,
    classify_http_error,
    retry_after_floor,
)

pytestmark = [pytest.mark.smoke, pytest.mark.chaos]

PROMPTS = [f"Song A is track {i}. Are they the same? " for i in range(400)]

POLICY = RetryPolicy()


class TestTaxonomy:
    def test_429_is_a_retryable_rate_limit(self):
        exc = classify_http_error(429, "slow down", retry_after_s=0.5)
        assert isinstance(exc, BackendRateLimitError)
        assert isinstance(exc, BackendHTTPError)
        assert isinstance(exc, RateLimitError)
        assert not POLICY.is_fatal(exc)
        assert exc.status == 429
        assert exc.retry_after_s == 0.5

    def test_5xx_is_a_retryable_connection_error(self):
        for status in (500, 502, 503, 504):
            exc = classify_http_error(status, "degraded")
            assert isinstance(exc, BackendUnavailableError)
            assert isinstance(exc, ConnectionError)
            assert not POLICY.is_fatal(exc)
            assert exc.status == status

    def test_other_4xx_is_fatal(self):
        for status in (400, 401, 403, 404, 413):
            exc = classify_http_error(status, "bad request")
            assert isinstance(exc, BackendRequestError)
            assert isinstance(exc, FatalError)
            assert POLICY.is_fatal(exc)

    def test_malformed_response_is_retryable(self):
        exc = MalformedResponseError("truncated body")
        assert isinstance(exc, ConnectionError)
        assert isinstance(exc, DEFAULT_RETRY_ON)
        assert not POLICY.is_fatal(exc)

    def test_taxonomy_lands_in_default_retry_on(self):
        # The whole point of the multiple inheritance: zero policy
        # changes needed for the wire taxonomy to retry correctly.
        assert isinstance(classify_http_error(429), DEFAULT_RETRY_ON)
        assert isinstance(classify_http_error(500), DEFAULT_RETRY_ON)
        assert POLICY.is_fatal(classify_http_error(401))

    def test_message_carries_status(self):
        exc = classify_http_error(502, "bad gateway")
        assert "502" in str(exc)
        assert "bad gateway" in str(exc)


class TestRetryAfterFloor:
    def test_floor_from_header(self):
        assert retry_after_floor(classify_http_error(
            429, retry_after_s=1.5)) == 1.5

    def test_no_header_no_floor(self):
        assert retry_after_floor(classify_http_error(429)) == 0.0
        assert retry_after_floor(ConnectionError("reset")) == 0.0

    def test_garbage_floor_is_zero(self):
        exc = ConnectionError("reset")
        exc.retry_after_s = "soon"
        assert retry_after_floor(exc) == 0.0

    def test_negative_floor_clamped(self):
        exc = classify_http_error(429, retry_after_s=-3.0)
        assert retry_after_floor(exc) == 0.0


class TestContractValidation:
    def test_good_response_returns_first_choice(self):
        choice = validate_completion_response(
            {"choices": [{"text": "yes", "finish_reason": "stop"}]}
        )
        assert choice["text"] == "yes"

    @pytest.mark.parametrize("body", [
        "not an object",
        {},
        {"choices": []},
        {"choices": "yes"},
        {"choices": [None]},
        {"choices": [{"finish_reason": "stop"}]},          # no text
        {"choices": [{"text": 12345}]},                    # non-string text
        {"choices": [{"text": "yes", "finish_reason": "because"}]},
        {"choices": [{"text": "yes",
                      "logprobs": {"token_logprobs": ["hi"]}}]},
        {"object": "error", "message": "model overloaded"},
    ])
    def test_contract_violations_are_typed(self, body):
        with pytest.raises(MalformedResponseError):
            validate_completion_response(body)


class TestWireProfiles:
    def test_named_profiles_resolve(self):
        for name in ("wire-none", "wire-ci", "wire-heavy"):
            assert get_wire_profile(name).name == name
        assert set(WIRE_PROFILES) >= {"wire-none", "wire-ci", "wire-heavy"}

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_wire_profile("wire-apocalypse")

    def test_failing_fraction_sums_disjoint_kinds(self):
        profile = WireFaultProfile(
            rate_limit=0.1, server_error=0.05, reset=0.05,
            truncate_json=0.02, malformed_json=0.02, schema_violation=0.01,
        )
        assert profile.failing == pytest.approx(0.25)


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        a = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=7)
        b = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=7)
        assert a.schedule_digest(PROMPTS) == b.schedule_digest(PROMPTS)

    def test_different_seed_different_schedule(self):
        a = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=7)
        b = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=8)
        assert a.schedule_digest(PROMPTS) != b.schedule_digest(PROMPTS)

    def test_schedule_is_pure(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=3)
        first = [chaos.schedule_for(p).to_dict() for p in PROMPTS]
        second = [chaos.schedule_for(p).to_dict() for p in reversed(PROMPTS)]
        assert first == list(reversed(second))

    def test_rates_roughly_honored(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        schedules = [chaos.schedule_for(p) for p in PROMPTS]
        faulted = sum(1 for s in schedules if s.kind is not None)
        expected = chaos.profile.failing * len(PROMPTS)
        assert 0.5 * expected <= faulted <= 1.5 * expected

    def test_wire_none_injects_nothing(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-none", seed=0)
        assert all(
            chaos.schedule_for(p).kind is None for p in PROMPTS[:50]
        )


class TestChaosInjection:
    def _post(self, chaos, prompt):
        return chaos.post(
            "https://example.invalid/v1/completions", {},
            {"model": "gpt3-175b", "prompt": prompt},
        )

    def _prompt_with(self, chaos, kind, recoverable=None):
        for prompt in PROMPTS:
            schedule = chaos.schedule_for(prompt)
            if schedule.kind != kind:
                continue
            if recoverable is not None and schedule.unrecoverable == recoverable:
                continue
            return prompt, schedule
        pytest.skip(f"no prompt draws {kind} under this seed")

    def test_rate_limit_carries_retry_after(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        prompt, _ = self._prompt_with(chaos, "rate_limit")
        with pytest.raises(BackendRateLimitError) as excinfo:
            self._post(chaos, prompt)
        assert excinfo.value.retry_after_s == chaos.profile.retry_after_s
        assert retry_after_floor(excinfo.value) > 0

    def test_server_error_is_unavailable(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        prompt, _ = self._prompt_with(chaos, "server_error")
        with pytest.raises(BackendUnavailableError) as excinfo:
            self._post(chaos, prompt)
        assert excinfo.value.status in (500, 502, 503)

    def test_truncated_json_is_malformed(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        prompt, _ = self._prompt_with(chaos, "truncate_json")
        with pytest.raises(MalformedResponseError):
            self._post(chaos, prompt)

    def test_schema_violation_returns_decoded_dict(self):
        # Valid JSON, broken contract: the transport hands it back and
        # the *adapter's* validation is what must catch it.
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        prompt, _ = self._prompt_with(chaos, "schema_violation")
        body = self._post(chaos, prompt)
        assert isinstance(body, dict)
        json.dumps(body)  # decodable, JSON-shaped
        with pytest.raises(MalformedResponseError):
            validate_completion_response(body)

    def test_recoverable_fault_stops_after_depth(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        for prompt in PROMPTS:
            schedule = chaos.schedule_for(prompt)
            if schedule.kind in ("rate_limit", "server_error", "reset") and \
                    not schedule.unrecoverable:
                break
        else:
            pytest.skip("no recoverable status fault under this seed")
        for _ in range(schedule.depth):
            with pytest.raises(Exception):
                self._post(chaos, prompt)
        # Attempt depth+1 clears the fault and reaches the inner wire.
        body = self._post(chaos, prompt)
        assert validate_completion_response(body)["text"]

    def test_unrecoverable_fault_never_stops(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        for prompt in PROMPTS:
            schedule = chaos.schedule_for(prompt)
            if schedule.kind is not None and schedule.unrecoverable:
                break
        else:
            pytest.skip("no unrecoverable fault under this seed")
        for _ in range(schedule.depth + 4):
            with pytest.raises(Exception):
                self._post(chaos, prompt)

    def test_stats_tally_injections(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        for prompt in PROMPTS[:120]:
            try:
                self._post(chaos, prompt)
            except Exception:
                pass
        stats = chaos.stats()
        assert stats, "wire-heavy over 120 prompts injected nothing"
        assert all(count > 0 for count in stats.values())

    def test_describe_names_profile_and_seed(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-ci", seed=11)
        described = chaos.describe()
        assert described["profile"] == "wire-ci"
        assert described["seed"] == 11

    def test_attempt_counter_is_thread_safe(self):
        chaos = ChaosTransport(InProcessFakeTransport(), "wire-heavy", seed=0)
        prompt, schedule = self._prompt_with(chaos, "rate_limit", recoverable=True)
        outcomes = []

        def hammer():
            try:
                self._post(chaos, prompt)
                outcomes.append("ok")
            except Exception:
                outcomes.append("fault")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly `depth` attempts fault; the rest reach the wire.
        assert outcomes.count("fault") == schedule.depth


class TestAdapterUnderChaos:
    def test_batch_layer_retries_through_the_chaos(self):
        # End-to-end through the adapter: a chaos-wrapped backend inside
        # a CompletionClient, retried by the batch layer (where the
        # RetryPolicy lives), returns byte-identical text to a clean
        # one — wire-ci has no unrecoverable faults, so backoff alone
        # recovers everything.
        from repro.api.batch import BatchExecutor
        from repro.api.cache import PromptCache
        from repro.api.client import CompletionClient

        chaos = ChaosTransport(InProcessFakeTransport(), "wire-ci", seed=0)
        faulted = CompletionClient(
            DirectOpenAIBackend("gpt3-175b", transport=chaos),
            cache=PromptCache(":memory:"),
        )
        clean = CompletionClient(
            DirectOpenAIBackend(
                "gpt3-175b", transport=InProcessFakeTransport()
            ),
            cache=PromptCache(":memory:"),
        )
        executor = BatchExecutor(
            workers=4,
            policy=RetryPolicy(max_retries=6, backoff_base=0.0),
        )
        prompts = PROMPTS[:40]
        responses = executor.map(faulted.complete, prompts)
        assert responses == [clean.complete(prompt) for prompt in prompts]
