"""Tests for the service-level resilience layer (deadlines, hedging,
admission control, fallback chains) and its executor/client wiring."""

import threading

import pytest

from repro.api import (
    AdmissionController,
    AIMDLimiter,
    BatchExecutor,
    BatchFailure,
    CircuitBreaker,
    CompletionClient,
    Deadline,
    DeadlineExceededError,
    FallbackChain,
    FaultPlan,
    FaultProfile,
    HedgePolicy,
    RetryPolicy,
    Shed,
    SharedBudget,
)

pytestmark = pytest.mark.smoke


class FakeClock:
    """Injectable monotonic clock: time moves only when told to."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_counts_down_on_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == 10.0
        clock.advance(4.0)
        assert deadline.remaining() == 6.0
        assert deadline.elapsed_s == 4.0
        assert not deadline.expired
        deadline.check()  # no raise

    def test_expiry_is_typed_and_fatal(self):
        from repro.api.retry import FatalError

        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            deadline.check()
        # Fatal: the batch layer fails fast instead of backing off.
        assert issubclass(DeadlineExceededError, FatalError)

    def test_clamp_never_sleeps_past_budget(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.clamp(10.0) == 2.0
        assert deadline.clamp(0.5) == 0.5
        clock.advance(1.9)
        assert deadline.clamp(10.0) == pytest.approx(0.1)
        clock.advance(1.0)
        assert deadline.clamp(10.0) == 0.0

    def test_describe_is_json_ready(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance(1.0)
        assert deadline.describe() == {
            "budget_s": 5.0, "elapsed_s": 1.0, "expired": False,
        }

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestHedgePolicy:
    def test_delay_is_pure_function_of_seed_and_prompt(self):
        a = HedgePolicy(delay_s=0.01, seed=3)
        b = HedgePolicy(delay_s=0.01, seed=3)
        assert a.delay_for("prompt-x") == b.delay_for("prompt-x")
        assert a.delay_for("prompt-x") != HedgePolicy(
            delay_s=0.01, seed=4
        ).delay_for("prompt-x")

    def test_delay_spread_window(self):
        policy = HedgePolicy(delay_s=0.01, spread=0.25)
        delays = [policy.delay_for(f"p{i}") for i in range(50)]
        assert all(0.01 <= d <= 0.0125 for d in delays)
        assert len(set(delays)) > 1  # decorrelated across prompts

    def test_zero_spread_is_constant(self):
        policy = HedgePolicy(delay_s=0.02, spread=0.0)
        assert policy.delay_for("a") == policy.delay_for("b") == 0.02

    def test_calibration_from_latencies(self):
        sample = [0.01] * 95 + [0.5] * 5
        policy = HedgePolicy.from_latencies(sample, percentile=0.9)
        assert policy.delay_s == pytest.approx(0.01)
        with pytest.raises(ValueError):
            HedgePolicy.from_latencies([])
        with pytest.raises(ValueError):
            HedgePolicy.from_latencies([0.1], percentile=1.5)

    def test_stats_counts(self):
        policy = HedgePolicy()
        policy.record_fired()
        policy.record_fired()
        policy.record_win()
        assert policy.stats() == {"delay_s": 0.005, "fired": 2, "wins": 1}


class TestAIMDLimiter:
    def test_additive_increase_multiplicative_decrease(self):
        limiter = AIMDLimiter(initial=4.0, min_limit=1.0, max_limit=8.0)
        limiter.acquire()
        limiter.release(ok=True)
        assert limiter.limit == pytest.approx(4.25)  # +1/window
        limiter.acquire()
        limiter.release(ok=False)
        assert limiter.limit == pytest.approx(2.125)  # halved
        for _ in range(20):
            limiter.acquire()
            limiter.release(ok=False)
        assert limiter.limit == 1.0  # floored

    def test_window_blocks_then_releases(self):
        limiter = AIMDLimiter(initial=1.0, max_limit=2.0)
        limiter.acquire()
        entered = threading.Event()

        def second():
            limiter.acquire()
            entered.set()
            limiter.release(ok=True)

        thread = threading.Thread(target=second)
        thread.start()
        assert not entered.wait(0.05)  # queued behind the full window
        limiter.release(ok=True)
        assert entered.wait(1.0)
        thread.join()
        assert limiter.stats()["waits"] >= 1


class TestAdmissionController:
    def test_unconstrained_admits_everything(self):
        admission = AdmissionController()
        assert admission.plan(5) == ["admit"] * 5
        assert admission.stats() == {"admitted": 5, "shed": 0}

    def test_budget_headroom_sheds_the_tail_by_priority(self):
        # 10-request budget: bench keeps 10% (1 request) in reserve.
        budget = SharedBudget(max_requests=10)
        admission = AdmissionController(budget=budget)
        verdicts = admission.plan(24, "bench")
        assert verdicts == ["admit"] * 9 + ["shed"] * 15
        # Interactive has no reserve; backfill keeps 25% (2 requests).
        assert AdmissionController(budget=budget).plan(24, "interactive") \
            == ["admit"] * 10 + ["shed"] * 14
        assert AdmissionController(budget=budget).plan(24, "backfill") \
            == ["admit"] * 8 + ["shed"] * 16

    def test_open_breaker_sheds_all_but_interactive(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        breaker.record_failure()
        assert breaker.state == "open"
        admission = AdmissionController(breaker=breaker)
        assert admission.plan(3, "bench") == ["shed"] * 3
        # Interactive rides the breaker's own single-probe recovery.
        assert AdmissionController(breaker=breaker).plan(3, "interactive") \
            == ["admit"] * 3

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="unknown priority"):
            AdmissionController().plan(1, "vip")

    def test_plan_is_pure_function_of_pre_batch_state(self):
        budget = SharedBudget(max_requests=10)
        first = AdmissionController(budget=budget).plan(24, "bench")
        second = AdmissionController(budget=budget).plan(24, "bench")
        assert first == second


class TestFallbackChain:
    def test_parse_and_tier_names(self):
        chain = FallbackChain.parse("gpt3-6.7b, gpt3-1.3b")
        assert chain.describe() == ["gpt3-6.7b", "gpt3-1.3b"]
        assert chain.tier_name(1) == "gpt3-1.3b"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FallbackChain([])
        with pytest.raises(ValueError):
            FallbackChain.parse(" , ")

    def test_resolve_builds_cached_clean_clients(self):
        chain = FallbackChain(["gpt3-1.3b"])
        client = chain.resolve(0)
        assert client is chain.resolve(0)  # cached
        assert isinstance(client, CompletionClient)
        # Tiers model a *different* deployment: no inherited fault plan.
        assert client.fault_plan is None

    def test_model_objects_pass_through(self):
        backend = CompletionClient("gpt3-6.7b")
        chain = FallbackChain([backend])
        assert chain.resolve(0) is backend
        assert chain.tier_name(0) == "gpt3-6.7b"


class TestJitteredBackoff:
    def test_legacy_delay_without_key_is_exact_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=2.0)
        assert [policy.delay(n) for n in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_keyed_delay_is_jittered_within_window(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=2.0, jitter=0.5)
        for attempt in range(3):
            window = 0.1 * 2**attempt
            delay = policy.delay(attempt, key="7")
            assert window * 0.5 <= delay <= window

    def test_jitter_is_pure_and_decorrelated(self):
        policy = RetryPolicy(backoff_base=0.1)
        again = RetryPolicy(backoff_base=0.1)
        assert policy.delay(1, key="3") == again.delay(1, key="3")
        # Concurrent retries of *different* items must not wake together
        # (the thundering-herd regression): per-key delays differ.
        delays = {policy.delay(1, key=str(index)) for index in range(8)}
        assert len(delays) > 1


class TestBreakerInjectedClock:
    def test_cooldown_and_half_open_without_sleeping(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # still cooling down
        clock.advance(5.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()


class TestExecutorWiring:
    def test_shed_surfaces_as_typed_batch_failure(self):
        budget = SharedBudget(max_requests=4)
        executor = BatchExecutor(
            workers=2,
            admission=AdmissionController(budget=budget),
            priority="interactive",
        )
        results = executor.map(
            lambda item: f"ok:{item}", list(range(8)), on_error="return"
        )
        # Admitted prefix untouched, shed tail typed — never a silent drop.
        assert results[:4] == ["ok:0", "ok:1", "ok:2", "ok:3"]
        for index, failure in enumerate(results[4:], start=4):
            assert isinstance(failure, BatchFailure)
            assert failure.error_type == "Shed"
            assert failure.attempts == 0
            assert failure.index == index

    def test_shed_raises_in_strict_mode(self):
        executor = BatchExecutor(
            admission=AdmissionController(
                budget=SharedBudget(max_requests=0)
            ),
            priority="interactive",
        )
        with pytest.raises(Shed):
            executor.map(lambda item: item, [1, 2])

    def test_shed_survivors_identical_to_unconstrained_run(self):
        items = [f"item-{i}" for i in range(10)]
        clean = BatchExecutor(workers=3).map(lambda s: s.upper(), items)
        constrained = BatchExecutor(
            workers=3,
            admission=AdmissionController(
                budget=SharedBudget(max_requests=6)
            ),
            priority="interactive",
        ).map(lambda s: s.upper(), items, on_error="return")
        for index, result in enumerate(constrained):
            if not isinstance(result, BatchFailure):
                assert result == clean[index]

    def test_expired_deadline_aborts_batch(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        executor = BatchExecutor(deadline=deadline)
        calls: list[int] = []
        with pytest.raises(DeadlineExceededError):
            executor.map(calls.append, [1, 2, 3])
        assert calls == []  # fatal before any work

    def test_deadline_clamps_backoff(self):
        from repro.api.retry import RateLimitError

        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(0.999)  # ~1ms left: backoff must not sleep 10s

        attempts = {"n": 0}

        def flaky(item):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RateLimitError("transient")
            return item

        executor = BatchExecutor(
            deadline=deadline,
            policy=RetryPolicy(max_retries=2, backoff_base=10.0),
        )
        import time as _time

        started = _time.perf_counter()
        assert executor.map(flaky, ["x"]) == ["x"]
        assert _time.perf_counter() - started < 1.0


class TestHedgedClient:
    def test_hedge_beats_latency_spike_without_double_charge(self):
        spike = FaultProfile(
            name="spiky", latency_spike=1.0, latency_spike_s=0.05
        )
        client = CompletionClient(
            fault_plan=FaultPlan(spike, seed=0),
            hedge_policy=HedgePolicy(delay_s=0.005, spread=0.0),
        )
        plain = CompletionClient(fault_plan=FaultPlan(spike, seed=0))
        prompt = "Product A: x. Product B: x. Are A and B the same? Yes or No?"

        import time as _time

        started = _time.perf_counter()
        hedged_text = client.complete(prompt)
        hedged_s = _time.perf_counter() - started
        started = _time.perf_counter()
        plain_text = plain.complete(prompt)
        plain_s = _time.perf_counter() - started

        assert hedged_text == plain_text  # byte-identical result
        assert hedged_s < plain_s  # the backup skipped the spike
        stats = client.stats
        # Budget/usage dedup: one charged call, hedges tallied apart.
        assert stats["backend_calls"] == 1
        assert stats["hedge_calls"] == 1
        assert client.hedge_policy.stats() == {
            "delay_s": 0.005, "fired": 1, "wins": 1,
        }
        tracked = client.usage.snapshot()[client.name]
        assert tracked["n_requests"] == 1

    def test_fast_completions_never_hedge(self):
        client = CompletionClient(hedge_policy=HedgePolicy(delay_s=0.5))
        client.complete("Are A and B the same? Yes or No?")
        assert client.stats["hedge_calls"] == 0
        assert client.hedge_policy.stats()["fired"] == 0
