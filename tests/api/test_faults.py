"""The fault-injection plan: determinism, rates, and client integration."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.api.client import CompletionClient
from repro.api.faults import (
    FAULT_PROFILES,
    FaultPlan,
    FaultProfile,
    get_default_fault_plan,
    get_fault_profile,
    malformed_reason,
    set_default_fault_plan,
)
from repro.api.retry import RateLimitError, RetryPolicy

pytestmark = [pytest.mark.smoke, pytest.mark.chaos]

PROMPTS = [f"Product A is widget {i}. Are they the same? " for i in range(300)]


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultPlan("heavy", seed=7)
        b = FaultPlan("heavy", seed=7)
        assert a.schedule_digest(PROMPTS) == b.schedule_digest(PROMPTS)

    def test_different_seed_different_schedule(self):
        a = FaultPlan("heavy", seed=7)
        b = FaultPlan("heavy", seed=8)
        assert a.schedule_digest(PROMPTS) != b.schedule_digest(PROMPTS)

    def test_schedule_is_pure(self):
        plan = FaultPlan("heavy", seed=3)
        first = [plan.schedule_for(p) for p in PROMPTS]
        # Injecting (mutating attempt counters) must not move the schedule.
        for prompt in PROMPTS[:20]:
            try:
                plan.on_request(prompt)
            except Exception:
                pass
        assert [plan.schedule_for(p) for p in PROMPTS] == first

    def test_stable_across_pythonhashseed(self):
        """The schedule survives a different PYTHONHASHSEED (no hash())."""
        code = (
            "from repro.api.faults import FaultPlan\n"
            "prompts = [f'Product A is widget {i}. Are they the same? '\n"
            "           for i in range(300)]\n"
            "print(FaultPlan('heavy', seed=7).schedule_digest(prompts))\n"
        )
        digests = set()
        for hash_seed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": "src"},
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1

    def test_rates_approximately_respected(self):
        plan = FaultPlan("heavy", seed=0)
        schedules = [plan.schedule_for(p) for p in PROMPTS]
        transient = sum(1 for s in schedules if s.transient_kind) / len(PROMPTS)
        # heavy: 25% transient, 5% garbage.  Wide tolerance — this guards
        # against rates being ignored, not against hash-uniformity noise.
        assert 0.12 < transient < 0.40
        assert any(s.corrupt == "garbage" for s in schedules)

    def test_none_profile_never_faults(self):
        plan = FaultPlan("none", seed=0)
        for prompt in PROMPTS[:50]:
            schedule = plan.schedule_for(prompt)
            assert schedule.transient_kind is None
            assert schedule.corrupt is None


class TestProfiles:
    def test_known_profiles_resolve(self):
        for name in FAULT_PROFILES:
            assert get_fault_profile(name).name == name

    def test_unknown_profile_raises_with_choices(self):
        with pytest.raises(KeyError, match="heavy"):
            get_fault_profile("nope")

    def test_transient_rate_is_sum_of_kinds(self):
        profile = FaultProfile(rate_limit=0.1, timeout=0.2, connection=0.05)
        assert profile.transient == pytest.approx(0.35)


class TestMalformedReason:
    def test_clean_text_passes(self):
        assert malformed_reason("Yes, they match.") is None

    def test_empty_and_whitespace(self):
        assert malformed_reason("") is not None
        assert malformed_reason("   \n\t") is not None

    def test_garbage_markers(self):
        assert malformed_reason("ab�cd") is not None
        assert malformed_reason("ab\x00cd") is not None

    def test_non_text(self):
        assert malformed_reason(None) is not None
        assert malformed_reason(42) is not None


class TestInjectionThroughClient:
    def test_transient_fault_recovers_within_depth(self):
        profile = FaultProfile(rate_limit=1.0, fault_depth=1)
        plan = FaultPlan(profile, seed=0)
        client = CompletionClient(fault_plan=plan)
        prompt = PROMPTS[0]
        with pytest.raises(RateLimitError):
            client.complete(prompt)
        # The per-prompt attempt counter advanced: next try succeeds.
        assert isinstance(client.complete(prompt), str)
        assert plan.stats().get("rate_limit", 0) >= 1

    def test_unrecoverable_fault_never_stops(self):
        profile = FaultProfile(rate_limit=1.0, fault_depth=1, unrecoverable=1.0)
        client = CompletionClient(fault_plan=FaultPlan(profile, seed=0))
        for _ in range(4):
            with pytest.raises(RateLimitError):
                client.complete(PROMPTS[0])

    def test_garbage_corruption_is_detectable(self):
        profile = FaultProfile(garbage=1.0)
        client = CompletionClient(fault_plan=FaultPlan(profile, seed=0))
        response = client.complete(PROMPTS[0])
        assert malformed_reason(response) is not None

    def test_truncation_shortens_response(self):
        clean = CompletionClient().complete(PROMPTS[0])
        profile = FaultProfile(truncate=1.0)
        client = CompletionClient(fault_plan=FaultPlan(profile, seed=0))
        truncated = client.complete(PROMPTS[0])
        assert len(truncated) < len(clean)
        assert clean.startswith(truncated)

    def test_corrupted_text_is_what_gets_cached(self):
        """Wire semantics: the cache stores what came off the wire."""
        profile = FaultProfile(garbage=1.0)
        client = CompletionClient(fault_plan=FaultPlan(profile, seed=0))
        first = client.complete(PROMPTS[0])
        second = client.complete(PROMPTS[0])
        assert first == second
        assert client.stats["backend_calls"] == 1

    def test_complete_many_retries_injected_faults(self):
        profile = FaultProfile(rate_limit=0.3, fault_depth=1)
        plan = FaultPlan(profile, seed=0)
        client = CompletionClient(
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
        )
        responses = client.complete_many(PROMPTS[:40], workers=4)
        assert len(responses) == 40
        assert all(isinstance(r, str) for r in responses)
        assert plan.stats().get("rate_limit", 0) >= 1

    def test_fork_resets_counters_but_keeps_schedule(self):
        plan = FaultPlan("heavy", seed=7)
        try:
            plan.on_request(PROMPTS[0])
        except Exception:
            pass
        fork = plan.fork()
        assert fork.stats() == {}
        assert fork.schedule_digest(PROMPTS) == plan.schedule_digest(PROMPTS)


class TestDefaultPlan:
    def test_unset_by_default(self):
        assert get_default_fault_plan() is None

    def test_set_and_clear(self):
        plan = FaultPlan("mild", seed=1)
        set_default_fault_plan(plan)
        try:
            assert get_default_fault_plan() is plan
        finally:
            set_default_fault_plan(None)
        assert get_default_fault_plan() is None
