"""Tests for the pluggable backend protocol, registry, and HTTP adapters."""

from __future__ import annotations

import pytest

from repro.api import CompletionClient, PromptCache
from repro.api.backends import (
    AzureOpenAIBackend,
    BackendInfo,
    CompletionBackend,
    DirectOpenAIBackend,
    InProcessFakeTransport,
    available_backends,
    backend_info,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.api.usage import PRICE_PER_1K_TOKENS, UsageTracker
from repro.fm.engine import SimulatedFoundationModel

PROMPT = (
    "Product A is name: sony headphones. Product B is name: sony "
    "headphones. Are Product A and Product B the same? Yes or No?\n"
)


class TestRegistry:
    def test_simulated_tiers_are_preregistered_in_size_order(self):
        names = available_backends()
        for tier in ("gpt3-1.3b", "gpt3-6.7b", "gpt3-175b"):
            assert tier in names

    def test_get_backend_returns_fresh_simulator_instances(self):
        first = get_backend("gpt3-175b")
        second = get_backend("gpt3-175b")
        assert isinstance(first, SimulatedFoundationModel)
        assert first is not second
        assert first.name == second.name == "gpt3-175b"

    def test_alias_resolution_matches_profile_shorthand(self):
        assert get_backend("175b").name == "gpt3-175b"
        assert get_backend("6.7b").name == "gpt3-6.7b"
        assert backend_info("1.3b").name == "gpt3-1.3b"

    def test_unknown_backend_raises_keyerror_listing_registered(self):
        with pytest.raises(KeyError, match="gpt3-175b"):
            get_backend("gpt5-nano")

    def test_backends_satisfy_the_protocol(self):
        assert isinstance(get_backend("gpt3-175b"), CompletionBackend)
        fake = DirectOpenAIBackend("m", transport=InProcessFakeTransport())
        assert isinstance(fake, CompletionBackend)

    def test_pricing_metadata_matches_usage_table(self):
        for name in ("gpt3-1.3b", "gpt3-6.7b", "gpt3-175b"):
            info = backend_info(name)
            assert info.price_per_1k_tokens == PRICE_PER_1K_TOKENS[name]
            assert info.kind == "simulated"
            assert info.n_parameters is not None

    def test_params_label_human_readable(self):
        assert backend_info("gpt3-175b").params_label == "175B"
        assert backend_info("gpt3-1.3b").params_label == "1.3B"
        assert BackendInfo(name="x").params_label == "-"

    def test_register_and_unregister_custom_backend(self):
        class Canned:
            name = "canned-backend"

            def complete(self, prompt, temperature=0.0, **kwargs):
                return "Yes"

        register_backend(
            "canned-backend", Canned, kind="custom", aliases=("canned",)
        )
        try:
            assert get_backend("canned").complete(PROMPT) == "Yes"
            assert backend_info("canned-backend").kind == "custom"
            assert "canned-backend" in available_backends()
        finally:
            unregister_backend("canned-backend")
        with pytest.raises(KeyError):
            get_backend("canned-backend")
        with pytest.raises(KeyError):
            get_backend("canned")

    def test_alias_may_not_shadow_canonical_name(self):
        with pytest.raises(ValueError, match="shadow"):
            register_backend(
                "shadow-test", object, aliases=("gpt3-175b",)
            )
        assert "shadow-test" not in available_backends()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", object)


class TestClientIntegration:
    def test_string_resolution_equals_explicit_construction(self):
        by_name = CompletionClient("gpt3-175b", cache=PromptCache(":memory:"))
        explicit = CompletionClient(
            SimulatedFoundationModel("gpt3-175b"),
            cache=PromptCache(":memory:"),
        )
        assert by_name.name == explicit.name
        assert by_name.complete(PROMPT) == explicit.complete(PROMPT)

    def test_client_accepts_alias_names(self):
        client = CompletionClient("175b", cache=PromptCache(":memory:"))
        assert client.name == "gpt3-175b"

    def test_client_over_http_adapter_caches_and_meters(self):
        transport = InProcessFakeTransport()
        register_backend(
            "openai-fake",
            lambda: DirectOpenAIBackend(
                "openai-fake", api_key="k", transport=transport
            ),
            kind="openai",
        )
        try:
            usage = UsageTracker()
            client = CompletionClient(
                "openai-fake", cache=PromptCache(":memory:"), usage=usage
            )
            first = client.complete(PROMPT)
            second = client.complete(PROMPT)
        finally:
            unregister_backend("openai-fake")
        assert first == second
        assert len(transport.requests) == 1  # second hit the prompt cache
        assert client.stats["backend_calls"] == 1
        snapshot = usage.snapshot()["openai-fake"]
        assert snapshot["n_requests"] == 2
        assert snapshot["n_cache_hits"] == 1


class TestHTTPAdapters:
    def test_direct_openai_request_shape(self):
        transport = InProcessFakeTransport()
        backend = DirectOpenAIBackend(
            "gpt3-fake", api_key="sk-test", transport=transport
        )
        text = backend.complete(PROMPT)
        assert isinstance(text, str) and text
        request = transport.requests[0]
        assert request["url"] == "https://api.openai.com/v1/completions"
        assert request["headers"]["Authorization"] == "Bearer sk-test"
        assert request["payload"]["model"] == "gpt3-fake"
        assert request["payload"]["prompt"] == PROMPT
        assert "logprobs" not in request["payload"]

    def test_azure_request_shape(self):
        transport = InProcessFakeTransport()
        backend = AzureOpenAIBackend(
            deployment="davinci-dep",
            endpoint="https://unit.openai.azure.com/",
            api_key="azure-key",
            transport=transport,
        )
        backend.complete(PROMPT)
        request = transport.requests[0]
        assert request["url"] == (
            "https://unit.openai.azure.com/openai/deployments/davinci-dep"
            "/completions?api-version=2023-05-15"
        )
        assert request["headers"]["api-key"] == "azure-key"
        # Azure scopes the model via the deployment URL, not the payload.
        assert "model" not in request["payload"]

    def test_verbose_confidence_round_trips_through_logprobs(self):
        simulator = SimulatedFoundationModel("gpt3-175b")
        backend = DirectOpenAIBackend(
            "gpt3-175b",
            transport=InProcessFakeTransport(
                SimulatedFoundationModel("gpt3-175b")
            ),
        )
        direct = simulator.complete_verbose(PROMPT)
        adapted = backend.complete_verbose(PROMPT)
        assert adapted.text == direct.text
        assert adapted.confidence == pytest.approx(
            direct.confidence, abs=1e-6
        )
        request = backend.transport.requests[0]
        assert request["payload"]["logprobs"] == 1

    def test_verbose_without_logprobs_falls_back_to_neutral(self):
        class NoLogprobs:
            def post(self, url, headers, payload):
                return {"choices": [{"text": "Yes"}]}

        backend = DirectOpenAIBackend("m", transport=NoLogprobs())
        completion = backend.complete_verbose(PROMPT)
        assert completion.text == "Yes"
        assert completion.confidence == 0.5

    def test_adapter_via_full_engine_run(self):
        """An HTTP-adapter backend drives run_task end to end."""
        from repro.core.tasks import run_task

        register_backend(
            "openai-engine-fake",
            lambda: DirectOpenAIBackend(
                "openai-engine-fake", transport=InProcessFakeTransport()
            ),
            kind="openai",
        )
        try:
            run = run_task(
                "entity_matching", "openai-engine-fake", "fodors_zagats",
                k=0, max_examples=6,
            )
        finally:
            unregister_backend("openai-engine-fake")
        assert run.manifest.n_examples == 6
        assert run.manifest.unknown_price is True  # no registered price
