"""Tests for the completion client."""

import pytest

from repro.api import CompletionClient, PromptCache, RateLimitError

pytestmark = pytest.mark.smoke


class CountingBackend:
    """Minimal backend recording how often it is really called."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, temperature=0.0, **kwargs):
        self.calls += 1
        return f"echo:{prompt}"


class VerboseBackend(CountingBackend):
    """Counting backend that also reports confidence."""

    name = "verbose"

    def complete_verbose(self, prompt, temperature=0.0, **kwargs):
        from repro.fm.engine import Completion

        self.calls += 1
        return Completion(text=f"echo:{prompt}", confidence=0.9)


class TestClient:
    def test_wraps_simulated_model_by_default(self):
        client = CompletionClient("gpt3-175b")
        answer = client.complete("name: a. phone: 415-775-7036. city?")
        assert isinstance(answer, str)
        assert client.name == "gpt3-175b"

    def test_cache_prevents_backend_calls(self):
        backend = CountingBackend()
        client = CompletionClient(backend)
        assert client.complete("p") == "echo:p"
        assert client.complete("p") == "echo:p"
        assert backend.calls == 1
        assert client.usage.per_model["counting"].n_cache_hits == 1

    def test_distinct_prompts_hit_backend(self):
        backend = CountingBackend()
        client = CompletionClient(backend)
        client.complete("p1")
        client.complete("p2")
        assert backend.calls == 2

    def test_request_budget_enforced(self):
        client = CompletionClient(CountingBackend(), requests_per_run=2)
        client.complete("a")
        client.complete("b")
        with pytest.raises(RateLimitError):
            client.complete("c")

    def test_cached_responses_do_not_consume_budget(self):
        client = CompletionClient(CountingBackend(), requests_per_run=1)
        client.complete("a")
        assert client.complete("a") == "echo:a"  # from cache, no budget used

    def test_transient_failures_retried(self):
        backend = CountingBackend()
        client = CompletionClient(backend, failure_every=2, max_retries=2)
        for i in range(4):
            assert client.complete(f"p{i}").startswith("echo:")
        assert client.stats["transient_failures"] >= 1

    def test_shared_empty_cache_is_not_replaced(self):
        """An empty PromptCache is falsy (it has __len__) but must still
        be adopted — `cache or PromptCache()` used to drop it silently."""
        cache = PromptCache()
        client = CompletionClient(CountingBackend(), cache=cache)
        assert client.cache is cache
        client.complete("p")
        assert len(cache) == 1

    def test_shared_cache_across_clients(self):
        cache = PromptCache()
        backend = CountingBackend()
        CompletionClient(backend, cache=cache).complete("shared")
        CompletionClient(CountingBackend(), cache=cache).complete("shared")
        assert backend.calls == 1

    def test_stats_shape(self):
        client = CompletionClient(CountingBackend())
        client.complete("x")
        stats = client.stats
        assert stats["backend_calls"] == 1
        assert stats["cache_entries"] == 1

    def test_verbose_calls_count_as_backend_calls(self):
        """complete_verbose must not bypass stats accounting."""
        backend = VerboseBackend()
        client = CompletionClient(backend)
        client.complete("plain")
        client.complete_verbose("confident")
        assert client.stats["backend_calls"] == 2
        assert backend.calls == 2

    def test_verbose_calls_consume_budget(self):
        client = CompletionClient(VerboseBackend(), requests_per_run=1)
        client.complete("a")
        with pytest.raises(RateLimitError):
            client.complete_verbose("b")

    def test_verbose_calls_face_failure_injection(self):
        backend = VerboseBackend()
        client = CompletionClient(backend, failure_every=1, max_retries=1)
        completion = client.complete_verbose("p")
        assert completion.text == "echo:p"
        assert client.stats["transient_failures"] == 1
        assert client.stats["backend_calls"] == 2  # injected attempt + retry

    def test_retries_cannot_exceed_budget(self):
        """A retry attempt that would blow past requests_per_run raises."""
        backend = CountingBackend()
        client = CompletionClient(
            backend, requests_per_run=2, failure_every=2, max_retries=2
        )
        client.complete("a")  # call 1: ok
        # Call 2 hits the injected failure; its retry would be call 3,
        # beyond the budget of 2 — so it must raise, not silently retry.
        with pytest.raises(RateLimitError):
            client.complete("b")
        assert client.stats["backend_calls"] <= 2
        assert backend.calls <= 1  # the injected attempt never reached it

    def test_usable_by_task_runners(self):
        """The client is a drop-in model for the prompting task runners."""
        from repro.core.tasks import run_entity_matching
        from repro.datasets import load_dataset

        client = CompletionClient("gpt3-175b")
        dataset = load_dataset("fodors_zagats")
        run = run_entity_matching(client, dataset, k=0, max_examples=20)
        assert run.model == "gpt3-175b"
        assert client.stats["backend_calls"] > 0
