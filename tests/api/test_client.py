"""Tests for the completion client."""

import threading
import time

import pytest

from repro.api import CompletionClient, PromptCache, RateLimitError

pytestmark = pytest.mark.smoke


class CountingBackend:
    """Minimal backend recording how often it is really called."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, temperature=0.0, **kwargs):
        self.calls += 1
        return f"echo:{prompt}"


class SlowCountingBackend:
    """Thread-safe counter with a delay long enough to force overlap."""

    name = "slow-counting"

    def __init__(self, delay_s=0.05):
        self.calls = 0
        self.delay_s = delay_s
        self._lock = threading.Lock()

    def complete(self, prompt, temperature=0.0, **kwargs):
        with self._lock:
            self.calls += 1
        time.sleep(self.delay_s)
        return f"echo:{prompt}"


class VerboseBackend(CountingBackend):
    """Counting backend that also reports confidence."""

    name = "verbose"

    def complete_verbose(self, prompt, temperature=0.0, **kwargs):
        from repro.fm.engine import Completion

        self.calls += 1
        return Completion(text=f"echo:{prompt}", confidence=0.9)


class TestClient:
    def test_wraps_simulated_model_by_default(self):
        client = CompletionClient("gpt3-175b")
        answer = client.complete("name: a. phone: 415-775-7036. city?")
        assert isinstance(answer, str)
        assert client.name == "gpt3-175b"

    def test_cache_prevents_backend_calls(self):
        backend = CountingBackend()
        client = CompletionClient(backend)
        assert client.complete("p") == "echo:p"
        assert client.complete("p") == "echo:p"
        assert backend.calls == 1
        assert client.usage.per_model["counting"].n_cache_hits == 1

    def test_distinct_prompts_hit_backend(self):
        backend = CountingBackend()
        client = CompletionClient(backend)
        client.complete("p1")
        client.complete("p2")
        assert backend.calls == 2

    def test_request_budget_enforced(self):
        client = CompletionClient(CountingBackend(), requests_per_run=2)
        client.complete("a")
        client.complete("b")
        with pytest.raises(RateLimitError):
            client.complete("c")

    def test_cached_responses_do_not_consume_budget(self):
        client = CompletionClient(CountingBackend(), requests_per_run=1)
        client.complete("a")
        assert client.complete("a") == "echo:a"  # from cache, no budget used

    def test_transient_failures_retried(self):
        backend = CountingBackend()
        client = CompletionClient(backend, failure_every=2, max_retries=2)
        for i in range(4):
            assert client.complete(f"p{i}").startswith("echo:")
        assert client.stats["transient_failures"] >= 1

    def test_shared_empty_cache_is_not_replaced(self):
        """An empty PromptCache is falsy (it has __len__) but must still
        be adopted — `cache or PromptCache()` used to drop it silently."""
        cache = PromptCache()
        client = CompletionClient(CountingBackend(), cache=cache)
        assert client.cache is cache
        client.complete("p")
        assert len(cache) == 1

    def test_shared_cache_across_clients(self):
        cache = PromptCache()
        backend = CountingBackend()
        CompletionClient(backend, cache=cache).complete("shared")
        CompletionClient(CountingBackend(), cache=cache).complete("shared")
        assert backend.calls == 1

    def test_stats_shape(self):
        client = CompletionClient(CountingBackend())
        client.complete("x")
        stats = client.stats
        assert stats["backend_calls"] == 1
        assert stats["cache_entries"] == 1

    def test_verbose_calls_count_as_backend_calls(self):
        """complete_verbose must not bypass stats accounting."""
        backend = VerboseBackend()
        client = CompletionClient(backend)
        client.complete("plain")
        client.complete_verbose("confident")
        assert client.stats["backend_calls"] == 2
        assert backend.calls == 2

    def test_verbose_calls_consume_budget(self):
        client = CompletionClient(VerboseBackend(), requests_per_run=1)
        client.complete("a")
        with pytest.raises(RateLimitError):
            client.complete_verbose("b")

    def test_verbose_calls_face_failure_injection(self):
        backend = VerboseBackend()
        client = CompletionClient(backend, failure_every=1, max_retries=1)
        completion = client.complete_verbose("p")
        assert completion.text == "echo:p"
        assert client.stats["transient_failures"] == 1
        assert client.stats["backend_calls"] == 2  # injected attempt + retry

    def test_retries_cannot_exceed_budget(self):
        """A retry attempt that would blow past requests_per_run raises."""
        backend = CountingBackend()
        client = CompletionClient(
            backend, requests_per_run=2, failure_every=2, max_retries=2
        )
        client.complete("a")  # call 1: ok
        # Call 2 hits the injected failure; its retry would be call 3,
        # beyond the budget of 2 — so it must raise, not silently retry.
        with pytest.raises(RateLimitError):
            client.complete("b")
        assert client.stats["backend_calls"] <= 2
        assert backend.calls <= 1  # the injected attempt never reached it

    def test_stampede_regression_duplicate_prompts_single_flight(self):
        """N workers racing on the same prompt must produce exactly one
        backend call per *unique* prompt — the documented
        "stats['backend_calls'] is exact" contract.  Before single-flight
        every racing thread missed the cache and double-charged."""
        backend = SlowCountingBackend()
        client = CompletionClient(backend)
        unique = [f"p{i}" for i in range(4)]
        prompts = unique * 8  # every prompt duplicated across 8 workers
        responses = client.complete_many(prompts, workers=8)
        assert responses == [f"echo:{prompt}" for prompt in prompts]
        assert backend.calls == len(unique)
        assert client.stats["backend_calls"] == len(unique)
        usage = client.usage.per_model[client.name]
        assert usage.n_requests == len(prompts)
        assert usage.n_cache_hits == len(prompts) - len(unique)

    def test_single_flight_budget_counts_unique_prompts_only(self):
        """Duplicates must not burn requests_per_run: 8 workers on one
        prompt consume a single unit of budget."""
        backend = SlowCountingBackend()
        client = CompletionClient(backend, requests_per_run=1)
        responses = client.complete_many(["same prompt"] * 8, workers=8)
        assert responses == ["echo:same prompt"] * 8
        assert backend.calls == 1

    def test_single_flight_serial_path_unchanged(self):
        backend = CountingBackend()
        client = CompletionClient(backend)
        assert client.complete("p") == "echo:p"
        assert client.complete("p") == "echo:p"
        assert backend.calls == 1
        assert client._inflight == {}  # no leaked in-flight state

    def test_usable_by_task_runners(self):
        """The client is a drop-in model for the prompting task runners."""
        from repro.core.tasks import run_entity_matching
        from repro.datasets import load_dataset

        client = CompletionClient("gpt3-175b")
        dataset = load_dataset("fodors_zagats")
        run = run_entity_matching(client, dataset, k=0, max_examples=20)
        assert run.model == "gpt3-175b"
        assert client.stats["backend_calls"] > 0
