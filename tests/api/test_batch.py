"""Tests for the concurrent batch-execution layer."""

import threading
import time

import pytest

from repro.api import (
    BatchExecutor,
    BatchFailure,
    BudgetExhaustedError,
    CircuitBreaker,
    CompletionClient,
    FatalError,
    PromptCache,
    RateLimitError,
    RetryPolicy,
    SharedBudget,
    UsageTracker,
    complete_all,
    get_default_workers,
    resolve_workers,
    set_default_workers,
)

pytestmark = pytest.mark.smoke


class CountingBackend:
    name = "counting"

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt, temperature=0.0, **kwargs):
        with self._lock:
            self.calls += 1
        return f"echo:{prompt}"


class FlakyFn:
    """Fails with ``error`` the first ``n_failures`` times per item."""

    def __init__(self, n_failures, error=RateLimitError):
        self.n_failures = n_failures
        self.error = error
        self.seen: dict[str, int] = {}
        self._lock = threading.Lock()

    def __call__(self, item):
        with self._lock:
            count = self.seen[item] = self.seen.get(item, 0) + 1
        if count <= self.n_failures:
            raise self.error(f"transient failure {count} for {item!r}")
        return f"ok:{item}"


class TestDefaultWorkers:
    def test_default_is_one(self):
        assert get_default_workers() == 1
        assert resolve_workers(None) == 1

    def test_set_and_restore(self):
        set_default_workers(8)
        try:
            assert resolve_workers(None) == 8
            assert resolve_workers(2) == 2
        finally:
            set_default_workers(1)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            set_default_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestBatchExecutor:
    def test_preserves_input_order(self):
        executor = BatchExecutor(workers=8)
        items = [f"item-{i}" for i in range(50)]
        assert executor.map(lambda x: x.upper(), items) == [
            item.upper() for item in items
        ]

    def test_deterministic_across_worker_counts(self):
        """Same inputs → same ordered outputs regardless of worker count."""
        items = list(range(40))
        fn = lambda x: x * x  # noqa: E731
        outputs = [
            BatchExecutor(workers=n).map(fn, items) for n in (1, 2, 4, 8)
        ]
        assert all(out == outputs[0] for out in outputs)

    def test_empty_input(self):
        assert BatchExecutor(workers=4).map(len, []) == []

    def test_backoff_is_deterministic_exponential(self):
        executor = BatchExecutor(backoff_base=0.1, backoff_cap=0.5)
        assert executor.backoff_delay(0) == pytest.approx(0.1)
        assert executor.backoff_delay(1) == pytest.approx(0.2)
        assert executor.backoff_delay(2) == pytest.approx(0.4)
        assert executor.backoff_delay(3) == pytest.approx(0.5)  # capped
        assert executor.backoff_delay(10) == pytest.approx(0.5)

    def test_retries_transient_failures(self):
        executor = BatchExecutor(workers=4, max_retries=2, backoff_base=0.0)
        fn = FlakyFn(n_failures=2)
        assert executor.map(fn, ["a", "b"]) == ["ok:a", "ok:b"]
        records = sorted(executor.records, key=lambda r: r.index)
        assert [record.attempts for record in records] == [3, 3]
        assert all(record.ok for record in records)

    def test_retry_exhaustion_raises(self):
        executor = BatchExecutor(workers=1, max_retries=1, backoff_base=0.0)
        with pytest.raises(RateLimitError):
            executor.map(FlakyFn(n_failures=5), ["a"])
        (record,) = executor.records
        assert not record.ok
        assert record.attempts == 2
        assert "transient failure" in record.error

    def test_non_retryable_errors_propagate_immediately(self):
        executor = BatchExecutor(workers=1, max_retries=3, backoff_base=0.0)
        fn = FlakyFn(n_failures=5, error=ValueError)
        with pytest.raises(ValueError):
            executor.map(fn, ["a"])
        assert fn.seen["a"] == 1  # no retry burned on a permanent error

    def test_records_latency_into_usage_tracker(self):
        usage = UsageTracker()
        executor = BatchExecutor(workers=4, usage=usage)
        executor.map(lambda x: x, list(range(10)))
        summary = usage.latency_summary()
        assert summary["n_requests"] == 10
        assert summary["n_failures"] == 0
        assert summary["max_s"] >= summary["mean_s"] >= 0.0
        assert len(usage.request_log) == 10


class TestSharedBudget:
    def test_charges_atomically_across_threads(self):
        budget = SharedBudget(max_requests=50)
        admitted = []
        lock = threading.Lock()

        def worker():
            for _ in range(20):
                try:
                    budget.charge()
                except RateLimitError:
                    continue
                with lock:
                    admitted.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 50
        assert budget.n_requests == 50
        assert budget.remaining_requests == 0

    def test_failed_charge_consumes_nothing(self):
        budget = SharedBudget(max_requests=1, max_tokens=10)
        budget.charge(tokens=4)
        with pytest.raises(RateLimitError):
            budget.charge(tokens=4)
        assert budget.n_requests == 1
        assert budget.n_tokens == 4

    def test_token_budget(self):
        budget = SharedBudget(max_tokens=10)
        budget.charge(tokens=6)
        with pytest.raises(RateLimitError):
            budget.charge(tokens=6)

    def test_executor_never_overshoots_budget(self):
        budget = SharedBudget(max_requests=5)
        executor = BatchExecutor(
            workers=8, max_retries=0, budget=budget,
        )
        with pytest.raises(RateLimitError):
            executor.map(lambda x: x, list(range(32)))
        assert budget.n_requests == 5


class TestRetryPolicy:
    def test_delay_schedule_matches_executor(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert [policy.delay(n) for n in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.5]
        )

    def test_fatal_errors_are_never_retryable(self):
        """BudgetExhaustedError is a RateLimitError (in retry_on) but must
        be screened out: a spent budget cannot recover mid-run."""
        policy = RetryPolicy()
        assert policy.is_retryable(RateLimitError("x"))
        assert not policy.is_retryable(BudgetExhaustedError("x"))
        assert not policy.is_retryable(FatalError("x"))
        assert not policy.should_retry(BudgetExhaustedError("x"), attempts=1)

    def test_should_retry_respects_attempt_bound(self):
        policy = RetryPolicy(max_retries=2)
        exc = TimeoutError("x")
        assert policy.should_retry(exc, attempts=1)
        assert policy.should_retry(exc, attempts=2)
        assert not policy.should_retry(exc, attempts=3)
        assert not policy.should_retry(ValueError("x"), attempts=1)

    def test_executor_accepts_policy_object(self):
        policy = RetryPolicy(max_retries=7, backoff_base=0.3, backoff_cap=0.9)
        executor = BatchExecutor(workers=2, policy=policy)
        assert executor.policy is policy
        assert executor.max_retries == 7
        assert executor.backoff_delay(0) == pytest.approx(0.3)
        assert executor.backoff_delay(5) == pytest.approx(0.9)

    def test_executor_rejects_policy_plus_loose_knobs(self):
        with pytest.raises(ValueError):
            BatchExecutor(policy=RetryPolicy(), max_retries=3)

    def test_legacy_knobs_fold_into_a_policy(self):
        executor = BatchExecutor(max_retries=5, backoff_base=0.2)
        assert executor.policy.max_retries == 5
        assert executor.policy.backoff_base == pytest.approx(0.2)
        assert executor.policy.backoff_cap == pytest.approx(2.0)  # default

    def test_client_shares_the_policy_type(self):
        client = CompletionClient(CountingBackend(),
                                  retry_policy=RetryPolicy(max_retries=4))
        assert client.max_retries == 4
        with pytest.raises(ValueError):
            CompletionClient(CountingBackend(), max_retries=1,
                             retry_policy=RetryPolicy())


class CountingFn:
    """Thread-safe call counter around an arbitrary result."""

    def __init__(self, result="ok", error=None, fail_first=frozenset()):
        self.calls = 0
        self.result = result
        self.error = error
        self.fail_first = set(fail_first)
        self._failed = set()
        self._lock = threading.Lock()

    def __call__(self, item):
        with self._lock:
            self.calls += 1
            if self.error is not None:
                raise self.error(f"fatal on {item!r}")
            if item in self.fail_first and item not in self._failed:
                self._failed.add(item)
                raise TimeoutError(f"transient on {item!r}")
        return f"{self.result}:{item}"


class TestFailFast:
    def test_budget_exhaustion_raises_without_backoff_sleeps(self):
        """The ISSUE acceptance bar: SharedBudget(max_requests=N) with 8
        workers must raise immediately — zero backoff sleeps for
        exhausted charges — with total calls <= N.  The backoff is set so
        large that a single retry sleep would blow the time budget."""
        budget = SharedBudget(max_requests=5)
        executor = BatchExecutor(
            workers=8, max_retries=3, backoff_base=30.0, budget=budget,
        )
        fn = CountingFn()
        started = time.perf_counter()
        with pytest.raises(BudgetExhaustedError):
            executor.map(fn, list(range(32)))
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0  # any single backoff would take >= 30s
        assert fn.calls <= 5
        assert budget.n_requests == 5
        assert executor.aborted

    def test_budget_exhaustion_is_still_a_rate_limit_error(self):
        budget = SharedBudget(max_requests=1)
        executor = BatchExecutor(workers=1, max_retries=0, budget=budget)
        with pytest.raises(RateLimitError):
            executor.map(CountingFn(), ["a", "b"])

    def test_fatal_error_cancels_pending_items(self):
        executor = BatchExecutor(workers=2, backoff_base=0.0)
        fn = CountingFn(error=FatalError)
        with pytest.raises(FatalError):
            executor.map(fn, list(range(200)))
        # Queued futures are cancelled and aborted workers never call fn:
        # only the in-flight handful runs, not the remaining ~198 items.
        assert fn.calls <= 10

    def test_abort_wakes_workers_mid_backoff(self):
        """A worker sleeping a 30s backoff must wake the moment another
        worker hits a fatal error — not after its sleep expires."""
        executor = BatchExecutor(workers=2, max_retries=3, backoff_base=30.0)
        fatal_after = 0.05

        def fn(item):
            if item == "transient":
                raise TimeoutError("retry me")
            time.sleep(fatal_after)
            raise FatalError("permanent")

        started = time.perf_counter()
        with pytest.raises(FatalError):
            executor.map(fn, ["transient", "fatal"])
        assert time.perf_counter() - started < 5.0

    def test_client_budget_exhaustion_is_fatal(self):
        client = CompletionClient(CountingBackend(), requests_per_run=2)
        client.complete("a")
        client.complete("b")
        with pytest.raises(BudgetExhaustedError):
            client.complete("c")

    def test_complete_many_budget_exhaustion_fails_fast(self):
        """End to end through the client: 8 workers, budget of 5, large
        would-be backoff — the run must fail immediately."""
        backend = CountingBackend()
        client = CompletionClient(backend, requests_per_run=5)
        started = time.perf_counter()
        with pytest.raises(BudgetExhaustedError):
            client.complete_many([f"p{i}" for i in range(64)], workers=8)
        assert time.perf_counter() - started < 5.0
        assert backend.calls <= 5

    def test_executor_is_reusable_after_abort(self):
        budget = SharedBudget(max_requests=2)
        executor = BatchExecutor(workers=4, budget=budget)
        with pytest.raises(BudgetExhaustedError):
            executor.map(CountingFn(), list(range(8)))
        assert executor.aborted
        fresh = BatchExecutor(workers=4)
        assert executor.map is not None  # abort state clears on next map
        executor.budget = None
        assert executor.map(str.upper, ["a", "b"]) == ["A", "B"]
        assert not executor.aborted
        assert fresh.map(str.upper, ["c"]) == ["C"]

    def test_transient_retries_still_work_after_fail_fast_change(self):
        executor = BatchExecutor(workers=4, max_retries=1, backoff_base=0.0)
        fn = CountingFn(fail_first={"a", "c"})
        assert executor.map(fn, ["a", "b", "c"]) == ["ok:a", "ok:b", "ok:c"]
        retried = {r.index: r.attempts for r in executor.records}
        assert retried[0] == 2 and retried[1] == 1 and retried[2] == 2


class TestCompleteMany:
    def test_matches_serial_completes(self):
        prompts = [f"prompt {i}? yes or no" for i in range(16)]
        serial = CompletionClient(CountingBackend())
        expected = [serial.complete(prompt) for prompt in prompts]
        parallel = CompletionClient(CountingBackend())
        assert parallel.complete_many(prompts, workers=8) == expected

    def test_distinct_prompts_each_hit_backend_once(self):
        backend = CountingBackend()
        client = CompletionClient(backend)
        prompts = [f"p{i}" for i in range(20)]
        client.complete_many(prompts, workers=8)
        assert backend.calls == 20
        assert client.stats["backend_calls"] == 20

    def test_budget_never_exceeded_under_concurrency(self):
        backend = CountingBackend()
        client = CompletionClient(backend, requests_per_run=7)
        with pytest.raises(RateLimitError):
            client.complete_many([f"p{i}" for i in range(32)], workers=8)
        assert backend.calls <= 7
        assert client.stats["backend_calls"] <= 7

    def test_complete_all_helper(self):
        backend = CountingBackend()
        client = CompletionClient(backend)
        prompts = [f"p{i}" for i in range(6)]
        assert complete_all(client, prompts, workers=3) == [
            f"echo:p{i}" for i in range(6)
        ]

    def test_request_log_populated(self):
        client = CompletionClient(CountingBackend())
        client.complete_many(["a", "b", "c"], workers=2)
        assert client.usage.latency_summary()["n_requests"] == 3


class TestConcurrentPromptCache:
    def test_many_threads_on_one_memory_connection(self):
        cache = PromptCache(":memory:")
        n_threads, n_keys = 12, 25
        errors = []

        def worker(thread_index):
            try:
                for i in range(n_keys):
                    cache.put("m", f"prompt-{i}", f"answer-{i}")
                    assert cache.get("m", f"prompt-{i}") == f"answer-{i}"
                    assert len(cache) <= n_keys
                    assert cache.get("m", f"missing-{thread_index}") is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) == n_keys

    def test_concurrent_clients_share_cache(self):
        cache = PromptCache(":memory:")
        clients = [
            CompletionClient(CountingBackend(), cache=cache) for _ in range(4)
        ]
        prompts = [f"shared-{i}" for i in range(10)]

        def worker(client):
            client.complete_many(prompts, workers=4)

        threads = [
            threading.Thread(target=worker, args=(client,))
            for client in clients
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every prompt is answered identically no matter which client
        # computed it first.
        assert len(cache) == len(prompts)
        for client in clients:
            assert client.complete_many(prompts, workers=4) == [
                f"echo:{prompt}" for prompt in prompts
            ]


class TestTaskRunnerIntegration:
    def test_parallel_equals_serial_predictions(self, fm_175b):
        """The tentpole determinism guarantee, end to end on a task."""
        from repro.core.tasks import run_entity_matching
        from repro.datasets import load_dataset

        dataset = load_dataset("fodors_zagats")
        serial = run_entity_matching(
            fm_175b, dataset, k=0, max_examples=30, workers=1
        )
        parallel = run_entity_matching(
            fm_175b, dataset, k=0, max_examples=30, workers=8
        )
        assert serial.predictions == parallel.predictions
        assert serial.metric == parallel.metric

    def test_wrangler_batch_verbs(self):
        from repro.core import Wrangler

        wrangler = Wrangler("gpt3-175b")
        left = {"name": "blue heron", "phone": "415-775-7036"}
        right = {"name": "blue heron cafe", "phone": "415-775-7036"}
        verdicts = wrangler.match_many([(left, right)] * 4, workers=2)
        assert verdicts == [wrangler.match(left, right)] * 4

        row = {"name": "blue heron", "phone": "415-775-7036"}
        imputed = wrangler.impute_many([(row, "city")] * 3, workers=3)
        assert imputed == [wrangler.impute(row, "city")] * 3

        transformed = wrangler.transform_many(
            ["jan 5, 2021", "feb 7, 2022"],
            examples=[("mar 3, 2020", "2020-03-03")],
            workers=2,
        )
        assert transformed == [
            wrangler.transform(
                value, examples=[("mar 3, 2020", "2020-03-03")]
            )
            for value in ["jan 5, 2021", "feb 7, 2022"]
        ]

        verdict_maps = wrangler.detect_errors_many([row, row], workers=4)
        assert verdict_maps == [wrangler.detect_errors(row)] * 2


class TestPerRunAbortState:
    """Abort/fatal state is scoped to each map() call (chaos PR satellite)."""

    def test_reuse_across_failing_then_succeeding_batches(self):
        executor = BatchExecutor(workers=4)
        fatal = CountingFn(error=FatalError)
        with pytest.raises(FatalError):
            executor.map(fatal, list(range(8)))
        assert executor.aborted
        # Same executor, clean batch: must start with cleared abort state.
        assert executor.map(str.upper, ["a", "b", "c"]) == ["A", "B", "C"]
        assert not executor.aborted

    def test_empty_map_after_abort_clears_aborted(self):
        """Regression: the early return for empty input used to skip the
        abort reset, leaving ``aborted`` stale from the previous batch."""
        executor = BatchExecutor(workers=2)
        with pytest.raises(FatalError):
            executor.map(CountingFn(error=FatalError), [1, 2])
        assert executor.aborted
        assert executor.map(str.upper, []) == []
        assert not executor.aborted

    def test_concurrent_maps_do_not_share_abort(self):
        """A fatal abort in one map() must not cancel an unrelated one
        running concurrently on the same executor."""
        executor = BatchExecutor(workers=2)
        release = threading.Event()
        results: dict[str, object] = {}

        def slow_ok(item):
            release.wait(timeout=5.0)
            return f"ok:{item}"

        def run_slow():
            results["slow"] = executor.map(slow_ok, ["x", "y"])

        thread = threading.Thread(target=run_slow)
        thread.start()
        time.sleep(0.02)  # let the slow batch claim its _MapRun
        with pytest.raises(FatalError):
            executor.map(CountingFn(error=FatalError), [1, 2])
        release.set()
        thread.join(timeout=5.0)
        assert results["slow"] == ["ok:x", "ok:y"]


class TestScatterMode:
    def test_on_error_return_captures_failures_in_slot(self):
        executor = BatchExecutor(workers=2, policy=RetryPolicy(max_retries=0))
        flaky = FlakyFn(n_failures=99)  # never recovers

        def fn(item):
            if item == "bad":
                return flaky(item)
            return f"ok:{item}"

        results = executor.map(fn, ["a", "bad", "b"], on_error="return")
        assert results[0] == "ok:a"
        assert results[2] == "ok:b"
        failure = results[1]
        assert isinstance(failure, BatchFailure)
        assert failure.index == 1
        assert failure.error_type == "RateLimitError"
        assert failure.attempts == 1

    def test_scatter_counts_retry_attempts(self):
        executor = BatchExecutor(
            workers=1, policy=RetryPolicy(max_retries=2, backoff_base=0.0)
        )
        results = executor.map(
            FlakyFn(n_failures=99), ["only"], on_error="return"
        )
        assert isinstance(results[0], BatchFailure)
        assert results[0].attempts == 3  # 1 try + 2 retries

    def test_fatal_still_aborts_in_scatter_mode(self):
        budget = SharedBudget(max_requests=2)
        executor = BatchExecutor(workers=2, budget=budget)
        with pytest.raises(BudgetExhaustedError):
            executor.map(CountingFn(), list(range(8)), on_error="return")

    def test_rejects_unknown_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            BatchExecutor(workers=1).map(str, ["a"], on_error="ignore")


class TestCircuitBreaker:
    def test_trips_after_consecutive_transient_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["trips"] == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.01)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.02)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["trips"] == 2

    def test_executor_fails_pending_fast_when_open(self):
        """With the circuit open, items fail with CircuitOpenError
        without touching the backend or paying backoff sleeps."""
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        executor = BatchExecutor(
            workers=1, breaker=breaker,
            policy=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        results = executor.map(
            FlakyFn(n_failures=99), ["a", "b"], on_error="return"
        )
        assert all(isinstance(r, BatchFailure) for r in results)
        assert breaker.state == "open"
        counting = CountingFn()
        started = time.perf_counter()
        results = executor.map(
            counting, ["c", "d", "e"], on_error="return"
        )
        assert time.perf_counter() - started < 1.0
        assert counting.calls == 0  # breaker rejected before fn ran
        assert all(
            isinstance(r, BatchFailure)
            and r.error_type == "CircuitOpenError"
            for r in results
        )

    def test_breaker_recovery_end_to_end(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=0.01)
        executor = BatchExecutor(
            workers=1, breaker=breaker,
            policy=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        executor.map(FlakyFn(n_failures=99), ["a", "b"], on_error="return")
        assert breaker.state == "open"
        time.sleep(0.02)
        # Endpoint "recovered": the half-open probe succeeds and the
        # circuit closes, so the whole batch completes normally.
        results = executor.map(str.upper, ["c", "d"], on_error="return")
        assert results == ["C", "D"]
        assert breaker.state == "closed"

    def test_validates_constructor_args(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)
