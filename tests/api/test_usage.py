"""Tests for usage accounting and token counting."""

import threading

import pytest

from repro.api import Usage, UsageTracker, count_tokens, usage_delta

pytestmark = pytest.mark.smoke


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_word_count_ballpark(self):
        text = "the quick brown fox jumps over the lazy dog"
        assert 7 <= count_tokens(text) <= 12

    def test_long_words_cost_more(self):
        assert count_tokens("antidisestablishmentarianism") > count_tokens("cat")

    def test_digits_count_individually(self):
        assert count_tokens("12345") == 5

    def test_monotone_under_concatenation(self):
        a, b = "name: sony camera", "price: 199.99"
        assert count_tokens(a + " " + b) >= max(count_tokens(a), count_tokens(b))

    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            # Pinned counts: the cost model must not drift silently.
            # Words cost 1 + len // 7; digits/punctuation cost 1 each.
            ("cat", 1),
            ("entity", 1),
            ("matching", 2),
            ("antidisestablishmentarianism", 5),
            ("12345", 5),
            ("the quick brown fox jumps over the lazy dog", 9),
            ("name: blue heron. phone: 415-775-7036. city?", 22),
            (
                "Product A: name: sony camera 10x zoom. "
                "Product B: name: sony cam. "
                "Are Product A and Product B the same? Yes or No?",
                37,
            ),
        ],
    )
    def test_regression_pinned_counts(self, text, expected):
        assert count_tokens(text) == expected

    def test_word_rate_matches_docstring(self):
        """One token plus one extra per full 7 characters of a word."""
        assert count_tokens("a" * 6) == 1
        assert count_tokens("a" * 7) == 2
        assert count_tokens("a" * 13) == 2
        assert count_tokens("a" * 14) == 3


class TestUsage:
    def test_cost_uses_model_rate(self):
        usage = Usage(model="gpt3-175b", prompt_tokens=1000, completion_tokens=0)
        assert usage.cost_usd == pytest.approx(0.02)
        cheap = Usage(model="gpt3-6.7b", prompt_tokens=1000, completion_tokens=0)
        assert cheap.cost_usd < usage.cost_usd

    def test_total_tokens(self):
        usage = Usage(model="m", prompt_tokens=10, completion_tokens=5)
        assert usage.total_tokens == 15

    def test_unknown_model_costs_nothing(self):
        """An unpriced model reports $0.00, not a fabricated rate.

        The accounting used to fall back to the 175B price for any
        unrecognized name, inventing dollar figures out of thin air."""
        usage = Usage(model="not-a-model", prompt_tokens=1000,
                      completion_tokens=1000)
        assert usage.cost_usd == 0.0
        assert usage.known_price is False

    def test_known_price_flag(self):
        assert Usage(model="gpt3-175b").known_price is True
        assert Usage(model="gpt3-6.7b").known_price is True
        assert Usage(model="counting").known_price is False

    def test_summary_marks_unknown_prices(self):
        tracker = UsageTracker()
        tracker.record("mystery-model", "a prompt", "a reply", cached=False)
        assert "(price unknown)" in tracker.summary()
        tracker = UsageTracker()
        tracker.record("gpt3-175b", "a prompt", "a reply", cached=False)
        assert "(price unknown)" not in tracker.summary()


class TestTracker:
    def test_records_per_model(self):
        tracker = UsageTracker()
        tracker.record("gpt3-175b", "a prompt here", "Yes", cached=False)
        tracker.record("gpt3-6.7b", "other prompt", "No", cached=False)
        assert set(tracker.per_model) == {"gpt3-175b", "gpt3-6.7b"}

    def test_cached_requests_free(self):
        tracker = UsageTracker()
        tracker.record("m", "prompt text", "answer", cached=False)
        tokens_before = tracker.per_model["m"].total_tokens
        tracker.record("m", "prompt text", "answer", cached=True)
        usage = tracker.per_model["m"]
        assert usage.n_requests == 2
        assert usage.n_cache_hits == 1
        assert usage.total_tokens == tokens_before

    def test_total_cost(self):
        tracker = UsageTracker()
        tracker.record("gpt3-175b", "x " * 100, "y", cached=False)
        assert tracker.total_cost_usd > 0

    def test_summary_text(self):
        tracker = UsageTracker()
        assert tracker.summary() == "no usage recorded"
        tracker.record("m", "p", "c", cached=False)
        assert "m: 1 requests" in tracker.summary()

    def test_record_is_thread_safe(self):
        tracker = UsageTracker()
        n_threads, n_records = 8, 200

        def worker():
            for _ in range(n_records):
                tracker.record("m", "one two three", "Yes", cached=False)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        usage = tracker.per_model["m"]
        assert usage.n_requests == n_threads * n_records
        assert usage.prompt_tokens == 3 * n_threads * n_records

    def test_latency_summary_empty(self):
        summary = UsageTracker().latency_summary()
        assert summary["n_requests"] == 0
        assert summary["mean_s"] == 0.0
        assert summary["dropped_records"] == 0


class _Record:
    def __init__(self, latency_s, ok=True, attempts=1):
        self.latency_s = latency_s
        self.ok = ok
        self.attempts = attempts


class TestCappedRequestLog:
    def test_uncapped_by_default(self):
        tracker = UsageTracker()
        for i in range(500):
            tracker.log_request(_Record(latency_s=float(i)))
        assert len(tracker.request_log) == 500
        assert tracker.dropped_records == 0

    def test_cap_bounds_log_and_counts_drops(self):
        tracker = UsageTracker(max_request_log=10)
        for i in range(25):
            tracker.log_request(_Record(latency_s=float(i)))
        assert len(tracker.request_log) == 10
        assert tracker.dropped_records == 15
        # Window holds the most recent records, oldest first.
        assert [r.latency_s for r in tracker.request_log] == [
            float(i) for i in range(15, 25)
        ]

    def test_latency_summary_covers_window_only(self):
        tracker = UsageTracker(max_request_log=3)
        tracker.log_request(_Record(latency_s=100.0, ok=False, attempts=4))
        for latency in (1.0, 2.0, 3.0):
            tracker.log_request(_Record(latency_s=latency))
        summary = tracker.latency_summary()
        assert summary["n_requests"] == 3
        assert summary["n_failures"] == 0
        assert summary["n_retries"] == 0
        assert summary["mean_s"] == pytest.approx(2.0)
        assert summary["max_s"] == 3.0
        assert summary["dropped_records"] == 1

    def test_cap_validates(self):
        with pytest.raises(ValueError):
            UsageTracker(max_request_log=0)

    def test_capped_log_is_thread_safe(self):
        tracker = UsageTracker(max_request_log=50)
        n_threads, n_records = 8, 100

        def worker():
            for _ in range(n_records):
                tracker.log_request(_Record(latency_s=0.01))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracker.request_log) == 50
        assert tracker.dropped_records == n_threads * n_records - 50


class TestSnapshotDelta:
    def test_snapshot_is_a_copy(self):
        tracker = UsageTracker()
        tracker.record("m", "one two", "Yes", cached=False)
        snapshot = tracker.snapshot()
        tracker.record("m", "three four", "No", cached=False)
        assert snapshot["m"]["n_requests"] == 1  # unaffected by later records

    def test_delta_attributes_one_window(self):
        """usage_delta(before, after) isolates what one run accrued on a
        shared tracker — the basis of the manifest's cost section."""
        tracker = UsageTracker()
        tracker.record("m", "warmup prompt", "x", cached=False)
        before = tracker.snapshot()
        tracker.record("m", "one two three", "Yes", cached=False)
        tracker.record("m", "one two three", "Yes", cached=True)
        delta = usage_delta(before, tracker.snapshot())
        assert delta["m"].n_requests == 2
        assert delta["m"].n_cache_hits == 1
        assert delta["m"].prompt_tokens == 3

    def test_delta_skips_untouched_models(self):
        tracker = UsageTracker()
        tracker.record("idle", "p", "c", cached=False)
        before = tracker.snapshot()
        tracker.record("busy", "p", "c", cached=False)
        delta = usage_delta(before, tracker.snapshot())
        assert set(delta) == {"busy"}

    def test_delta_from_empty_before(self):
        tracker = UsageTracker()
        tracker.record("m", "a prompt", "c", cached=False)
        delta = usage_delta({}, tracker.snapshot())
        assert delta["m"].n_requests == 1
