"""Tests for the SQLite prompt cache."""

import pytest

from repro.api import PromptCache

pytestmark = pytest.mark.smoke


@pytest.fixture()
def cache():
    return PromptCache(":memory:")


class TestCache:
    def test_miss_then_hit(self, cache):
        assert cache.get("m", "prompt") is None
        cache.put("m", "prompt", "answer")
        assert cache.get("m", "prompt") == "answer"

    def test_model_isolation(self, cache):
        cache.put("m1", "prompt", "a1")
        assert cache.get("m2", "prompt") is None

    def test_temperature_isolation(self, cache):
        cache.put("m", "prompt", "cold", temperature=0.0)
        assert cache.get("m", "prompt", temperature=0.7) is None

    def test_overwrite(self, cache):
        cache.put("m", "p", "first")
        cache.put("m", "p", "second")
        assert cache.get("m", "p") == "second"
        assert len(cache) == 1

    def test_len_and_clear(self, cache):
        cache.put("m", "p1", "a")
        cache.put("m", "p2", "b")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_file_persistence(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        first = PromptCache(path)
        first.put("m", "prompt", "answer")
        first.close()
        second = PromptCache(path)
        assert second.get("m", "prompt") == "answer"
        second.close()

    def test_unicode_prompts(self, cache):
        cache.put("m", "prømpt → ünïcode", "svar")
        assert cache.get("m", "prømpt → ünïcode") == "svar"
