"""Tests for the SQLite prompt cache."""

import threading
import time

import pytest

from repro.api import PromptCache, get_default_cache, set_default_cache

pytestmark = pytest.mark.smoke


@pytest.fixture()
def cache():
    return PromptCache(":memory:")


class TestCache:
    def test_miss_then_hit(self, cache):
        assert cache.get("m", "prompt") is None
        cache.put("m", "prompt", "answer")
        assert cache.get("m", "prompt") == "answer"

    def test_model_isolation(self, cache):
        cache.put("m1", "prompt", "a1")
        assert cache.get("m2", "prompt") is None

    def test_temperature_isolation(self, cache):
        cache.put("m", "prompt", "cold", temperature=0.0)
        assert cache.get("m", "prompt", temperature=0.7) is None

    def test_overwrite(self, cache):
        cache.put("m", "p", "first")
        cache.put("m", "p", "second")
        assert cache.get("m", "p") == "second"
        assert len(cache) == 1

    def test_len_and_clear(self, cache):
        cache.put("m", "p1", "a")
        cache.put("m", "p2", "b")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_file_persistence(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        first = PromptCache(path)
        first.put("m", "prompt", "answer")
        first.close()
        second = PromptCache(path)
        assert second.get("m", "prompt") == "answer"
        second.close()

    def test_unicode_prompts(self, cache):
        cache.put("m", "prømpt → ünïcode", "svar")
        assert cache.get("m", "prømpt → ünïcode") == "svar"

    def test_created_at_stamped_from_python(self, cache):
        """Rows carry a real wall-clock timestamp set at insert time.

        The stamp comes from Python, not a DDL default — the previous
        ``DEFAULT (unixepoch('subsec'))`` needed SQLite >= 3.42 and broke
        table creation on interpreters bundling an older library."""
        before = time.time()
        cache.put("m", "p", "a")
        after = time.time()
        (created_at,) = cache._conn.execute(
            "SELECT created_at FROM completions"
        ).fetchone()
        assert before <= created_at <= after

    def test_overwrite_refreshes_created_at(self, cache):
        cache.put("m", "p", "first")
        (first_at,) = cache._conn.execute(
            "SELECT created_at FROM completions"
        ).fetchone()
        time.sleep(0.01)
        cache.put("m", "p", "second")
        (second_at,) = cache._conn.execute(
            "SELECT created_at FROM completions"
        ).fetchone()
        assert second_at > first_at

    def test_file_cache_uses_wal_mode(self, tmp_path):
        """File-backed caches run in WAL so concurrent processes pointed
        at one --cache file can read while another writes."""
        cache = PromptCache(str(tmp_path / "cache.sqlite"))
        (mode,) = cache._conn.execute("PRAGMA journal_mode").fetchone()
        cache.close()
        assert mode == "wal"

    def test_memory_cache_skips_wal(self, cache):
        (mode,) = cache._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "memory"

    @pytest.mark.parametrize("path", [
        ":memory:",
        "",
        "file::memory:",
        "file::memory:?cache=shared",
        "file:chaoscache?mode=memory&cache=shared",
    ])
    def test_every_memory_spelling_skips_wal(self, path):
        """WAL is file-path-only; every in-memory spelling sqlite3
        accepts (classic, anonymous temp, and file: URIs) must skip the
        pragma — none may come up in WAL mode."""
        cache = PromptCache(path)
        (mode,) = cache._conn.execute("PRAGMA journal_mode").fetchone()
        cache.put("m", "p", "c")
        assert cache.get("m", "p") == "c"
        cache.close()
        assert mode != "wal"

    def test_file_uri_to_real_path_still_uses_wal(self, tmp_path):
        cache = PromptCache(f"file:{tmp_path / 'uri_cache.sqlite'}")
        (mode,) = cache._conn.execute("PRAGMA journal_mode").fetchone()
        cache.put("m", "p", "c")
        assert cache.get("m", "p") == "c"
        cache.close()
        assert mode == "wal"


class TestConcurrency:
    def test_file_cache_opens_per_thread_connections(self, tmp_path):
        """File-backed caches give each thread its own sqlite handle so
        WAL readers run in parallel instead of sharing one connection."""
        cache = PromptCache(str(tmp_path / "cache.sqlite"))
        seen = {}

        def probe(name):
            cache.put("m", name, "x")
            seen[name] = id(cache._conn)

        threads = [
            threading.Thread(target=probe, args=(f"t{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        main_conn = id(cache._conn)
        cache.close()
        assert len(set(seen.values()) | {main_conn}) == 4

    def test_memory_cache_shares_one_connection(self):
        """Per-thread :memory: connections would each see an empty
        database — memory paths must keep the single shared handle."""
        cache = PromptCache(":memory:")
        cache.put("m", "p", "answer")
        result = {}

        def reader():
            result["value"] = cache.get("m", "p")

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join()
        assert result["value"] == "answer"

    def test_hammer_eight_threads_mixed_get_put(self, tmp_path):
        """8 threads × mixed get/put on one file-backed cache.

        Guards the per-thread-connection design: a single sqlite
        connection shared across threads without serialization corrupts
        statements or raises under this load."""
        cache = PromptCache(str(tmp_path / "hammer.sqlite"))
        n_threads, n_ops = 8, 100
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(worker_id):
            barrier.wait()
            try:
                for i in range(n_ops):
                    key = f"w{worker_id}-p{i % 10}"
                    if i % 3 == 0:
                        cache.put("m", key, f"c{worker_id}-{i}")
                    else:
                        value = cache.get("m", key)
                        assert value is None or value.startswith(
                            f"c{worker_id}-"
                        )
                    # Cross-thread reads of a well-known hot key.
                    cache.put("m", "hot", "shared")
                    assert cache.get("m", "hot") == "shared"
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.get("m", "hot") == "shared"
        assert len(cache) == 1 + n_threads * 10
        cache.close()


class TestDefaultCache:
    def test_unset_by_default(self):
        assert get_default_cache() is None

    def test_set_and_clear(self):
        cache = PromptCache(":memory:")
        try:
            set_default_cache(cache)
            assert get_default_cache() is cache
        finally:
            set_default_cache(None)
        assert get_default_cache() is None

    def test_engine_routes_string_models_through_default_cache(self):
        """run_task('model-name', ...) must serve repeats from the
        installed default cache — that is what makes the CLI's --cache
        flag effective without threading a parameter everywhere."""
        from repro.core.tasks import run_task
        from repro.datasets import load_dataset

        cache = PromptCache(":memory:")
        dataset = load_dataset("fodors_zagats")
        try:
            set_default_cache(cache)
            run_task("entity_matching", "gpt3-175b", dataset, k=0,
                     max_examples=5)
            assert len(cache) == 5
            second = run_task("entity_matching", "gpt3-175b", dataset, k=0,
                              max_examples=5)
        finally:
            set_default_cache(None)
        assert second.manifest.cache["hits"] == 5
        assert second.manifest.cache_hit_rate == 1.0
