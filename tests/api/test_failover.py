"""Backend health gating and equivalence-group failover.

DESIGN §4f's second layer: per-backend circuits
(:class:`~repro.api.resilience.BackendHealthTracker`), the
deterministic routing order (:class:`~repro.api.resilience.
FailoverPolicy` — healthy members in declared order, refused circuits
demoted to last resort, never skipped), and the
:class:`~repro.api.backends.FailoverBackend` itself: only wire-level
failures fail over, all-members-fail propagates the *primary's* error,
and budget charging stays exactly-once because the group sits below
the :class:`~repro.api.client.CompletionClient`.
"""

from __future__ import annotations

import pytest

from repro.api.backends import (
    DirectOpenAIBackend,
    FailoverBackend,
    InProcessFakeTransport,
    get_backend,
    register_backend,
    register_failover,
    unregister_backend,
)
from repro.api.resilience import BackendHealthTracker, FailoverPolicy
from repro.api.retry import (
    BackendRateLimitError,
    BackendUnavailableError,
    BudgetExhaustedError,
    MalformedResponseError,
    classify_http_error,
)

pytestmark = [pytest.mark.smoke, pytest.mark.chaos]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FlakyBackend:
    """Scripted member: fails the first ``fail_first`` completions."""

    def __init__(self, name: str, fail_first: int = 0, error=None):
        self.name = name
        self.fail_first = fail_first
        self.error = error or classify_http_error(503, f"{name} down")
        self.calls = 0

    def complete(self, prompt: str, temperature: float = 0.0) -> str:
        self.calls += 1
        if self.calls <= self.fail_first:
            raise self.error
        return f"{self.name}:{prompt}"


class TestHealthTracker:
    def test_circuit_opens_after_consecutive_failures(self):
        clock = FakeClock()
        health = BackendHealthTracker(
            failure_threshold=3, cooldown_s=5.0, clock=clock
        )
        for _ in range(2):
            health.record("api", ok=False)
        assert health.state("api") == "closed"
        assert health.allow("api")
        health.record("api", ok=False)
        assert health.state("api") == "open"
        assert not health.allow("api")

    def test_success_resets_the_consecutive_count(self):
        health = BackendHealthTracker(failure_threshold=3)
        for _ in range(2):
            health.record("api", ok=False)
        health.record("api", ok=True)
        for _ in range(2):
            health.record("api", ok=False)
        assert health.state("api") == "closed"

    def test_cooldown_half_opens_and_probe_decides(self):
        clock = FakeClock()
        health = BackendHealthTracker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        health.record("api", ok=False)
        assert not health.allow("api")
        clock.advance(5.0)
        assert health.allow("api")          # half-open probe admitted
        assert health.state("api") == "half_open"
        health.record("api", ok=False)      # probe failed → re-open
        assert health.state("api") == "open"
        assert not health.allow("api")
        clock.advance(5.0)
        assert health.allow("api")
        health.record("api", ok=True)       # probe succeeded → closed
        assert health.state("api") == "closed"

    def test_allow_is_latch_free(self):
        # Consulting allow() must never consume a probe: a policy that
        # orders candidates checks members it may not end up serving.
        clock = FakeClock()
        health = BackendHealthTracker(
            failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        health.record("api", ok=False)
        clock.advance(1.0)
        for _ in range(5):
            assert health.allow("api")

    def test_unknown_backend_is_healthy(self):
        health = BackendHealthTracker()
        assert health.allow("never-seen")
        assert health.state("never-seen") == "closed"
        assert health.error_rate("never-seen") == 0.0

    def test_error_rate_over_rolling_window(self):
        health = BackendHealthTracker(window_size=4, failure_threshold=100)
        for ok in (True, False, False, True):
            health.record("api", ok=ok)
        assert health.error_rate("api") == 0.5
        health.record("api", ok=True)  # evicts the oldest (True)
        assert health.error_rate("api") == 0.5

    def test_snapshot_is_json_ready(self):
        import json

        health = BackendHealthTracker(failure_threshold=1)
        health.record("a", ok=True, latency_s=0.1)
        health.record("b", ok=False)
        snapshot = health.snapshot()
        json.dumps(snapshot)
        assert snapshot["a"]["state"] == "closed"
        assert snapshot["b"]["state"] == "open"
        assert snapshot["b"]["consecutive_failures"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendHealthTracker(window_size=0)
        with pytest.raises(ValueError):
            BackendHealthTracker(failure_threshold=0)
        with pytest.raises(ValueError):
            BackendHealthTracker(cooldown_s=-1.0)


class TestFailoverPolicy:
    def test_declared_order_when_all_healthy(self):
        policy = FailoverPolicy(["a", "b", "c"])
        assert policy.candidates() == ["a", "b", "c"]

    def test_open_circuit_demoted_not_skipped(self):
        clock = FakeClock()
        health = BackendHealthTracker(failure_threshold=1, clock=clock)
        policy = FailoverPolicy(["a", "b", "c"], health=health)
        health.record("a", ok=False)
        assert policy.candidates() == ["b", "c", "a"]

    def test_all_open_still_covers_the_group(self):
        clock = FakeClock()
        health = BackendHealthTracker(failure_threshold=1, clock=clock)
        policy = FailoverPolicy(["a", "b"], health=health)
        health.record("a", ok=False)
        health.record("b", ok=False)
        assert policy.candidates() == ["a", "b"]

    def test_parse_cli_spec(self):
        policy = FailoverPolicy.parse("gpt3-175b, gpt3-6.7b ,gpt3-1.3b")
        assert policy.members == ("gpt3-175b", "gpt3-6.7b", "gpt3-1.3b")

    def test_validation(self):
        with pytest.raises(ValueError):
            FailoverPolicy([])
        with pytest.raises(ValueError):
            FailoverPolicy(["a", "a"])


class TestFailoverBackend:
    def test_primary_serves_when_healthy(self):
        primary = FlakyBackend("primary")
        replica = FlakyBackend("replica")
        group = FailoverBackend("group", [primary, replica])
        assert group.complete("p") == "primary:p"
        assert replica.calls == 0
        stats = group.failover_stats()
        assert stats["served_by_backend"] == {"primary": 1}

    def test_wire_failure_fails_over(self):
        primary = FlakyBackend("primary", fail_first=10**9)
        replica = FlakyBackend("replica")
        group = FailoverBackend("group", [primary, replica])
        assert group.complete("p") == "replica:p"
        stats = group.failover_stats()
        assert stats["attempts_by_backend"]["primary"] == 1
        assert stats["served_by_backend"] == {"replica": 1}

    @pytest.mark.parametrize("error", [
        classify_http_error(429, "slow down", retry_after_s=0.1),
        classify_http_error(503, "down"),
        MalformedResponseError("mangled"),
        ConnectionError("reset"),
        TimeoutError("stalled"),
    ])
    def test_every_wire_error_kind_fails_over(self, error):
        primary = FlakyBackend("primary", fail_first=10**9, error=error)
        replica = FlakyBackend("replica")
        group = FailoverBackend("group", [primary, replica])
        assert group.complete("p") == "replica:p"

    def test_non_wire_error_propagates_untouched(self):
        # A budget error (or any bug) is not a wire fault: failing over
        # would mask real problems and double-spend.
        primary = FlakyBackend(
            "primary", fail_first=10**9,
            error=BudgetExhaustedError("request budget of 3 exhausted"),
        )
        replica = FlakyBackend("replica")
        group = FailoverBackend("group", [primary, replica])
        with pytest.raises(BudgetExhaustedError):
            group.complete("p")
        assert replica.calls == 0

    def test_all_members_fail_raises_primary_error(self):
        primary = FlakyBackend(
            "primary", fail_first=10**9,
            error=classify_http_error(429, "primary 429", retry_after_s=2.0),
        )
        replica = FlakyBackend(
            "replica", fail_first=10**9,
            error=classify_http_error(503, "replica 503"),
        )
        group = FailoverBackend("group", [primary, replica])
        with pytest.raises(BackendRateLimitError) as excinfo:
            group.complete("p")
        # The primary's classification — and its Retry-After — is what
        # the retry layer above must honor.
        assert excinfo.value.retry_after_s == 2.0

    def test_open_primary_circuit_routes_to_replica(self):
        clock = FakeClock()
        health = BackendHealthTracker(
            failure_threshold=2, cooldown_s=60.0, clock=clock
        )
        primary = FlakyBackend("primary", fail_first=2)
        replica = FlakyBackend("replica")
        group = FailoverBackend("group", [primary, replica], health=health)
        group.complete("p1")  # primary fails once, replica serves
        group.complete("p2")  # primary fails again → circuit opens
        primary_calls = primary.calls
        group.complete("p3")  # circuit open: replica tried first
        assert primary.calls == primary_calls
        assert group.failover_stats()["health"]["primary"]["state"] == "open"

    def test_recovered_primary_serves_again_after_cooldown(self):
        clock = FakeClock()
        health = BackendHealthTracker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        primary = FlakyBackend("primary", fail_first=1)
        replica = FlakyBackend("replica")
        group = FailoverBackend("group", [primary, replica], health=health)
        group.complete("p1")  # opens the primary circuit
        clock.advance(5.0)
        assert group.complete("p2") == "primary:p2"  # probe succeeds
        assert health.state("primary") == "closed"

    def test_stats_shape_matches_manifest_schema_block(self):
        primary = FlakyBackend("primary", fail_first=1)
        replica = FlakyBackend("replica")
        group = FailoverBackend("group", [primary, replica])
        group.complete("p")
        stats = group.failover_stats()
        assert set(stats) == {
            "group", "members", "attempts_by_backend",
            "served_by_backend", "health",
        }
        assert stats["group"] == "group"
        assert stats["members"] == ["primary", "replica"]

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            FailoverBackend("group", [])


class TestRegistry:
    def test_register_failover_resolves_fresh_groups(self):
        register_backend(
            "ft-primary",
            lambda: DirectOpenAIBackend(
                "gpt3-175b", transport=InProcessFakeTransport()
            ),
        )
        register_backend(
            "ft-replica",
            lambda: DirectOpenAIBackend(
                "gpt3-175b", transport=InProcessFakeTransport()
            ),
        )
        register_failover("ft-group", ["ft-primary", "ft-replica"])
        try:
            group = get_backend("ft-group")
            assert isinstance(group, FailoverBackend)
            assert group.members == ("ft-primary", "ft-replica")
            assert group.complete("hello") == get_backend(
                "ft-primary"
            ).complete("hello")
            # Fresh instance per resolution: stats do not leak between runs.
            again = get_backend("ft-group")
            assert again is not group
            assert again.failover_stats()["served_by_backend"] == {}
        finally:
            for name in ("ft-group", "ft-primary", "ft-replica"):
                unregister_backend(name)

    def test_register_failover_requires_known_members(self):
        with pytest.raises(KeyError):
            register_failover("ghost-group", ["no-such-backend-anywhere"])

    def test_manifest_failover_block_end_to_end(self):
        # run_task over a registered group: the manifest grows a
        # failover block that validates against the run-manifest schema.
        import json
        import pathlib

        from repro.api.faults import ChaosTransport
        from repro.core.manifest import validate_manifest
        from repro.core.tasks import run_task

        register_backend(
            "ft-chaos-primary",
            lambda: DirectOpenAIBackend(
                "gpt3-175b",
                transport=ChaosTransport(
                    InProcessFakeTransport(), "wire-heavy", seed=0
                ),
            ),
        )
        register_backend(
            "ft-clean-replica",
            lambda: DirectOpenAIBackend(
                "gpt3-175b", transport=InProcessFakeTransport()
            ),
        )
        register_failover(
            "ft-chaos-group", ["ft-chaos-primary", "ft-clean-replica"]
        )
        try:
            run = run_task(
                task="entity_matching", model="ft-chaos-group",
                dataset="beer", k=2, selection="random", seed=0,
                max_examples=8, workers=2,
            )
        finally:
            for name in (
                "ft-chaos-group", "ft-chaos-primary", "ft-clean-replica"
            ):
                unregister_backend(name)
        assert run.coverage == 1.0
        block = run.manifest.failover
        assert block is not None
        assert block["group"] == "ft-chaos-group"
        schema_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "schemas" / "run_manifest.schema.json"
        )
        schema = json.loads(schema_path.read_text(encoding="utf-8"))
        errors = validate_manifest(run.manifest.to_dict(), schema)
        assert not errors, errors
