"""Tests for repro.api.abatch — the asyncio continuous-batching core.

The facade guarantee is the contract under test: AsyncBatchExecutor
takes the same constructor, exposes the same map/records/aborted API,
and produces byte-identical results, failure slots, and retry counts as
the thread-pool BatchExecutor at any concurrency.
"""

import threading
import time

import pytest

from repro.api import (
    AsyncBatchExecutor,
    BatchExecutor,
    CircuitBreaker,
    CompletionClient,
    FaultPlan,
    RetryPolicy,
    SharedBudget,
    get_default_executor_kind,
    get_serving_loop,
    make_executor,
    set_default_executor_kind,
)
from repro.api.abatch import shutdown_serving_loop
from repro.api.batch import BatchFailure
from repro.api.retry import (
    BudgetExhaustedError,
    FatalError,
    RateLimitError,
)
from repro.api.usage import UsageTracker, count_tokens


class Flaky:
    """Fails each item a fixed number of times before succeeding."""

    def __init__(self, failures: int, exc: type = RateLimitError):
        self.failures = failures
        self.exc = exc
        self.attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    def __call__(self, item: str) -> str:
        with self._lock:
            seen = self.attempts.get(item, 0)
            self.attempts[item] = seen + 1
        if seen < self.failures:
            raise self.exc(f"transient #{seen} for {item}")
        return item.upper()


def fast_policy(max_retries: int = 2) -> RetryPolicy:
    return RetryPolicy(max_retries=max_retries, backoff_base=0.001,
                       backoff_cap=0.002)


class TestServingLoop:
    def test_singleton_loop_on_daemon_thread(self):
        loop = get_serving_loop()
        assert get_serving_loop() is loop
        assert loop.is_running()

    def test_shutdown_and_restart(self):
        first = get_serving_loop()
        shutdown_serving_loop()
        assert first.is_closed()
        second = get_serving_loop()
        assert second is not first
        assert second.is_running()

    def test_shutdown_twice_is_safe(self):
        shutdown_serving_loop()
        shutdown_serving_loop()

    def test_shutdown_registered_atexit(self):
        """A long-lived process must not leak the daemon loop thread at
        interpreter teardown — shutdown is an atexit hook."""
        import atexit

        # Registering again is harmless (idempotent shutdown), so the
        # assertion is simply that the hook is registered right now.
        callbacks = getattr(atexit, "_ncallbacks", None)
        assert callbacks is None or callbacks() >= 1
        # The portable check: unregister finds it, then re-register.
        atexit.unregister(shutdown_serving_loop)
        atexit.register(shutdown_serving_loop)

    def test_shutdown_concurrent_with_get(self):
        """Hammer get_serving_loop() against shutdown_serving_loop()
        from many threads; no call may raise and the survivor loop (if
        any) must be running."""
        errors = []
        barrier = threading.Barrier(8)

        def getter():
            barrier.wait()
            for _ in range(50):
                try:
                    loop = get_serving_loop()
                    assert loop is not None
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        def stopper():
            barrier.wait()
            for _ in range(50):
                try:
                    shutdown_serving_loop()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [threading.Thread(target=getter) for _ in range(4)]
        threads += [threading.Thread(target=stopper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        shutdown_serving_loop()
        assert get_serving_loop().is_running()

    def test_shutdown_from_loop_thread_does_not_join_self(self):
        """Calling shutdown from a task on the loop itself must not
        deadlock or raise (join of the current thread is skipped)."""
        loop = get_serving_loop()
        done = threading.Event()
        errors = []

        def on_loop():
            try:
                shutdown_serving_loop()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                done.set()

        loop.call_soon_threadsafe(on_loop)
        assert done.wait(timeout=5.0)
        assert errors == []
        # The loop stops (it was asked to) and a fresh loop comes up.
        assert get_serving_loop().is_running()

    def test_map_survives_concurrent_shutdown(self):
        """map() retries once if a racing shutdown closes the loop
        between lookup and submit."""
        executor = AsyncBatchExecutor(workers=2)
        shutdown_serving_loop()
        assert executor.map(str.upper, ["a", "b"]) == ["A", "B"]


class TestAsyncMapBasics:
    def test_preserves_input_order(self):
        executor = AsyncBatchExecutor(workers=8)
        items = [f"item-{i}" for i in range(50)]
        assert executor.map(str.upper, items) == [i.upper() for i in items]

    def test_empty_input(self):
        assert AsyncBatchExecutor(workers=4).map(str.upper, []) == []

    def test_map_inside_loop_thread_raises(self):
        executor = AsyncBatchExecutor(workers=2)
        loop = get_serving_loop()
        caught = []

        def on_loop():
            try:
                executor.map(str.upper, ["a"])
            except RuntimeError as exc:
                caught.append(exc)

        loop.call_soon_threadsafe(on_loop)
        deadline = time.time() + 5
        while not caught and time.time() < deadline:
            time.sleep(0.01)
        assert caught and "serving loop" in str(caught[0])

    def test_invalid_on_error(self):
        with pytest.raises(ValueError):
            AsyncBatchExecutor(workers=2).map(str.upper, ["a"], on_error="bogus")

    def test_concurrent_maps_interleave(self):
        # Continuous batching: a second map() joins the in-flight stream
        # instead of waiting for the first to drain.
        executor = AsyncBatchExecutor(workers=4, offload=True)
        started = time.perf_counter()
        results = [None, None]

        def work(item):
            time.sleep(0.02)
            return item

        def call(slot):
            results[slot] = executor.map(work, list(range(8)))

        threads = [threading.Thread(target=call, args=(slot,))
                   for slot in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert results[0] == results[1] == list(range(8))
        # 16 items of 20ms at width 4 is 4 waves (~80ms) if the calls
        # interleave; serialized calls need 8 waves.  Allow slack.
        assert elapsed < 0.14


class TestFacadeParity:
    def test_plain_map_matches_thread_executor(self):
        items = [f"prompt {i}" for i in range(40)]
        thread_result = BatchExecutor(workers=8).map(str.upper, items)
        for workers in (1, 8):
            assert AsyncBatchExecutor(workers=workers).map(
                str.upper, items
            ) == thread_result

    def test_retry_counts_match(self):
        items = [f"item-{i}" for i in range(10)]
        outcomes = []
        for cls in (BatchExecutor, AsyncBatchExecutor):
            executor = cls(workers=4, policy=fast_policy())
            fn = Flaky(failures=1)
            result = executor.map(fn, items)
            outcomes.append((result, dict(fn.attempts)))
        assert outcomes[0] == outcomes[1]

    def test_scatter_failures_match(self):
        items = [f"item-{i}" for i in range(12)]

        def fn(item):
            if item.endswith(("3", "7")):
                raise RateLimitError(f"always down: {item}")
            return item.upper()

        def normalize(slots):
            return [
                (slot.index, slot.error_type, slot.attempts)
                if isinstance(slot, BatchFailure) else slot
                for slot in slots
            ]

        thread = BatchExecutor(workers=4, policy=fast_policy())
        expected = normalize(thread.map(fn, items, on_error="return"))
        for workers in (1, 8):
            executor = AsyncBatchExecutor(workers=workers, policy=fast_policy())
            assert normalize(
                executor.map(fn, items, on_error="return")
            ) == expected

    def test_raise_mode_raises_same_terminal_error(self):
        def fn(item):
            if item == "bad":
                raise ValueError("not retryable")
            return item

        for cls in (BatchExecutor, AsyncBatchExecutor):
            executor = cls(workers=4, policy=fast_policy())
            with pytest.raises(ValueError, match="not retryable"):
                executor.map(fn, ["ok-1", "bad", "ok-2"])

    def test_budget_exhaustion_is_fatal_and_aborts(self):
        items = [f"word{i}" for i in range(20)]
        per_item = count_tokens(items[0])
        for cls in (BatchExecutor, AsyncBatchExecutor):
            budget = SharedBudget(max_tokens=per_item * 5)
            executor = cls(workers=4, policy=fast_policy(), budget=budget)
            with pytest.raises(BudgetExhaustedError):
                executor.map(str.upper, items)
            assert executor.aborted
            assert budget.n_tokens <= per_item * 5

    def test_abort_is_scoped_per_map_call(self):
        def fn(item):
            if item == "boom":
                raise FatalError("dead")
            return item.upper()

        executor = AsyncBatchExecutor(workers=2, policy=fast_policy())
        with pytest.raises(FatalError):
            executor.map(fn, ["ok", "boom"])
        assert executor.aborted
        # Scoped abort: the executor is immediately reusable.
        assert executor.map(fn, ["fresh"]) == ["FRESH"]
        assert not executor.aborted

    def test_fatal_error_aborts_without_retries(self):
        for cls in (BatchExecutor, AsyncBatchExecutor):
            calls = []

            def fn(item):
                calls.append(item)
                raise FatalError("dead")

            executor = cls(workers=2, policy=fast_policy(max_retries=5))
            with pytest.raises(FatalError):
                executor.map(fn, list(range(10)))
            assert executor.aborted

    def test_breaker_opens_identically(self):
        items = [f"item-{i}" for i in range(8)]

        def fn(item):
            raise RateLimitError("down hard")

        def run(cls):
            breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
            executor = cls(
                workers=1, policy=fast_policy(max_retries=0), breaker=breaker
            )
            slots = executor.map(fn, items, on_error="return")
            return [slot.error_type for slot in slots]

        assert run(BatchExecutor) == run(AsyncBatchExecutor)

    def test_records_collected_like_thread_pool(self):
        usage = UsageTracker()
        executor = AsyncBatchExecutor(workers=4, usage=usage)
        executor.map(str.upper, ["a", "b", "c"])
        assert len(executor.records) == 3
        assert sorted(record.index for record in executor.records) == [0, 1, 2]
        assert all(record.ok and record.attempts == 1
                   for record in executor.records)
        assert len(usage.request_log) == 3


class TestTokenCost:
    def test_string_items_charged_in_full_by_default(self):
        budget = SharedBudget(max_tokens=10**6)
        AsyncBatchExecutor(workers=2, budget=budget).map(
            str.upper, ["one two", "three four five"]
        )
        assert budget.n_tokens == count_tokens("one two") + count_tokens(
            "three four five"
        )

    def test_token_cost_override_charges_suffix_only(self):
        budget = SharedBudget(max_tokens=10**6)
        executor = AsyncBatchExecutor(
            workers=2, budget=budget, token_cost=lambda item: 3
        )
        executor.map(str.upper, ["anything at all", "and more of it"])
        assert budget.n_tokens == 6

    def test_override_applies_to_thread_executor_too(self):
        budget = SharedBudget(max_tokens=10**6)
        BatchExecutor(workers=2, budget=budget, token_cost=lambda item: 7).map(
            str.upper, ["a", "b"]
        )
        assert budget.n_tokens == 14


class TestOffload:
    def test_offload_false_with_admission_rejected(self):
        from repro.api import AdmissionController

        with pytest.raises(ValueError, match="admission"):
            AsyncBatchExecutor(
                workers=2, admission=AdmissionController(), offload=False
            )

    def test_forced_offload_still_matches(self):
        items = [f"item-{i}" for i in range(16)]
        expected = BatchExecutor(workers=4).map(str.upper, items)
        assert AsyncBatchExecutor(workers=4, offload=True).map(
            str.upper, items
        ) == expected


class TestFaultPlanParity:
    def test_faulty_client_identical_across_executors_and_workers(self):
        prompts = [f"Question {i}: yes or no?" for i in range(24)]

        def run(cls, workers):
            client = CompletionClient(fault_plan=FaultPlan("ci", seed=11))
            executor = cls(
                workers=workers, policy=fast_policy(max_retries=4),
                usage=client.usage,
            )
            slots = executor.map(client.complete, prompts, on_error="return")
            return [
                (slot.index, slot.error_type)
                if isinstance(slot, BatchFailure) else slot
                for slot in slots
            ]

        baseline = run(BatchExecutor, 1)
        assert run(BatchExecutor, 8) == baseline
        assert run(AsyncBatchExecutor, 1) == baseline
        assert run(AsyncBatchExecutor, 8) == baseline


class TestMakeExecutor:
    def test_default_kind_is_thread(self):
        assert get_default_executor_kind() == "thread"
        assert type(make_executor(workers=2)) is BatchExecutor

    def test_explicit_kinds(self):
        assert type(make_executor("thread", workers=2)) is BatchExecutor
        assert type(make_executor("async", workers=2)) is AsyncBatchExecutor

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            make_executor("bogus")

    def test_process_default_routes_callers(self):
        set_default_executor_kind("async")
        try:
            assert type(make_executor(workers=2)) is AsyncBatchExecutor
        finally:
            set_default_executor_kind("thread")
        assert type(make_executor(workers=2)) is BatchExecutor

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            set_default_executor_kind("fiber")

    def test_kwargs_reach_both_kinds(self):
        policy = fast_policy()
        for kind in ("thread", "async"):
            executor = make_executor(kind, workers=3, policy=policy)
            assert executor.workers == 3
            assert executor.policy is policy
