"""Tests for repro.text.tokenize."""

import pytest
from hypothesis import given, strategies as st

from repro.text.tokenize import char_ngrams, sentence_split, word_ngrams, word_tokens


class TestWordTokens:
    def test_basic_split(self):
        assert word_tokens("hello world") == ["hello", "world"]

    def test_lowercases_by_default(self):
        assert word_tokens("Hello WORLD") == ["hello", "world"]

    def test_preserves_case_when_asked(self):
        assert word_tokens("Hello WORLD", lowercase=False) == ["Hello", "WORLD"]

    def test_inner_punctuation_kept(self):
        assert word_tokens("PCAnywhere 11.0 Host-Only CD-ROM!") == [
            "pcanywhere", "11.0", "host-only", "cd-rom",
        ]

    def test_apostrophes_and_slashes(self):
        assert word_tokens("rosemary's a/b") == ["rosemary's", "a/b"]

    def test_empty_string(self):
        assert word_tokens("") == []

    def test_punctuation_only(self):
        assert word_tokens("!!! ... ???") == []

    def test_strips_outer_punctuation(self):
        assert word_tokens("(hello)") == ["hello"]

    @given(st.text(max_size=80))
    def test_never_raises_and_tokens_nonempty(self, text):
        tokens = word_tokens(text)
        assert all(tokens), "no empty tokens"

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd")), max_size=40))
    def test_idempotent_on_own_output(self, text):
        tokens = word_tokens(text)
        assert word_tokens(" ".join(tokens)) == tokens


class TestCharNgrams:
    def test_padded_trigrams(self):
        assert char_ngrams("ab", n=3) == ["##a", "#ab", "ab#", "b##"]

    def test_unpadded(self):
        assert char_ngrams("abcd", n=2, pad=False) == ["ab", "bc", "cd"]

    def test_empty_string(self):
        assert char_ngrams("", n=3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", n=0)

    @given(st.text(min_size=1, max_size=30), st.integers(min_value=1, max_value=5))
    def test_count_formula_padded(self, text, n):
        grams = char_ngrams(text, n=n, pad=True)
        assert len(grams) == len(text) + n - 1

    @given(st.text(min_size=1, max_size=30), st.integers(min_value=1, max_value=5))
    def test_every_gram_has_length_n(self, text, n):
        grams = char_ngrams(text, n=n, pad=True)
        assert all(len(gram) == n for gram in grams)

    def test_unpadded_short_input_yields_nothing(self):
        # Regression: "ab" used to come back as a pseudo-trigram ["ab"],
        # letting any two short values Jaccard-match on undersized grams.
        assert char_ngrams("ab", n=3, pad=False) == []
        assert char_ngrams("a", n=2, pad=False) == []

    @given(st.text(min_size=1, max_size=30), st.integers(min_value=1, max_value=5))
    def test_every_unpadded_gram_has_length_n(self, text, n):
        grams = char_ngrams(text, n=n, pad=False)
        assert all(len(gram) == n for gram in grams)
        assert len(grams) == max(0, len(text) - n + 1)


class TestWordNgrams:
    def test_bigrams(self):
        assert word_ngrams(["new", "york", "city"], n=2) == ["new york", "york city"]

    def test_short_input_yields_nothing(self):
        # Regression: one token used to collapse into a fake unigram,
        # inconsistent with char_ngrams and inflating short-text overlap.
        assert word_ngrams(["only"], n=2) == []
        assert word_ngrams(["a", "b"], n=3) == []

    def test_exact_length_input(self):
        assert word_ngrams(["a", "b"], n=2) == ["a b"]

    def test_empty(self):
        assert word_ngrams([], n=2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            word_ngrams(["a"], n=0)

    @given(
        st.lists(st.sampled_from(["new", "york", "city", "the"]), max_size=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_gram_count_formula(self, tokens, n):
        grams = word_ngrams(tokens, n=n)
        assert len(grams) == max(0, len(tokens) - n + 1)
        assert all(len(gram.split(" ")) == n for gram in grams)


class TestSentenceSplit:
    def test_splits_on_terminal_punctuation(self):
        parts = sentence_split("One sentence. Another one! A third?")
        assert parts == ["One sentence.", "Another one!", "A third?"]

    def test_empty(self):
        assert sentence_split("") == []

    def test_single_sentence(self):
        assert sentence_split("Just one") == ["Just one"]
