"""Tests for repro.text.patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.text.patterns import (
    infer_semantic_type,
    is_date_like,
    is_identifier_token,
    is_null_token,
    is_numeric,
    is_phone_like,
    is_product_code,
    is_zip_like,
    value_pattern,
)


class TestNullToken:
    @pytest.mark.parametrize("value", [None, "", "NULL", "nan", " n/a ", "?"])
    def test_nulls(self, value):
        assert is_null_token(value)

    @pytest.mark.parametrize("value", ["0", "none at all", "x"])
    def test_non_nulls(self, value):
        assert not is_null_token(value)


class TestNumeric:
    @pytest.mark.parametrize("value", ["42", "-7", "3.14", " 10 "])
    def test_numeric(self, value):
        assert is_numeric(value)

    @pytest.mark.parametrize("value", ["4.2.1", "1e5", "abc", "$5", ""])
    def test_not_numeric(self, value):
        assert not is_numeric(value)


class TestShapes:
    def test_zip(self):
        assert is_zip_like("94110")
        assert is_zip_like("94110-1234")
        assert not is_zip_like("9411")
        assert not is_zip_like("94110x")

    @pytest.mark.parametrize("value", [
        "415-775-7036", "310/456-5733", "(415) 775-7036", "4157757036",
    ])
    def test_phone_shapes(self, value):
        assert is_phone_like(value)

    def test_not_phone(self):
        assert not is_phone_like("775-7036")

    @pytest.mark.parametrize("value", [
        "2011-03-14", "3/14/2011", "03-14-2011", "Mar 14, 2011",
        "14 March 2011",
    ])
    def test_dates(self, value):
        assert is_date_like(value)

    def test_not_date(self):
        assert not is_date_like("pi day")

    @pytest.mark.parametrize("value", ["DSC-W55", "mx4500", "11.0b", "w2k3"])
    def test_product_codes(self, value):
        assert is_product_code(value)

    @pytest.mark.parametrize("value", ["sony", "12345", "two words 3x"])
    def test_not_product_codes(self, value):
        assert not is_product_code(value)

    def test_identifier_includes_numbers_and_codes(self):
        assert is_identifier_token("42")
        assert is_identifier_token("dsc-w55")
        assert not is_identifier_token("camera")


class TestValuePattern:
    def test_phone_mask(self):
        assert value_pattern("415-775-7036") == "9-9-9"

    def test_mixed(self):
        assert value_pattern("Suite 4B") == "A 9A"

    def test_collapses_runs(self):
        assert value_pattern("aaaa1111") == "A9"

    def test_empty(self):
        assert value_pattern("") == ""

    @given(st.text(max_size=40))
    def test_mask_uses_only_symbols(self, value):
        mask = value_pattern(value)
        # Digits collapse to the literal '9', letters to 'A'.
        assert all(ch == "9" or not ch.isdigit() for ch in mask)
        assert all(ch == "A" or not ch.isalpha() for ch in mask if ch.isascii())


class TestSemanticType:
    @pytest.mark.parametrize("value,expected", [
        ("", "null"),
        ("94110", "zip"),
        ("415-775-7036", "phone"),
        ("2011-03-14", "date"),
        ("42.5", "number"),
        ("DSC-W55", "code"),
        ("san francisco", "text"),
    ])
    def test_types(self, value, expected):
        assert infer_semantic_type(value) == expected
