"""Tests for repro.text.tfidf."""

import pytest
from hypothesis import given, strategies as st

from repro.text.tfidf import TfidfVectorizer

corpus = [
    ["the", "quick", "fox"],
    ["the", "lazy", "dog"],
    ["the", "fox", "and", "the", "dog"],
]


@pytest.fixture()
def fitted():
    return TfidfVectorizer().fit(corpus)


class TestFit:
    def test_tracks_document_count(self, fitted):
        assert fitted.n_docs_ == 3
        assert fitted.is_fitted

    def test_common_token_has_lower_idf(self, fitted):
        assert fitted.idf_["the"] < fitted.idf_["quick"]

    def test_min_df_filters(self):
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        assert "quick" not in vectorizer.idf_
        assert "fox" in vectorizer.idf_

    def test_min_df_records_pruned_tokens(self):
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        assert vectorizer.pruned_ == {"quick", "lazy", "and"}

    def test_refit_clears_pruned(self):
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        vectorizer.fit([["a", "b"], ["a", "b"]])
        assert vectorizer.pruned_ == set()

    def test_invalid_min_df(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_df=0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform_one(["x"])


class TestTransform:
    def test_unit_norm(self, fitted):
        vector = fitted.transform_one(["quick", "fox", "fox"])
        norm = sum(value**2 for value in vector.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_unseen_token_still_weighted(self, fitted):
        vector = fitted.transform_one(["zebra"])
        assert vector["zebra"] == pytest.approx(1.0)  # alone → unit norm

    def test_batch_matches_single(self, fitted):
        batch = fitted.transform([["fox"], ["dog"]])
        assert batch[0] == fitted.transform_one(["fox"])

    def test_pruned_token_weighs_zero(self):
        # Regression for the min_df inversion: a token filtered as too
        # rare used to look *unseen* in transform_one and collect the
        # max-rarity IDF — pruning it raised its weight.
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        vector = vectorizer.transform_one(["quick", "fox"])
        assert "quick" not in vector
        assert vector["fox"] == pytest.approx(1.0)  # only survivor → unit norm

    def test_pruned_only_document_is_empty(self):
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        assert vectorizer.transform_one(["quick", "lazy"]) == {}

    def test_unseen_still_beats_pruned(self):
        # Truly out-of-corpus tokens keep the max-rarity IDF; only
        # deliberately filtered ones vanish.
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        vector = vectorizer.transform_one(["zebra", "quick"])
        assert vector == {"zebra": pytest.approx(1.0)}

    def test_pruned_tokens_do_not_inflate_similarity(self):
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        # Overlap only on the pruned token must not count as similarity.
        assert vectorizer.similarity(["quick", "fox"], ["quick", "dog"]) == 0.0


class TestSimilarity:
    def test_self_similarity_is_one(self, fitted):
        assert fitted.similarity(["quick", "fox"], ["quick", "fox"]) == pytest.approx(1.0)

    def test_disjoint_similarity_is_zero(self, fitted):
        assert fitted.similarity(["quick"], ["lazy"]) == 0.0

    def test_rare_overlap_beats_common_overlap(self, fitted):
        rare = fitted.similarity(["quick", "dog"], ["quick", "cat"])
        common = fitted.similarity(["the", "dog"], ["the", "cat"])
        assert rare > common

    @given(st.lists(st.sampled_from(["the", "fox", "dog", "quick"]),
                    min_size=1, max_size=6))
    def test_similarity_bounded(self, tokens):
        vectorizer = TfidfVectorizer().fit(corpus)
        score = vectorizer.similarity(tokens, ["the", "fox"])
        assert 0.0 <= score <= 1.0 + 1e-9

    def test_cosine_empty_vectors(self):
        assert TfidfVectorizer.cosine({}, {}) == 1.0
