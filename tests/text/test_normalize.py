"""Tests for repro.text.normalize."""

from hypothesis import given, strategies as st

from repro.text.normalize import (
    casefold,
    expand_abbreviations,
    normalize_value,
    normalize_whitespace,
    strip_punctuation,
)


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a   b\t c\n d") == "a b c d"

    def test_strips_ends(self):
        assert normalize_whitespace("  x  ") == "x"

    @given(st.text(max_size=60))
    def test_idempotent(self, text):
        once = normalize_whitespace(text)
        assert normalize_whitespace(once) == once


class TestExpandAbbreviations:
    def test_street(self):
        assert expand_abbreviations("123 main st") == "123 main street"

    def test_dotted_form(self):
        assert expand_abbreviations("oak ave.") == "oak avenue"

    def test_case_insensitive_lookup(self):
        assert expand_abbreviations("Main ST") == "Main street"

    def test_ampersand(self):
        assert expand_abbreviations("bar & grill") == "bar and grill"

    def test_custom_table(self):
        assert expand_abbreviations("a b", {"a": "alpha"}) == "alpha b"

    def test_no_partial_word_expansion(self):
        # "st" inside "best" must not expand.
        assert expand_abbreviations("best coast") == "best coast"


class TestNormalizeValue:
    def test_none_is_empty(self):
        assert normalize_value(None) == ""

    def test_null_tokens_are_empty(self):
        for token in ("null", "NULL", "None", "nan", "N/A", "-", "?"):
            assert normalize_value(token) == "", token

    def test_lowercase_and_punctuation(self):
        assert normalize_value("Sony DSC-W55!") == "sony dsc w55"

    def test_abbreviation_expansion(self):
        assert normalize_value("804 North Point St.") == "804 north point street"

    def test_non_string_coerced(self):
        assert normalize_value(42) == "42"

    @given(st.text(max_size=60))
    def test_idempotent(self, text):
        once = normalize_value(text)
        assert normalize_value(once) == once

    @given(st.text(max_size=60))
    def test_output_lowercase(self, text):
        assert normalize_value(text) == normalize_value(text).casefold()


def test_casefold_matches_str_casefold():
    assert casefold("ÅBC") == "åbc"


def test_strip_punctuation_keeps_words():
    assert strip_punctuation("a,b.c;d") == "a b c d"
