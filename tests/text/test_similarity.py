"""Tests for repro.text.similarity — including metric property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.text.similarity import (
    cosine_tokens,
    dice_coefficient,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    monge_elkan,
    overlap_coefficient,
    prefix_similarity,
)

short_text = st.text(alphabet="abcdef ", max_size=12)
token_lists = st.lists(st.text(alphabet="abc", min_size=1, max_size=4), max_size=6)


class TestLevenshtein:
    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identical(self):
        assert levenshtein("same", "same") == 0

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_single_substitution(self):
        assert levenshtein("boston", "bxston") == 1

    def test_max_distance_early_exit(self):
        assert levenshtein("completely", "different!", max_distance=2) == 3

    def test_max_distance_length_gap(self):
        assert levenshtein("ab", "abcdefgh", max_distance=2) == 3

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestLevenshteinRatio:
    def test_range(self):
        assert levenshtein_ratio("abc", "abd") == pytest.approx(2 / 3)

    def test_both_empty(self):
        assert levenshtein_ratio("", "") == 1.0

    @given(short_text, short_text)
    def test_unit_interval(self, a, b):
        assert 0.0 <= levenshtein_ratio(a, b) <= 1.0


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_identical(self):
        assert jaro_winkler("same", "same") == 1.0

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("", "") == 1.0

    @given(short_text, short_text)
    def test_symmetry_and_range(self, a, b):
        score = jaro_winkler(a, b)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(jaro_winkler(b, a))


SET_METRICS = (jaccard, overlap_coefficient, dice_coefficient, cosine_tokens)


class TestSetMetrics:
    @pytest.mark.parametrize("metric", SET_METRICS)
    def test_identical_sets(self, metric):
        assert metric(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    @pytest.mark.parametrize("metric", SET_METRICS)
    def test_disjoint_sets(self, metric):
        assert metric(["a"], ["b"]) == 0.0

    @pytest.mark.parametrize("metric", SET_METRICS)
    def test_both_empty(self, metric):
        assert metric([], []) == 1.0

    @pytest.mark.parametrize("metric", SET_METRICS)
    def test_one_empty(self, metric):
        assert metric(["a"], []) == 0.0

    @pytest.mark.parametrize("metric", SET_METRICS)
    @given(a=token_lists, b=token_lists)
    def test_symmetry_and_range(self, metric, a, b):
        score = metric(a, b)
        assert 0.0 <= score <= 1.0 + 1e-12
        assert score == pytest.approx(metric(b, a))

    def test_jaccard_half(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_overlap_subset_is_one(self):
        assert overlap_coefficient(["a"], ["a", "b", "c"]) == 1.0

    def test_cosine_counts_multiplicity(self):
        # Repetition matters for cosine but not for Jaccard.
        assert cosine_tokens(["a", "a", "b"], ["a", "b"]) != jaccard(
            ["a", "a", "b"], ["a", "b"]
        )


class TestMongeElkan:
    def test_token_reordering_tolerated(self):
        a = ["golden", "lotus", "cafe"]
        b = ["cafe", "golden", "lotus"]
        assert monge_elkan(a, b) == pytest.approx(1.0)

    def test_typo_tolerated(self):
        assert monge_elkan(["boston"], ["bostom"]) > 0.9

    def test_empty_sides(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0

    @given(a=token_lists, b=token_lists)
    def test_symmetrized_and_bounded(self, a, b):
        score = monge_elkan(a, b)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(monge_elkan(b, a))


class TestPrefixSimilarity:
    def test_full_prefix(self):
        assert prefix_similarity("abc", "abcdef") == 1.0

    def test_no_common_prefix(self):
        assert prefix_similarity("abc", "xbc") == 0.0

    def test_empty(self):
        assert prefix_similarity("", "") == 1.0
        assert prefix_similarity("", "a") == 0.0
