"""Run the doctests embedded in module documentation."""

import doctest

import pytest

import repro.core.serialization
import repro.text.normalize
import repro.text.tokenize

MODULES = (
    repro.text.tokenize,
    repro.text.normalize,
    repro.core.serialization,
)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
