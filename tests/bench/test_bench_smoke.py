"""Smoke tests for the experiment modules on reduced workloads."""

from repro.bench import table1, table6
from repro.bench.ablation_knowledge import AMNESIA_FLOOR, amnesiac_model


class TestTable1Reduced:
    def test_subset_run(self):
        result = table1.run(datasets=("fodors_zagats",), max_examples=40)
        assert len(result.rows) == 1
        row_f1 = result.cell("fodors_zagats", "fm_k10")
        assert 0.0 <= row_f1 <= 100.0

    def test_paper_columns_present(self):
        result = table1.run(datasets=("beer",), max_examples=30)
        assert result.headers.count("paper") == 4


class TestTable6:
    def test_three_probes_three_models(self):
        result = table6.run()
        assert len(result.rows) == 3
        assert len(result.rows[0]) == 2 + 3  # prompt, expected, 3 models


class TestAmnesiacModel:
    def test_profile_is_modified_copy(self):
        model = amnesiac_model()
        assert model.profile.knowledge_floor == AMNESIA_FLOOR
        assert model.profile.semantic_depth == 0.88  # everything else intact
        assert "no-knowledge" in model.name

    def test_amnesia_blocks_recall(self):
        model = amnesiac_model()
        answer = model.complete("name: x. phone: 415-775-7036. city?")
        assert "san francisco" not in answer.casefold()
