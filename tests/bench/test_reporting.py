"""Tests for the bench reporting helpers."""

import pytest

from repro.bench.reporting import ExperimentResult, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "f1"], [["beer", 94.37], ["x", 1.0]])
        lines = text.split("\n")
        assert lines[0].startswith("name")
        assert "94.4" in lines[2]  # floats rounded to one decimal

    def test_none_renders_dash(self):
        text = render_table(["a"], [[None]])
        assert "-" in text.split("\n")[2]

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestExperimentResult:
    @pytest.fixture()
    def result(self):
        result = ExperimentResult(
            experiment="tX", title="demo", headers=["dataset", "f1", "paper"]
        )
        result.add_row("beer", 90.9, 100.0)
        result.add_row("itunes", 93.3, 98.2)
        return result

    def test_cell_lookup(self, result):
        assert result.cell("beer", "f1") == 90.9
        assert result.cell("itunes", "paper") == 98.2

    def test_cell_unknown_row(self, result):
        with pytest.raises(KeyError):
            result.cell("nope", "f1")

    def test_cell_unknown_column(self, result):
        with pytest.raises(ValueError):
            result.cell("beer", "nope")

    def test_render_contains_title_and_rows(self, result):
        rendered = result.render()
        assert "== tX: demo ==" in rendered
        assert "beer" in rendered

    def test_notes_appended(self):
        result = ExperimentResult(
            experiment="t", title="t", headers=["a"], notes="a note"
        )
        assert result.render().endswith("a note")


class TestPaperNumbers:
    def test_every_em_dataset_covered(self):
        from repro.bench.paper_numbers import TABLE1
        from repro.bench.table1 import DATASETS

        assert set(TABLE1) == set(DATASETS)

    def test_table5_rows_have_three_slices(self):
        from repro.bench.paper_numbers import TABLE5

        assert all(len(values) == 3 for values in TABLE5.values())
