"""Tests for the Magellan and Ditto EM baselines."""

import pytest

from repro.baselines import DittoMatcher, MagellanMatcher
from repro.core.metrics import binary_metrics
from repro.datasets import load_dataset
from repro.datasets.base import MatchingPair


@pytest.fixture(scope="module")
def fodors():
    return load_dataset("fodors_zagats")


@pytest.mark.parametrize("cls", [MagellanMatcher, DittoMatcher])
class TestMatcherContract:
    def test_fit_predict(self, cls, fodors):
        matcher = cls.for_dataset(fodors).fit(fodors.train)
        predictions = matcher.predict_many(fodors.test[:60])
        f1 = binary_metrics(predictions, [p.label for p in fodors.test[:60]]).f1
        assert f1 > 0.9  # fodors is the easy benchmark

    def test_predict_before_fit(self, cls, fodors):
        with pytest.raises(RuntimeError):
            cls.for_dataset(fodors).predict(fodors.test[0])

    def test_empty_training_rejected(self, cls, fodors):
        with pytest.raises(ValueError):
            cls.for_dataset(fodors).fit([])

    def test_empty_attributes_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(attributes=[])

    def test_single_prediction_matches_batch(self, cls, fodors):
        matcher = cls.for_dataset(fodors).fit(fodors.train)
        pair = fodors.test[0]
        assert matcher.predict(pair) == matcher.predict_many([pair])[0]

    def test_handles_null_values(self, cls, fodors):
        matcher = cls.for_dataset(fodors).fit(fodors.train)
        pair = MatchingPair(
            left={attr: None for attr in fodors.attributes},
            right={attr: None for attr in fodors.attributes},
            label=False,
        )
        assert isinstance(matcher.predict(pair), bool)


class TestDittoSpecifics:
    def test_identifier_block_detects_conflict(self):
        shared = DittoMatcher._identifier_block("camera dsc-w55", "dsc-w55 black")
        conflict = DittoMatcher._identifier_block("suite 11.0", "suite 12.0")
        missing = DittoMatcher._identifier_block("no codes here", "none either")
        assert shared[0] > 0 and shared[1] == 0
        assert conflict[1] > 0
        assert missing == [0.0, 0.0, 0.0]

    def test_augmentation_doubles_training(self, fodors):
        matcher = DittoMatcher.for_dataset(fodors)
        augmented = matcher._augmented(fodors.train[:10])
        assert len(augmented) == 20
        assert augmented[10].left == fodors.train[0].right

    def test_ditto_beats_magellan_on_jargon(self):
        dataset = load_dataset("amazon_google")
        magellan = MagellanMatcher.for_dataset(dataset).fit(dataset.train)
        ditto = DittoMatcher.for_dataset(dataset).fit(dataset.train)
        labels = [p.label for p in dataset.test]
        f1_magellan = binary_metrics(magellan.predict_many(dataset.test), labels).f1
        f1_ditto = binary_metrics(ditto.predict_many(dataset.test), labels).f1
        assert f1_ditto >= f1_magellan - 0.02
