"""Tests for the TDE transform-by-example synthesizer."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines import TdeSynthesizer
from repro.baselines.tde import synthesize
from repro.datasets import load_dataset


class TestSynthesis:
    @pytest.mark.parametrize("examples,probe,expected", [
        ([("Doe, John", "John Doe"), ("Chen, Ada", "Ada Chen")],
         "Park, Rosa", "Rosa Park"),
        ([("report.pdf", "pdf"), ("notes.txt", "txt")],
         "photo.png", "png"),
        ([("$1,299.99", "1299.99"), ("$88,100.10", "88100.10")],
         "$7,000.00", "7000.00"),
        ([("7", "00007"), ("123", "00123")], "99", "00099"),
        ([("a-b-c", "b"), ("x-y-z", "y")], "p-q-r", "q"),
        ([("(415) 775-7036", "415-775-7036"), ("(617) 100-2000", "617-100-2000")],
         "(212) 555-0000", "212-555-0000"),
    ])
    def test_solves_syntactic_cases(self, examples, probe, expected):
        program = synthesize(examples)
        assert program is not None, examples
        assert program(probe) == expected

    def test_cannot_solve_semantic_cases(self):
        examples = [("Seattle", "WA"), ("Boston", "MA"), ("Chicago", "IL")]
        program = synthesize(examples)
        if program is not None:  # any accidental program must not generalize
            assert program("Denver") != "CO"

    def test_program_consistent_on_examples(self):
        examples = [("net_total", "Net Total"), ("tax_rate", "Tax Rate")]
        program = synthesize(examples)
        assert program is not None
        for source, target in examples:
            assert program(source) == target

    def test_smallest_program_preferred(self):
        program = synthesize([("abc", "abc"), ("xyz", "xyz")])
        assert program is not None
        assert program.size <= 1

    def test_empty_examples(self):
        assert synthesize([]) is None

    def test_description_readable(self):
        program = synthesize([("a-b", "a"), ("c-d", "c")])
        assert any(op in program.description for op in ("take", "extract_alpha"))

    @given(st.lists(
        st.tuples(st.text(alphabet="ab-", min_size=1, max_size=8),
                  st.text(alphabet="ab", min_size=1, max_size=8)),
        min_size=1, max_size=4,
    ))
    def test_synthesized_programs_always_consistent(self, examples):
        """Whatever search returns must satisfy every example — the core
        soundness property of program synthesis."""
        program = synthesize(examples, max_depth=2, beam_width=200)
        if program is not None:
            for source, target in examples:
                assert program(source) == target


class TestEvaluate:
    def test_stackoverflow_beats_bing(self):
        tde = TdeSynthesizer()
        syntactic = tde.evaluate(load_dataset("stackoverflow"))
        semantic = tde.evaluate(load_dataset("bing_querylogs"))
        assert syntactic > semantic + 0.2

    def test_run_case_counts(self):
        dataset = load_dataset("stackoverflow")
        hits, total = TdeSynthesizer().run_case(dataset.cases[0])
        assert 0 <= hits <= total == len(dataset.cases[0].tests)
