"""Tests for HoloClean, HoloDetect and IMP."""

import pytest

from repro.baselines import HoloClean, HoloDetect, ImpImputer
from repro.core.metrics import accuracy, binary_metrics
from repro.datasets import load_dataset
from repro.datasets.base import ErrorExample, ImputationExample


class TestHoloCleanStatistics:
    ROWS = [
        {"id": str(i), "city": city, "state": state}
        for i, (city, state) in enumerate(
            [("boston", "ma")] * 4 + [("denver", "co")] * 4
        )
    ]

    def test_discovers_functional_dependency(self):
        engine = HoloClean().fit(self.ROWS)
        assert ("city", "state") in engine.fds

    def test_detects_fd_violation(self):
        engine = HoloClean().fit(self.ROWS)
        example = ErrorExample(
            row={"city": "boston", "state": "co"}, attribute="state", label=True
        )
        assert engine.detect(example)

    def test_consistent_cell_passes(self):
        engine = HoloClean().fit(self.ROWS)
        example = ErrorExample(
            row={"city": "boston", "state": "ma"}, attribute="state", label=False
        )
        assert not engine.detect(example)

    def test_imputes_from_cooccurrence(self):
        engine = HoloClean().fit(self.ROWS)
        example = ImputationExample(
            row={"city": "denver", "state": None}, attribute="state", answer="co"
        )
        assert engine.impute(example) == "co"

    def test_cannot_invent_unseen_values(self):
        engine = HoloClean().fit(self.ROWS)
        example = ImputationExample(
            row={"city": "miami", "state": None}, attribute="state", answer="fl"
        )
        assert engine.impute(example) in {"ma", "co"}  # the core limitation

    def test_deduplicates_fitted_rows(self):
        engine = HoloClean().fit(self.ROWS * 10)
        assert engine.n_rows == len(self.ROWS)

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            HoloClean().fit([])

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            HoloClean().detect(ErrorExample(row={"a": "x"}, attribute="a", label=False))


class TestHoloDetect:
    @pytest.fixture(scope="class")
    def hospital(self):
        return load_dataset("hospital")

    def test_few_shot_detection(self, hospital):
        detector = HoloDetect().fit(hospital)
        predictions = detector.predict_many(hospital.test[:400])
        f1 = binary_metrics(predictions, [e.label for e in hospital.test[:400]]).f1
        assert f1 > 0.85

    def test_channel_learned_from_labels(self, hospital):
        detector = HoloDetect().fit(hospital)
        assert sum(detector.channel_types.values()) > 0
        assert "x" in detector.channel_chars

    def test_adult_swap_channel(self):
        adult = load_dataset("adult")
        detector = HoloDetect().fit(adult)
        assert detector.channel_types["swap"] + detector.channel_types["numeric"] > 0

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            HoloDetect().predict(
                ErrorExample(row={"a": "x"}, attribute="a", label=False)
            )


class TestImp:
    @pytest.fixture(scope="class")
    def buy(self):
        return load_dataset("buy")

    def test_copy_mechanism_fires_on_buy(self, buy):
        imputer = ImpImputer.for_dataset(buy).fit(buy.train)
        assert imputer.copy_reliability_ > 0.5

    def test_accuracy_on_buy(self, buy):
        imputer = ImpImputer.for_dataset(buy).fit(buy.train)
        predictions = imputer.predict_many(buy.test)
        assert accuracy(predictions, [e.answer for e in buy.test]) > 0.7

    def test_restaurant_uses_association_not_copy(self):
        restaurant = load_dataset("restaurant")
        imputer = ImpImputer.for_dataset(restaurant).fit(restaurant.train)
        assert imputer.copy_reliability_ < 0.1

    def test_closed_label_space(self, buy):
        imputer = ImpImputer.for_dataset(buy).fit(buy.train[:50])
        seen = {e.answer.casefold() for e in buy.train[:50]}
        seen |= {a for a in imputer.answer_vocabulary_}
        for example in buy.test[:30]:
            assert imputer.predict(example).casefold() in seen

    def test_fit_empty_rejected(self, buy):
        with pytest.raises(ValueError):
            ImpImputer.for_dataset(buy).fit([])
