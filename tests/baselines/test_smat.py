"""Tests for the SMAT schema-matching baseline."""

import pytest

from repro.baselines import SmatMatcher
from repro.baselines.smat import pair_features
from repro.core.metrics import binary_metrics
from repro.datasets import load_dataset
from repro.datasets.base import SchemaPair
from repro.knowledge.medical import SchemaAttribute


@pytest.fixture(scope="module")
def synthea():
    return load_dataset("synthea")


class TestFeatures:
    def test_identical_names_score_high(self):
        a = SchemaAttribute("t1", "city", "the city", ("Boston",))
        b = SchemaAttribute("t2", "city", "a city name", ("Denver",))
        features = pair_features(SchemaPair(a, b, True))
        assert features[0] == 1.0  # name jaccard

    def test_sample_type_feature(self):
        a = SchemaAttribute("t1", "zip", "zip", ("02101",))
        b = SchemaAttribute("t2", "postal", "postal", ("80201",))
        features = pair_features(SchemaPair(a, b, True))
        assert features[-3] == 1.0  # same semantic type (zip)

    def test_fixed_width(self):
        a = SchemaAttribute("t", "x", "d", ())
        features = pair_features(SchemaPair(a, a, True))
        assert len(features) == 10


class TestSmat:
    def test_trains_and_predicts(self, synthea):
        matcher = SmatMatcher.for_dataset(synthea)
        predictions = matcher.predict_many(synthea.test)
        f1 = binary_metrics(predictions, [p.label for p in synthea.test]).f1
        assert 0.2 < f1 < 0.9  # modest on the jargon-heavy test tables

    def test_strong_on_lexical_train_tables(self, synthea):
        matcher = SmatMatcher.for_dataset(synthea)
        predictions = matcher.predict_many(synthea.train)
        f1 = binary_metrics(predictions, [p.label for p in synthea.train]).f1
        assert f1 > 0.75

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            SmatMatcher().fit([])

    def test_predict_before_fit(self, synthea):
        with pytest.raises(RuntimeError):
            SmatMatcher().predict(synthea.test[0])
