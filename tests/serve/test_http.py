"""HTTP front-end round trips (stdlib client against a live server)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    Gateway,
    GatewayConfig,
    GatewayHTTPServer,
    TenantPolicy,
)

pytestmark = pytest.mark.smoke


@pytest.fixture()
def server():
    gateway = Gateway(GatewayConfig(
        workers=2,
        tenants={"capped": TenantPolicy(max_requests=0)},
    ))
    http_server = GatewayHTTPServer(gateway, port=0)
    http_server.start()
    yield http_server
    http_server.stop()


def post(url, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + "/v1/wrangle", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def get(url, path):
    with urllib.request.urlopen(url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestWrangleEndpoint:
    def test_indices_round_trip(self, server):
        status, payload = post(server.url, {
            "tenant": "alice", "task": "entity_matching",
            "dataset": "fodors_zagats", "indices": [0, 1, 2],
        })
        assert status == 200
        assert payload["ok"] is True
        assert payload["n_examples"] == 3
        assert all("prediction" in r for r in payload["results"])

    def test_rows_round_trip(self, server):
        status, payload = post(server.url, {
            "tenant": "alice", "task": "imputation", "dataset": "restaurant",
            "rows": [{
                "row": {"name": "oceana", "address": "55 e. 54th st."},
                "attribute": "city",
            }],
        })
        assert status == 200
        assert payload["results"][0]["ok"] is True
        assert isinstance(payload["results"][0]["prediction"], str)

    def test_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/wrangle", data=b"not json",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_field_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/wrangle",
            data=json.dumps({"tenant": "a", "task": "entity_matching",
                             "dataset": "fodors_zagats", "indices": [0],
                             "bogus": 1}).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_shed_is_429_with_typed_body(self, server):
        request = urllib.request.Request(
            server.url + "/v1/wrangle",
            data=json.dumps({"tenant": "capped", "task": "entity_matching",
                             "dataset": "fodors_zagats",
                             "indices": [0]}).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        payload = json.loads(excinfo.value.read())
        assert payload["shed"] is True
        assert payload["reason"] == "tenant_budget"

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert excinfo.value.code == 404


class TestObservabilityEndpoints:
    def test_healthz(self, server):
        status, payload = get(server.url, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["queue_depth"] == 0

    def test_stats_reflects_traffic(self, server):
        post(server.url, {
            "tenant": "alice", "task": "entity_matching",
            "dataset": "fodors_zagats", "indices": [0],
        })
        status, payload = get(server.url, "/stats")
        assert status == 200
        assert payload["schema_version"] == 1
        assert payload["completed"] >= 1
        assert payload["tenants"]["alice"]["n_completed"] >= 1


class TestMalformedRows:
    def test_malformed_inline_row_is_400(self, server):
        # Eager codec validation: a bad row costs a 400, not a queue
        # slot or a backend call.
        request = urllib.request.Request(
            server.url + "/v1/wrangle",
            data=json.dumps({
                "tenant": "alice", "task": "entity_matching",
                "dataset": "fodors_zagats",
                "rows": [{"left": {"name": "a"}}],  # missing "right"
            }).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert "right" in payload["error"]

    def test_oversized_cell_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/wrangle",
            data=json.dumps({
                "tenant": "alice", "task": "imputation",
                "dataset": "restaurant",
                "rows": [{"row": {"bio": "x" * 10_000},
                          "attribute": "city"}],
            }).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "limit" in json.loads(excinfo.value.read())["error"]


class TestClientTimeout:
    def test_handler_timeout_sheds_with_504(self):
        # A paused gateway never serves; the handler must give up at
        # its timeout, cancel the queued request (so the slot frees and
        # the shed is typed + counted), and answer 504 — not leak the
        # thread waiting forever.
        gateway = Gateway(GatewayConfig(workers=2))
        http_server = GatewayHTTPServer(gateway, port=0, timeout_s=0.3)
        http_server.start()
        try:
            gateway.pause()
            request = urllib.request.Request(
                http_server.url + "/v1/wrangle",
                data=json.dumps({
                    "tenant": "alice", "task": "entity_matching",
                    "dataset": "fodors_zagats", "indices": [0],
                }).encode(),
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 504
            payload = json.loads(excinfo.value.read())
            assert payload["shed"] is True
            assert payload["reason"] == "client_timeout"
            stats = gateway.stats()
            assert stats["shed"]["by_reason"]["client_timeout"] == 1
            assert stats["queue"]["depth"] == 0  # slot actually freed
        finally:
            gateway.resume()
            http_server.stop()
