"""Durable intake journal: crash-safe acceptance, exactly-once replay.

DESIGN §4f's third layer.  The file-format guarantees (CRC per line,
fsync per append, torn-tail tolerance, out-of-order records) are tested
directly on :class:`~repro.serve.journal.IntakeJournal`; the
gateway-level guarantees (acceptance journaled before the dispatcher
can serve, terminals written before futures resolve, ``--resume``
replays exactly the orphaned work under original ids) are tested
through :class:`~repro.serve.gateway.Gateway` itself, including the
client-timeout cancel path.
"""

from __future__ import annotations

import json
import time
import zlib

import pytest

from repro.core.checkpoint import CheckpointCorruptionWarning
from repro.serve import Gateway, GatewayConfig, IntakeJournal, WrangleRequest
from repro.serve.journal import TERMINAL_OUTCOMES

pytestmark = [pytest.mark.smoke, pytest.mark.chaos]


def request_payload(i: int = 0) -> dict:
    return dict(
        tenant="t", task="entity_matching", dataset="beer",
        indices=[i], rows=None, split="test", priority="interactive",
        deadline_s=None, model="gpt3-175b", k=2, selection="random",
        seed=0,
    )


def read_records(path) -> list[dict]:
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestJournalFile:
    def test_records_carry_valid_crc(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            journal.record_accepted(1, request_payload())
            journal.record_terminal(1, "served")
        for record in read_records(path):
            crc = record.pop("crc")
            canonical = json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )
            assert crc == zlib.crc32(canonical.encode("utf-8"))

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        IntakeJournal(path, meta={"who": "test"}).close()
        IntakeJournal(path).close()
        records = read_records(path)
        assert [r["type"] for r in records] == ["header"]
        assert records[0]["meta"] == {"who": "test"}

    def test_pending_is_accepted_minus_terminal(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            for i in (1, 2, 3):
                journal.record_accepted(i, request_payload(i))
            journal.record_terminal(2, "served")
        reopened = IntakeJournal(path)
        pending = reopened.pending_requests()
        reopened.close()
        assert [rid for rid, _payload in pending] == [1, 3]
        assert pending[0][1]["indices"] == [1]

    def test_max_request_id_spans_all_records(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            journal.record_accepted(7, request_payload())
            journal.record_terminal(12, "shed", reason="queue_full")
        reopened = IntakeJournal(path)
        assert reopened.max_request_id == 12
        reopened.close()

    def test_out_of_order_terminal_tolerated(self, tmp_path):
        # Under concurrent appends a terminal may land before its
        # accepted line; replay set-subtracts, so order cannot
        # double-serve.
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            journal.record_terminal(5, "served")
            journal.record_accepted(5, request_payload())
        reopened = IntakeJournal(path)
        assert reopened.pending_requests() == []
        reopened.close()

    def test_torn_tail_dropped_silently(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            journal.record_accepted(1, request_payload())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "terminal", "request_id": 1, "outc')
        reopened = IntakeJournal(path)
        assert [rid for rid, _p in reopened.pending_requests()] == [1]
        reopened.close()

    def test_corrupt_mid_file_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            journal.record_accepted(1, request_payload())
        raw = path.read_text(encoding="utf-8").splitlines()
        raw.insert(1, "garbage that is not json")
        path.write_text("\n".join(raw) + "\n", encoding="utf-8")
        with pytest.warns(CheckpointCorruptionWarning):
            reopened = IntakeJournal(path)
        assert [rid for rid, _p in reopened.pending_requests()] == [1]
        reopened.close()

    def test_bad_crc_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            journal.record_accepted(1, request_payload())
            journal.record_accepted(2, request_payload())
        raw = path.read_text(encoding="utf-8").splitlines()
        tampered = json.loads(raw[1])
        tampered["request"]["indices"] = [999]  # flip bytes, keep old crc
        raw[1] = json.dumps(tampered, sort_keys=True)
        path.write_text("\n".join(raw) + "\n", encoding="utf-8")
        with pytest.warns(CheckpointCorruptionWarning):
            reopened = IntakeJournal(path)
        assert [rid for rid, _p in reopened.pending_requests()] == [2]
        reopened.close()

    def test_unknown_outcome_rejected(self, tmp_path):
        with IntakeJournal(tmp_path / "intake.jsonl") as journal:
            with pytest.raises(ValueError):
                journal.record_terminal(1, "vanished")
        assert set(TERMINAL_OUTCOMES) == {"served", "failed", "shed"}


def wait_for(predicate, timeout_s: float = 30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached in time")


class TestGatewayJournal:
    def test_lifecycle_is_journaled(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        journal = IntakeJournal(path)
        with Gateway(GatewayConfig(workers=2), journal=journal) as gateway:
            future = gateway.submit(WrangleRequest(
                tenant="t", task="entity_matching", dataset="beer",
                indices=[0], model="gpt3-175b", k=2, selection="random",
            ))
            response = future.result(timeout=60)
        journal.close()
        assert response.results
        records = read_records(path)
        kinds = [(r["type"], r.get("outcome")) for r in records[1:]]
        assert kinds == [("accepted", None), ("terminal", "served")]
        assert records[1]["request_id"] == records[2]["request_id"]

    def test_shed_is_a_terminal_record(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        journal = IntakeJournal(path)
        gateway = Gateway(GatewayConfig(workers=2), journal=journal)
        gateway.start()
        gateway.pause()
        gateway.submit(WrangleRequest(
            tenant="t", task="entity_matching", dataset="beer",
            indices=[0], model="gpt3-175b",
        ))
        gateway.stop()  # drain-stop sheds the queue as "shutdown"
        journal.close()
        terminals = [
            r for r in read_records(path) if r["type"] == "terminal"
        ]
        assert len(terminals) == 1
        assert terminals[0]["outcome"] == "shed"
        assert terminals[0]["reason"] == "shutdown"
        # Nothing pending: a --resume start replays no shed work.
        reopened = IntakeJournal(path)
        assert reopened.pending_requests() == []
        reopened.close()

    def test_crash_then_resume_serves_exactly_once(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        config = GatewayConfig(workers=2)
        journal = IntakeJournal(path)
        crashed = Gateway(config, journal=journal)
        crashed.start()
        crashed.pause()  # accepted + journaled, never dispatched
        n = 4
        for i in range(n):
            crashed.submit(WrangleRequest(
                tenant="t", task="entity_matching", dataset="beer",
                indices=[i], model="gpt3-175b", k=2, selection="random",
            ))
        # Simulated SIGKILL: no stop(), only the journal survives.
        journal.close()

        resumed_journal = IntakeJournal(path)
        resumed = Gateway(config, journal=resumed_journal, resume=True)
        resumed.start()
        wait_for(lambda: resumed.stats()["journal"]["pending"] == 0)
        stats = resumed.stats()
        resumed.stop()
        resumed_journal.close()

        assert stats["journal"]["replayed"] == n
        accepted: dict[int, int] = {}
        outcomes: dict[int, list[str]] = {}
        for record in read_records(path):
            if record["type"] == "accepted":
                rid = record["request_id"]
                accepted[rid] = accepted.get(rid, 0) + 1
            elif record["type"] == "terminal":
                outcomes.setdefault(record["request_id"], []).append(
                    record["outcome"]
                )
        assert len(accepted) == n
        assert all(count == 1 for count in accepted.values())
        assert sorted(outcomes) == sorted(accepted)
        assert all(v == ["served"] for v in outcomes.values())

    def test_resume_false_leaves_pending_untouched(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        journal = IntakeJournal(path)
        crashed = Gateway(GatewayConfig(), journal=journal)
        crashed.start()
        crashed.pause()
        crashed.submit(WrangleRequest(
            tenant="t", task="entity_matching", dataset="beer",
            indices=[0], model="gpt3-175b",
        ))
        journal.close()

        journal2 = IntakeJournal(path)
        fresh = Gateway(GatewayConfig(), journal=journal2, resume=False)
        fresh.start()
        time.sleep(0.2)
        stats = fresh.stats()
        fresh.stop()
        journal2.close()
        assert stats["journal"]["replayed"] == 0
        assert stats["journal"]["pending"] == 1  # still there for --resume

    def test_fresh_ids_allocated_above_journaled_ones(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        journal = IntakeJournal(path)
        crashed = Gateway(GatewayConfig(), journal=journal)
        crashed.start()
        crashed.pause()
        for i in range(3):
            crashed.submit(WrangleRequest(
                tenant="t", task="entity_matching", dataset="beer",
                indices=[i], model="gpt3-175b", k=2, selection="random",
            ))
        journal.close()

        journal2 = IntakeJournal(path)
        resumed = Gateway(GatewayConfig(workers=2), journal=journal2,
                          resume=True)
        resumed.start()
        future = resumed.submit(WrangleRequest(
            tenant="t", task="entity_matching", dataset="beer",
            indices=[0], model="gpt3-175b", k=2, selection="random",
        ))
        assert future.request_id > 3  # never collides with replayed ids
        wait_for(lambda: resumed.stats()["journal"]["pending"] == 0)
        resumed.stop()
        journal2.close()

    def test_unreplayable_payload_marked_failed(self, tmp_path):
        path = tmp_path / "intake.jsonl"
        with IntakeJournal(path) as journal:
            journal.record_accepted(1, {"bogus_field": 1})
        journal2 = IntakeJournal(path)
        gateway = Gateway(GatewayConfig(), journal=journal2, resume=True)
        gateway.start()
        wait_for(lambda: gateway.stats()["journal"]["pending"] == 0)
        gateway.stop()
        journal2.close()
        terminals = [
            r for r in read_records(path) if r["type"] == "terminal"
        ]
        assert len(terminals) == 1
        assert terminals[0]["outcome"] == "failed"
        assert "unreplayable" in terminals[0]["detail"]

    def test_stats_journal_block(self, tmp_path):
        journal = IntakeJournal(tmp_path / "intake.jsonl")
        with Gateway(GatewayConfig(), journal=journal) as gateway:
            block = gateway.stats()["journal"]
            assert block == {
                "path": journal.path, "replayed": 0, "pending": 0,
            }
        journal.close()

    def test_no_journal_stats_block_is_none(self):
        with Gateway(GatewayConfig()) as gateway:
            assert gateway.stats()["journal"] is None


class TestCancel:
    def test_cancel_queued_request_sheds_client_timeout(self, tmp_path):
        journal = IntakeJournal(tmp_path / "intake.jsonl")
        gateway = Gateway(GatewayConfig(), journal=journal)
        gateway.start()
        gateway.pause()
        future = gateway.submit(WrangleRequest(
            tenant="t", task="entity_matching", dataset="beer",
            indices=[0], model="gpt3-175b",
        ))
        assert gateway.cancel(future.request_id) is True
        response = future.result(timeout=5)
        assert response.reason == "client_timeout"
        stats = gateway.stats()
        assert stats["shed"]["by_reason"]["client_timeout"] == 1
        gateway.stop()
        journal.close()
        terminals = [
            r for r in read_records(journal.path)
            if r["type"] == "terminal"
        ]
        assert terminals[0]["outcome"] == "shed"
        assert terminals[0]["reason"] == "client_timeout"

    def test_cancel_unknown_or_completed_is_false(self):
        with Gateway(GatewayConfig(workers=2)) as gateway:
            assert gateway.cancel(999) is False
            future = gateway.submit(WrangleRequest(
                tenant="t", task="entity_matching", dataset="beer",
                indices=[0], model="gpt3-175b", k=2, selection="random",
            ))
            future.result(timeout=60)
            # Already served: cancel must not double-count or re-shed.
            assert gateway.cancel(future.request_id) is False
            assert gateway.stats()["shed"]["by_reason"]["client_timeout"] == 0
