"""Gateway behavior: multi-tenant determinism, fairness, stats, lifecycle.

The two load-bearing guarantees from DESIGN §4d are pinned here:

* **Determinism** — two tenants submitting interleaved compatible
  requests get predictions byte-identical to a solo offline
  ``run_task`` over the same examples, at any worker count.
* **Fairness** — a backfill flood cannot starve interactive requests:
  the shed set (which backfill waiters are evicted, with typed
  responses) is identical at 1 worker and 8.
"""

import json
import pathlib

import pytest

from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task
from repro.datasets import load_dataset
from repro.serve import (
    Gateway,
    GatewayClient,
    GatewayConfig,
    ShedResponse,
    TenantPolicy,
    WrangleRequest,
    WrangleResponse,
)

pytestmark = pytest.mark.smoke

TASK, DATASET, K, SEED = "entity_matching", "fodors_zagats", 3, 7


def em_request(tenant, indices, priority="interactive", **kwargs):
    kwargs.setdefault("seed", SEED)
    return WrangleRequest(
        tenant=tenant, task=TASK, dataset=DATASET, indices=list(indices),
        priority=priority, k=K, selection="random", **kwargs
    )


@pytest.fixture(scope="module")
def offline_predictions():
    """The solo offline baseline: run_task over the first 12 examples."""
    run = run_task(TASK, "gpt3-175b", load_dataset(DATASET), k=K,
                   selection="random", seed=SEED, max_examples=12)
    return run.predictions


class TestMultiTenantDeterminism:
    @pytest.mark.parametrize("workers", [1, 8])
    def test_interleaved_tenants_match_solo_run(
        self, workers, offline_predictions
    ):
        gateway = Gateway(GatewayConfig(workers=workers))
        with gateway:
            client = GatewayClient(gateway)
            # Tenants alternate, slicing the same 12 examples the solo
            # run evaluated; compatible requests may coalesce.
            futures = []
            for start in range(0, 12, 2):
                tenant = "alice" if (start // 2) % 2 == 0 else "bob"
                futures.append(gateway.submit(
                    em_request(tenant, [start, start + 1])
                ))
            responses = [future.result(timeout=60) for future in futures]
        got = {}
        for start, response in zip(range(0, 12, 2), responses):
            assert isinstance(response, WrangleResponse)
            assert response.ok
            for offset, result in enumerate(response.results):
                got[start + offset] = result["prediction"]
        assert [got[i] for i in range(12)] == offline_predictions

    def test_rows_mode_matches_dataset_examples(self, offline_predictions):
        dataset = load_dataset(DATASET)
        pairs = dataset.split("test")[:4]
        rows = [
            {"left": pair.left, "right": pair.right} for pair in pairs
        ]
        gateway = Gateway(GatewayConfig(workers=2))
        with gateway:
            client = GatewayClient(gateway)
            response = client.wrangle(
                tenant="carol", task=TASK, dataset=DATASET, rows=rows,
                k=K, selection="random", seed=SEED,
            )
        assert response.ok
        assert [r["prediction"] for r in response.results] == (
            offline_predictions[:4]
        )


class TestFairness:
    def _flood(self, workers):
        """Backfill flood then interactive arrivals on a tiny queue."""
        config = GatewayConfig(queue_capacity=6, workers=workers)
        gateway = Gateway(config)
        outcomes = {}
        with gateway:
            gateway.pause()
            backfill = [
                gateway.submit(em_request(
                    "bulk", [i], priority="backfill", seed=SEED + 1 + i
                ))
                for i in range(6)
            ]
            interactive = [
                gateway.submit(em_request("live", [i]))
                for i in range(4)
            ]
            gateway.resume()
            outcomes["backfill"] = [
                future.result(timeout=60) for future in backfill
            ]
            outcomes["interactive"] = [
                future.result(timeout=60) for future in interactive
            ]
        return outcomes

    @pytest.mark.parametrize("workers", [1, 8])
    def test_backfill_flood_cannot_starve_interactive(self, workers):
        outcomes = self._flood(workers)
        assert all(
            isinstance(response, WrangleResponse) and response.ok
            for response in outcomes["interactive"]
        ), "an interactive request was shed or failed under backfill flood"

    def test_shed_set_pinned_across_worker_counts(self):
        shapes = []
        for workers in (1, 8):
            outcomes = self._flood(workers)
            shapes.append([
                (type(response).__name__, getattr(response, "reason", None))
                for response in outcomes["backfill"]
            ])
        assert shapes[0] == shapes[1]
        # The four newest backfill waiters were evicted (typed, never
        # silent) to admit the four interactive arrivals.
        reasons = [reason for _, reason in shapes[0]]
        assert reasons == [
            None, None, "queue_evicted", "queue_evicted",
            "queue_evicted", "queue_evicted",
        ]


class TestTenantGates:
    def test_budget_shed_is_typed(self):
        config = GatewayConfig(
            tenants={"capped": TenantPolicy(max_requests=1)}
        )
        gateway = Gateway(config)
        with gateway:
            first = gateway.submit(em_request("capped", [0]))
            second = gateway.submit(em_request("capped", [1]))
            ok = first.result(timeout=60)
            refused = second.result(timeout=10)
        assert isinstance(ok, WrangleResponse)
        assert isinstance(refused, ShedResponse)
        assert refused.reason == "tenant_budget"

    def test_rate_shed_is_typed(self):
        config = GatewayConfig(
            tenants={"chatty": TenantPolicy(rate=0.001, burst=2.0)}
        )
        gateway = Gateway(config)
        with gateway:
            first = gateway.submit(em_request("chatty", [0, 1]))
            second = gateway.submit(em_request("chatty", [2]))
            ok = first.result(timeout=60)
            refused = second.result(timeout=10)
        assert isinstance(ok, WrangleResponse)
        assert isinstance(refused, ShedResponse)
        assert refused.reason == "tenant_rate"

    def test_deadline_expiry_sheds_while_queued(self):
        gateway = Gateway(GatewayConfig(workers=1))
        with gateway:
            gateway.pause()
            future = gateway.submit(
                em_request("impatient", [0], deadline_s=0.01)
            )
            import time as _time

            _time.sleep(0.05)
            gateway.resume()
            response = future.result(timeout=10)
        assert isinstance(response, ShedResponse)
        assert response.reason == "deadline"


class TestLifecycleAndStats:
    def test_submit_before_start_sheds(self):
        gateway = Gateway(GatewayConfig())
        response = gateway.submit(em_request("t", [0])).result(timeout=5)
        assert isinstance(response, ShedResponse)
        assert response.reason == "shutdown"

    def test_stop_sheds_queued_requests(self):
        gateway = Gateway(GatewayConfig())
        gateway.start()
        gateway.pause()
        future = gateway.submit(em_request("t", [0]))
        gateway.stop()
        response = future.result(timeout=5)
        assert isinstance(response, ShedResponse)
        assert response.reason == "shutdown"

    def test_clean_start_stop_cycles(self):
        for _ in range(3):
            gateway = Gateway(GatewayConfig())
            with gateway:
                response = GatewayClient(gateway).request(
                    em_request("t", [0])
                )
                assert response.ok
        assert gateway.healthz()["status"] == "stopped"

    def test_stats_block_is_schema_valid(self):
        schema_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "schemas" / "gateway_stats.schema.json"
        )
        schema = json.loads(schema_path.read_text())
        gateway = Gateway(GatewayConfig(workers=2))
        with gateway:
            client = GatewayClient(gateway)
            client.request(em_request("alice", [0, 1]))
            client.request(em_request("bob", [2], priority="backfill"))
            stats = gateway.stats()
        problems = validate_manifest(stats, schema)
        assert problems == []
        assert stats["completed"] == 2
        assert stats["served_by_priority"]["interactive"] == 1
        assert stats["served_by_priority"]["backfill"] == 1
        assert stats["backend_requests"]["dropped_records"] == 0
        assert stats["tenants"]["alice"]["n_completed"] == 1

    def test_coalescing_counted_in_stats(self):
        gateway = Gateway(GatewayConfig(workers=2))
        with gateway:
            gateway.pause()
            futures = [
                gateway.submit(em_request("t", [i])) for i in range(4)
            ]
            gateway.resume()
            for future in futures:
                assert future.result(timeout=60).ok
            stats = gateway.stats()
        # Four compatible requests → strictly fewer batches than
        # requests (the paused queue guarantees they were all visible
        # to one pop_group pass).
        assert stats["batches"]["n_batches"] < 4
        assert stats["batches"]["n_coalesced_requests"] >= 1

    def test_bad_index_answers_instead_of_crashing(self):
        gateway = Gateway(GatewayConfig())
        with gateway:
            response = GatewayClient(gateway).request(
                em_request("t", [10_000])
            )
        assert isinstance(response, WrangleResponse)
        assert not response.ok
        assert response.results[0]["error_type"] == "ValueError"


class TestIdleExpiry:
    """Deadline expiry must not depend on dispatch traffic (PR 9 fix).

    A paused gateway used to skip expiry entirely: the paused branch of
    the dispatch loop never called ``_dispatch_once``, so a queued
    request with a passed deadline sat unresolved until ``resume()``.
    These tests drive the dead branch with an injected fake clock — the
    waiter must be shed while the gateway is still paused.
    """

    def test_paused_gateway_sheds_expired_waiter_without_resume(self):
        fake_now = [1000.0]
        gateway = Gateway(GatewayConfig(workers=1), clock=lambda: fake_now[0])
        with gateway:
            gateway.pause()
            future = gateway.submit(
                em_request("impatient", [0], deadline_s=5.0)
            )
            fake_now[0] += 6.0  # past the deadline; gateway stays paused
            response = future.result(timeout=10)
            assert gateway._paused.is_set(), "expiry must not need resume()"
        assert isinstance(response, ShedResponse)
        assert response.reason == "deadline"

    def test_idle_gateway_sheds_expired_waiter_without_new_traffic(self):
        fake_now = [0.0]
        gateway = Gateway(GatewayConfig(workers=1), clock=lambda: fake_now[0])
        with gateway:
            gateway.pause()
            future = gateway.submit(em_request("t", [0], deadline_s=2.0))
            gateway.resume()
            fake_now[0] += 3.0
            # No further submits: the bounded idle wait alone must wake
            # the loop and shed the expired entry.
            response = future.result(timeout=10)
        assert isinstance(response, ShedResponse)
        assert response.reason == "deadline"

    def test_unexpired_waiter_survives_pause(self):
        fake_now = [0.0]
        gateway = Gateway(GatewayConfig(workers=1), clock=lambda: fake_now[0])
        with gateway:
            gateway.pause()
            future = gateway.submit(em_request("t", [0], deadline_s=60.0))
            fake_now[0] += 1.0  # well inside the deadline
            import time as _time

            _time.sleep(0.2)  # give the paused loop several wake-ups
            assert not future.done()
            gateway.resume()
            response = future.result(timeout=60)
        assert isinstance(response, WrangleResponse)
        assert response.ok
