"""Signal handling of ``repro serve``: a SIGTERM storm must exit clean.

The original handler raised KeyboardInterrupt unconditionally, so a
second SIGTERM arriving while the ``finally`` block was tearing the
gateway down re-raised from inside cleanup and the process died with a
traceback instead of "gateway stopped cleanly" + exit 0.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import _make_terminate_handler

pytestmark = pytest.mark.smoke

REPO = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _restore_sigterm():
    # The handler flips the process-wide SIGTERM disposition to SIG_IGN
    # on first fire; undo that so it can't leak into other tests.
    previous = signal.getsignal(signal.SIGTERM)
    yield
    signal.signal(signal.SIGTERM, previous)


class TestTerminateHandler:
    def test_first_signal_raises(self):
        handler = _make_terminate_handler()
        with pytest.raises(KeyboardInterrupt):
            handler(signal.SIGTERM, None)

    def test_first_signal_ignores_further_sigterm_at_os_level(self):
        # A repeat can arrive during interpreter finalization, after
        # Python has restored default dispositions — only an OS-level
        # SIG_IGN survives that window.
        handler = _make_terminate_handler()
        with pytest.raises(KeyboardInterrupt):
            handler(signal.SIGTERM, None)
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_IGN

    def test_second_signal_is_swallowed(self):
        handler = _make_terminate_handler()
        with pytest.raises(KeyboardInterrupt):
            handler(signal.SIGTERM, None)
        assert handler(signal.SIGTERM, None) is None  # no re-raise

    def test_signal_storm_is_swallowed(self):
        handler = _make_terminate_handler()
        with pytest.raises(KeyboardInterrupt):
            handler(signal.SIGTERM, None)
        for _ in range(10):
            handler(signal.SIGTERM, None)

    def test_fresh_handler_is_independent(self):
        first = _make_terminate_handler()
        with pytest.raises(KeyboardInterrupt):
            first(signal.SIGTERM, None)
        second = _make_terminate_handler()
        with pytest.raises(KeyboardInterrupt):
            second(signal.SIGTERM, None)


class TestDoubleSigtermIntegration:
    def test_two_sigterms_exit_zero_without_traceback(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # Wait for the gateway to come up (it announces its address).
            deadline = time.monotonic() + 60
            line = ""
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "listening" in line:
                    break
            assert "listening" in line, "gateway never came up"
            process.send_signal(signal.SIGTERM)
            time.sleep(0.05)  # let cleanup start, then hit it again
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr[-2000:]
        assert "Traceback" not in stderr
        assert "gateway stopped cleanly" in stdout
