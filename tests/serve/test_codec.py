"""Inline-row codec validation: typed errors, never a deep KeyError.

The gateway's HTTP front end decodes rows *eagerly* (before admission),
so a malformed inline row costs a 400 — not a queue slot, not a backend
call, not an engine traceback.
"""

from __future__ import annotations

import pytest

from repro.datasets.base import ErrorExample, ImputationExample, MatchingPair
from repro.serve.codec import (
    MAX_CELL_CHARS,
    RowDecodeError,
    decode_rows,
    encode_prediction,
)

pytestmark = pytest.mark.smoke


GOOD_PAIR = {
    "left": {"name": "oceana", "city": "new york"},
    "right": {"name": "oceana grill", "city": "nyc"},
}
GOOD_IMPUTATION = {
    "row": {"name": "oceana", "address": "55 e. 54th st."},
    "attribute": "city",
}


class TestHappyPath:
    def test_matching_pair(self):
        [pair] = decode_rows("entity_matching", [GOOD_PAIR])
        assert isinstance(pair, MatchingPair)
        assert pair.left["name"] == "oceana"
        assert pair.label is False

    def test_imputation(self):
        [example] = decode_rows("imputation", [GOOD_IMPUTATION])
        assert isinstance(example, ImputationExample)
        assert example.attribute == "city"

    def test_error_detection(self):
        [example] = decode_rows(
            "error_detection",
            [{"row": {"city": "sna francisco"}, "attribute": "city",
              "label": True}],
        )
        assert isinstance(example, ErrorExample)
        assert example.label is True

    def test_scalar_and_null_cells_pass(self):
        [pair] = decode_rows("entity_matching", [{
            "left": {"name": "a", "year": 1999, "score": 4.5,
                     "active": True, "note": None},
            "right": {"name": "a"},
        }])
        assert pair.left["year"] == 1999
        assert pair.left["note"] is None


class TestMalformedRows:
    def test_non_dict_row(self):
        with pytest.raises(RowDecodeError, match=r"row\[0\] must be an object"):
            decode_rows("entity_matching", ["not a row"])

    def test_missing_required_field(self):
        with pytest.raises(RowDecodeError, match=r"row\[0\].*'right'"):
            decode_rows("entity_matching", [{"left": {"name": "a"}}])

    def test_wrong_record_type(self):
        with pytest.raises(RowDecodeError, match=r"row\[0\]\.left"):
            decode_rows(
                "entity_matching", [{"left": "name=a", "right": {}}]
            )

    def test_non_scalar_cell(self):
        with pytest.raises(RowDecodeError, match=r"row\[0\]\.row cell 'tags'"):
            decode_rows("imputation", [{
                "row": {"tags": ["a", "b"]}, "attribute": "city",
            }])

    def test_oversized_cell(self):
        with pytest.raises(RowDecodeError, match="limit"):
            decode_rows("imputation", [{
                "row": {"bio": "x" * (MAX_CELL_CHARS + 1)},
                "attribute": "city",
            }])

    def test_non_string_attribute(self):
        with pytest.raises(RowDecodeError, match=r"row\[0\]\.attribute"):
            decode_rows("imputation", [{"row": {"a": 1}, "attribute": 7}])

    def test_error_names_the_offending_position(self):
        rows = [GOOD_PAIR, GOOD_PAIR, {"left": {}}]
        with pytest.raises(RowDecodeError, match=r"row\[2\]"):
            decode_rows("entity_matching", rows)

    def test_row_decode_error_is_a_value_error(self):
        # The HTTP front end's existing 400 catch handles ValueError;
        # the subclass rides it with zero handler changes.
        assert issubclass(RowDecodeError, ValueError)

    def test_task_without_inline_shape_rejects_rows(self):
        with pytest.raises(ValueError, match="does not accept inline rows"):
            decode_rows("schema_matching", [GOOD_PAIR])


class TestEncodePrediction:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "yes"):
            assert encode_prediction(value) == value

    def test_rich_objects_stringify(self):
        class Pred:
            def __str__(self):
                return "match"

        assert encode_prediction(Pred()) == "match"
