"""Unit tests for tenant budgets and token-bucket rate limits."""

import pytest

from repro.serve.tenancy import TenantPolicy, TenantRegistry, TokenBucket

pytestmark = pytest.mark.smoke


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_unlimited_when_rate_none(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_acquire(1000) for _ in range(100))

    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert bucket.try_acquire(3)
        assert not bucket.try_acquire(1)

    def test_refills_over_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(2)
        assert not bucket.try_acquire(1)
        clock.now = 1.0  # 2 tokens refilled
        assert bucket.try_acquire(2)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=5.0, clock=clock)
        clock.now = 1e6
        assert bucket.available == 5.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)


class TestTenantRegistry:
    def test_default_policy_is_unlimited(self):
        registry = TenantRegistry()
        for _ in range(50):
            assert registry.admit("anyone", 10) is None

    def test_budget_exhaustion_sheds(self):
        registry = TenantRegistry(
            policies={"capped": TenantPolicy(max_requests=2)}
        )
        assert registry.admit("capped", 1) is None
        assert registry.admit("capped", 1) is None
        assert registry.admit("capped", 1) == "tenant_budget"

    def test_rate_limit_sheds_by_example_count(self):
        clock = FakeClock()
        registry = TenantRegistry(
            policies={"slow": TenantPolicy(rate=1.0, burst=4.0)},
            clock=clock,
        )
        assert registry.admit("slow", 4) is None
        assert registry.admit("slow", 1) == "tenant_rate"
        clock.now = 2.0
        assert registry.admit("slow", 2) is None

    def test_tenants_are_isolated(self):
        registry = TenantRegistry(
            policies={"capped": TenantPolicy(max_requests=1)}
        )
        assert registry.admit("capped", 1) is None
        assert registry.admit("capped", 1) == "tenant_budget"
        assert registry.admit("other", 1) is None

    def test_stats_counters(self):
        registry = TenantRegistry(
            policies={"capped": TenantPolicy(max_requests=1)}
        )
        registry.admit("capped", 3)
        registry.admit("capped", 1)
        registry.record_completed("capped")
        stats = registry.stats()["capped"]
        assert stats["n_submitted"] == 2
        assert stats["n_admitted"] == 1
        assert stats["n_shed"] == 1
        assert stats["n_completed"] == 1
        assert stats["n_examples"] == 3
        assert stats["budget_remaining"] == 0
