"""Unit tests for the bounded priority RequestQueue."""

from concurrent.futures import Future

import pytest

from repro.serve.request import (
    QueueEntry,
    QueueFull,
    RequestQueue,
    WrangleRequest,
)

pytestmark = pytest.mark.smoke


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_request(priority="interactive", tenant="t", indices=(0,),
                 task="entity_matching", dataset="fodors_zagats",
                 seed=0, **kwargs):
    return WrangleRequest(
        tenant=tenant, task=task, dataset=dataset,
        indices=list(indices), priority=priority, seed=seed, **kwargs
    )


def make_entry(request_id, priority="interactive", clock=None, expires_at=None,
               **kwargs):
    now = clock() if clock is not None else 0.0
    return QueueEntry(
        request_id=request_id,
        request=make_request(priority=priority, **kwargs),
        future=Future(),
        enqueued_at=now,
        expires_at=expires_at,
    )


class TestRequestValidation:
    def test_rejects_unknown_priority(self):
        with pytest.raises(ValueError):
            make_request(priority="vip")

    def test_rejects_unknown_task(self):
        with pytest.raises(ValueError):
            make_request(task="mystery")

    def test_rejects_both_indices_and_rows(self):
        with pytest.raises(ValueError):
            WrangleRequest(tenant="t", task="entity_matching",
                           dataset="d", indices=[0], rows=[{}])

    def test_rejects_neither_indices_nor_rows(self):
        with pytest.raises(ValueError):
            WrangleRequest(tenant="t", task="entity_matching", dataset="d")

    def test_group_key_pins_prompt_identity(self):
        a = make_request(indices=[0])
        b = make_request(indices=[5, 6])
        assert a.group_key == b.group_key
        assert a.group_key != make_request(seed=1).group_key


class TestQueueOrdering:
    def test_strict_priority_order(self):
        # Distinct seeds → distinct group keys, so nothing coalesces
        # and pops expose pure priority order.
        queue = RequestQueue(capacity=10)
        queue.push(make_entry(1, "backfill", seed=1))
        queue.push(make_entry(2, "bench", seed=2))
        queue.push(make_entry(3, "interactive", seed=3))
        ids = [queue.pop_group()[0].request_id for _ in range(3)]
        assert ids == [3, 2, 1]

    def test_fifo_within_class(self):
        queue = RequestQueue(capacity=10)
        for request_id in (1, 2, 3):
            queue.push(make_entry(request_id, "interactive", seed=request_id))
        ids = [queue.pop_group()[0].request_id for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_pop_group_coalesces_same_key(self):
        queue = RequestQueue(capacity=10)
        queue.push(make_entry(1, "interactive", indices=[0]))
        queue.push(make_entry(2, "interactive", indices=[1, 2]))
        queue.push(make_entry(3, "interactive", seed=9))  # different key
        group = queue.pop_group()
        assert [entry.request_id for entry in group] == [1, 2]
        assert len(queue) == 1

    def test_pop_group_coalesces_across_priorities(self):
        queue = RequestQueue(capacity=10)
        queue.push(make_entry(1, "backfill", indices=[0]))
        queue.push(make_entry(2, "interactive", indices=[1]))
        group = queue.pop_group()
        # Interactive head; compatible backfill piggybacks (it can only
        # get served earlier than it would alone).
        assert [entry.request_id for entry in group] == [2, 1]

    def test_pop_group_respects_max_examples(self):
        queue = RequestQueue(capacity=10)
        queue.push(make_entry(1, "interactive", indices=[0, 1]))
        queue.push(make_entry(2, "interactive", indices=[2, 3]))
        queue.push(make_entry(3, "interactive", indices=[4]))
        group = queue.pop_group(max_examples=4)
        assert [entry.request_id for entry in group] == [1, 2]

    def test_pop_empty(self):
        assert RequestQueue(capacity=2).pop_group() == []


class TestOverflow:
    def test_evicts_newest_lowest_priority(self):
        queue = RequestQueue(capacity=2)
        queue.push(make_entry(1, "backfill"))
        queue.push(make_entry(2, "backfill"))
        evicted = queue.push(make_entry(3, "interactive"))
        assert evicted.request_id == 2
        assert len(queue) == 2

    def test_evicts_backfill_before_bench(self):
        queue = RequestQueue(capacity=2)
        queue.push(make_entry(1, "bench"))
        queue.push(make_entry(2, "backfill"))
        evicted = queue.push(make_entry(3, "interactive"))
        assert evicted.request_id == 2

    def test_equal_priority_arrival_is_refused(self):
        queue = RequestQueue(capacity=1)
        queue.push(make_entry(1, "interactive"))
        with pytest.raises(QueueFull):
            queue.push(make_entry(2, "interactive"))
        assert len(queue) == 1

    def test_backfill_cannot_evict_interactive(self):
        queue = RequestQueue(capacity=1)
        queue.push(make_entry(1, "interactive"))
        with pytest.raises(QueueFull):
            queue.push(make_entry(2, "backfill"))


class TestDeadlines:
    def test_expired_waiters_are_removed(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=5, clock=clock)
        queue.push(make_entry(1, "interactive", expires_at=1.0))
        queue.push(make_entry(2, "interactive", expires_at=10.0))
        clock.now = 2.0
        expired = queue.pop_expired()
        assert [entry.request_id for entry in expired] == [1]
        assert len(queue) == 1

    def test_no_deadline_never_expires(self):
        clock = FakeClock()
        queue = RequestQueue(capacity=5, clock=clock)
        queue.push(make_entry(1, "interactive"))
        clock.now = 1e9
        assert queue.pop_expired() == []


class TestDrain:
    def test_drain_empties_everything(self):
        queue = RequestQueue(capacity=5)
        queue.push(make_entry(1, "interactive"))
        queue.push(make_entry(2, "backfill"))
        drained = queue.drain()
        assert {entry.request_id for entry in drained} == {1, 2}
        assert len(queue) == 0
        assert queue.depths() == {
            "interactive": 0, "bench": 0, "backfill": 0,
        }
