"""Pinned service-level resilience guarantees at the engine level.

The acceptance tests of the deadline → hedge → shed → degrade ladder:

* under the ``heavy`` profile a ``fallback`` run completes with
  coverage == 1.0 and a populated ``served_by_tier`` breakdown,
* shed examples surface as typed ``stage="admission"`` quarantines —
  never a silent drop — and admitted survivors are identical to an
  unconstrained run,
* every hedge/shed/degrade decision is byte-identical at ``workers=1``
  and ``workers=8`` with the same seed,
* with the knobs off, the run (manifest included) matches the PR 4
  shape exactly,
* the extended manifest validates against the checked-in schema.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.api import CompletionClient, FaultPlan, SharedBudget
from repro.api.retry import DeadlineExceededError
from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task
from repro.datasets import load_dataset

pytestmark = pytest.mark.chaos

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "schemas"
    / "run_manifest.schema.json"
)

MAX_EXAMPLES = 40


@pytest.fixture(scope="module")
def fodors():
    return load_dataset("fodors_zagats")


@pytest.fixture(scope="module")
def schema():
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def _run(dataset, workers=1, **kwargs):
    return run_task(
        "em", "gpt3-175b", dataset, k=0, max_examples=MAX_EXAMPLES,
        workers=workers, **kwargs,
    )


class TestFallbackLadder:
    def test_heavy_profile_with_fallback_restores_full_coverage(
        self, fodors, schema
    ):
        plan = FaultPlan("heavy", seed=7)
        bare = _run(
            fodors, on_error="quarantine", fault_plan=plan, workers=4,
        )
        assert bare.quarantine  # heavy must actually hurt
        rescued = _run(
            fodors, on_error="quarantine",
            fault_plan=FaultPlan("heavy", seed=7),
            fallback="gpt3-6.7b,gpt3-1.3b", workers=4,
        )
        assert rescued.coverage == 1.0
        assert rescued.quarantine == []
        assert rescued.degraded  # full coverage, but not pristine
        assert rescued.served_by_tier
        served = sum(rescued.served_by_tier.values())
        assert served == rescued.n_examples
        # The fallback tiers actually served the holes.
        fallback_served = sum(
            count for name, count in rescued.served_by_tier.items()
            if name != "gpt3-175b"
        )
        assert fallback_served == len(bare.quarantine)
        assert None not in rescued.predictions
        manifest = rescued.manifest.to_dict()
        assert manifest["served_by_tier"] == rescued.served_by_tier
        assert validate_manifest(manifest, schema) == []

    def test_fallback_tier_usage_lands_in_manifest(self, fodors):
        rescued = _run(
            fodors, on_error="quarantine",
            fault_plan=FaultPlan("heavy", seed=7),
            fallback="gpt3-6.7b", workers=4,
        )
        usage = rescued.manifest.to_dict()["usage"]
        served = rescued.served_by_tier
        if served.get("gpt3-6.7b", 0):
            assert usage["gpt3-6.7b"]["n_requests"] >= served["gpt3-6.7b"]


class TestAdmissionShedding:
    def test_shed_is_typed_quarantine_never_silent(self, fodors, schema):
        run = _run(
            fodors, on_error="quarantine",
            budget=SharedBudget(max_requests=10), workers=4,
        )
        shed = [r for r in run.quarantine if r.stage == "admission"]
        assert shed and all(r.error_type == "Shed" for r in shed)
        assert all(r.attempts == 0 for r in shed)
        # Every example is accounted for: scored or quarantined.
        assert len(run.quarantine) + sum(
            1 for p in run.predictions if p is not None
        ) == run.n_examples
        manifest = run.manifest.to_dict()
        assert manifest["shed"]["shed"] == len(shed)
        assert manifest["shed"]["admitted"] + len(shed) == run.n_examples
        assert validate_manifest(manifest, schema) == []

    def test_admitted_survivors_identical_to_unconstrained_run(self, fodors):
        clean = _run(fodors)
        constrained = _run(
            fodors, on_error="quarantine",
            budget=SharedBudget(max_requests=10), workers=4,
        )
        quarantined = {r.index for r in constrained.quarantine}
        assert quarantined
        for index in range(constrained.n_examples):
            if index in quarantined:
                assert constrained.predictions[index] is None
            else:
                assert (
                    constrained.predictions[index] == clean.predictions[index]
                )

    def test_fallback_rescues_shed_examples(self, fodors):
        run = _run(
            fodors, on_error="quarantine",
            budget=SharedBudget(max_requests=10),
            fallback="gpt3-6.7b", workers=4,
        )
        assert run.coverage == 1.0
        assert run.quarantine == []
        assert run.served_by_tier["gpt3-6.7b"] > 0
        assert run.manifest.shed["shed"] > 0  # shedding still reported


class TestWorkerCountDeterminism:
    def test_shed_and_degrade_decisions_identical_across_workers(
        self, fodors
    ):
        outcomes = []
        for workers in (1, 8):
            # The latency profile exercises hedging without transient
            # failures, so the admitted prefix's request count is exact
            # and the only quarantines are the budget's shed tail.
            run = _run(
                fodors, workers=workers, on_error="quarantine",
                fault_plan=FaultPlan("latency", seed=3),
                budget=SharedBudget(max_requests=30),
                fallback="gpt3-6.7b,gpt3-1.3b", hedge=0.005,
            )
            outcomes.append((
                run.predictions,
                run.served_by_tier,
                [(r.index, r.error_type, r.stage) for r in run.quarantine],
                run.coverage,
                run.degraded,
                run.manifest.shed["shed"],
            ))
        assert outcomes[0] == outcomes[1]


class TestDeadline:
    def test_expired_deadline_fails_fast_even_in_quarantine_mode(
        self, fodors
    ):
        with pytest.raises(DeadlineExceededError):
            _run(fodors, on_error="quarantine", deadline=1e-9, workers=4)

    def test_met_deadline_reports_slo_block(self, fodors, schema):
        run = _run(fodors, deadline=120.0)
        slo = run.manifest.slo
        assert slo["budget_s"] == 120.0
        assert slo["expired"] is False
        assert 0.0 <= slo["elapsed_s"] < 120.0
        assert validate_manifest(run.manifest.to_dict(), schema) == []


class TestHedging:
    def test_hedged_run_identical_predictions_and_manifest_block(
        self, fodors, schema
    ):
        plain = _run(fodors, fault_plan=FaultPlan("latency", seed=0),
                     workers=4, on_error="quarantine")
        hedged = _run(fodors, fault_plan=FaultPlan("latency", seed=0),
                      workers=4, on_error="quarantine", hedge=True)
        assert hedged.predictions == plain.predictions
        block = hedged.manifest.hedges
        assert block["fired"] >= 1
        assert 0 <= block["wins"] <= block["fired"]
        assert validate_manifest(hedged.manifest.to_dict(), schema) == []


class TestDefaultsOffParity:
    def test_knobs_off_matches_pr4_shape(self, fodors, schema):
        with_knobs = _run(fodors)
        manifest = with_knobs.manifest.to_dict()
        assert manifest["slo"] is None
        assert manifest["hedges"] is None
        assert manifest["shed"] is None
        assert manifest["served_by_tier"] is None
        assert with_knobs.served_by_tier is None
        assert "fallback" not in manifest["phases"]
        assert validate_manifest(manifest, schema) == []

    def test_client_defaults_off(self):
        client = CompletionClient()
        assert client.hedge_policy is None
        assert client.deadline is None
        assert client.stats["hedge_calls"] == 0
