"""Tests for the repair verbs (Wrangler.repair_cell / repair_row)."""

import pytest

from repro.core import Wrangler
from repro.datasets import load_dataset
from repro.datasets.base import ErrorExample


@pytest.fixture(scope="module")
def wrangler(fm_175b):
    return Wrangler(fm_175b)


@pytest.fixture(scope="module")
def small_wrangler(fm_67b):
    return Wrangler(fm_67b)


class TestRepairCell:
    def test_typo_repair(self, wrangler):
        assert wrangler.repair_cell({"city": "bxston", "state": "ma"}, "city") == "boston"

    def test_fd_rederivation_beats_the_typo(self, wrangler):
        repaired = wrangler.repair_cell(
            {"city": "san fraxcisco", "phone": "415-775-7036"}, "city"
        )
        assert repaired.casefold() == "san francisco"

    def test_unrecoverable_numeric_left_alone(self, wrangler):
        """A lost digit cannot be conjured back; the model is conservative."""
        repaired = wrangler.repair_cell(
            {"provider_number": "10x45", "city": "boston"}, "provider_number"
        )
        assert repaired == "10x45"

    def test_zip_repair_uses_city_fd(self, wrangler):
        repaired = wrangler.repair_cell(
            {"zip_code": "95x05", "city": "sacramento"}, "zip_code"
        )
        assert repaired == "95805"

    def test_state_repair_uses_city_fd(self, wrangler):
        repaired = wrangler.repair_cell(
            {"state": "nx", "city": "charlotte"}, "state"
        )
        assert repaired == "nc"

    def test_clean_value_passes_through(self, wrangler):
        assert wrangler.repair_cell({"city": "boston"}, "city") == "boston"

    def test_small_models_cannot_spell_repair(self, small_wrangler):
        repaired = small_wrangler.repair_cell({"condition": "hearx failure"},
                                              "condition")
        assert repaired.casefold() != "heart failure"


class TestRepairRow:
    def test_detect_and_repair(self, wrangler):
        demos = [
            ErrorExample(row={"city": "boston", "state": "ma"},
                         attribute="city", label=False),
            ErrorExample(row={"city": "chicxgo", "state": "il"},
                         attribute="city", label=True),
        ]
        dirty = {"city": "seaxtle", "state": "wa"}
        repaired = wrangler.repair_row(dirty, error_demonstrations=demos)
        assert repaired["city"] == "seattle"
        assert repaired["state"] == "wa"

    def test_clean_row_untouched(self, wrangler):
        demos = [
            ErrorExample(row={"city": "boston"}, attribute="city", label=False),
        ]
        row = {"city": "denver", "state": "co"}
        assert wrangler.repair_row(row, error_demonstrations=demos) == row


class TestRepairRowsMany:
    DEMOS = [
        ErrorExample(row={"city": "boston", "state": "ma"},
                     attribute="city", label=False),
        ErrorExample(row={"city": "chicxgo", "state": "il"},
                     attribute="city", label=True),
    ]

    def test_batch_matches_serial(self, wrangler):
        rows = [
            {"city": "seaxtle", "state": "wa"},
            {"city": "denver", "state": "co"},
            {"city": "poxtland", "state": "or"},
        ]
        batch = wrangler.repair_rows_many(rows, error_demonstrations=self.DEMOS)
        serial = [wrangler.repair_row(row, error_demonstrations=self.DEMOS)
                  for row in rows]
        assert batch == serial
        assert batch[0]["city"] == "seattle"
        assert batch[1] == rows[1]  # clean row untouched

    def test_workers_do_not_change_repairs(self, wrangler):
        rows = [
            {"city": "seaxtle", "state": "wa"},
            {"city": "chicxgo", "state": "il"},
        ]
        assert (wrangler.repair_rows_many(rows, error_demonstrations=self.DEMOS,
                                          workers=4)
                == wrangler.repair_rows_many(rows,
                                             error_demonstrations=self.DEMOS))

    def test_inputs_not_mutated(self, wrangler):
        row = {"city": "seaxtle", "state": "wa"}
        wrangler.repair_rows_many([row], error_demonstrations=self.DEMOS)
        assert row["city"] == "seaxtle"


class TestRepairOnHospital:
    def test_end_to_end_repair_accuracy(self, wrangler):
        """Detect-then-repair beats blind imputation on Hospital cells."""
        dataset = load_dataset("hospital")
        dirty_cells = [e for e in dataset.test if e.label][:40]
        hits = 0
        for example in dirty_cells:
            suggestion = wrangler.repair_cell(example.row, example.attribute)
            if suggestion.casefold() == (example.clean_value or "").casefold():
                hits += 1
        assert hits / len(dirty_cells) > 0.6
