"""Pinned resilience guarantees: determinism, degradation, schema.

These are the acceptance tests of the chaos harness:

* same fault seed ⇒ byte-identical fault schedule and identical
  quarantine sets at ``workers=1`` and ``workers=8``,
* under the canned ``ci`` profile (10% transient / 2% malformed) a
  Table-1 style sweep completes *degraded but scored* with coverage
  ≥ 0.95 and a schema-valid manifest,
* predictions for non-quarantined examples are identical to a
  fault-free run — injection may remove examples, never corrupt
  survivors.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.api import CompletionClient, FaultPlan
from repro.api.faults import set_default_fault_plan
from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task, set_default_on_error
from repro.datasets import load_dataset

pytestmark = pytest.mark.chaos

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "schemas"
    / "run_manifest.schema.json"
)

MAX_EXAMPLES = 60


def _chaos_run(dataset, seed=0, workers=1, profile="ci", **kwargs):
    client = CompletionClient(fault_plan=FaultPlan(profile, seed=seed))
    return run_task(
        "em", client, dataset, k=0, max_examples=MAX_EXAMPLES,
        workers=workers, on_error="quarantine", **kwargs,
    )


@pytest.fixture(scope="module")
def fodors():
    return load_dataset("fodors_zagats")


class TestDeterminism:
    def test_schedule_digest_pinned_to_seed(self, fodors):
        """Byte-identical fault schedules from the same seed, regardless
        of plan instance or draw order."""
        from repro.core.prompts import (
            EntityMatchingPromptConfig,
            build_entity_matching_prompt,
        )

        config = EntityMatchingPromptConfig(entity_noun=fodors.entity_noun)
        prompts = [
            build_entity_matching_prompt(pair, [], config)
            for pair in fodors.test[:MAX_EXAMPLES]
        ]
        digest_a = FaultPlan("ci", seed=0).schedule_digest(prompts)
        digest_b = FaultPlan("ci", seed=0).schedule_digest(prompts)
        assert digest_a == digest_b
        # Shuffled draw order cannot move the schedule (pure per prompt).
        plan = FaultPlan("ci", seed=0)
        for prompt in reversed(prompts):
            plan.schedule_for(prompt)
        assert plan.schedule_digest(prompts) == digest_a

    def test_quarantine_sets_identical_across_worker_counts(self, fodors):
        """The pinned determinism criterion: same seed ⇒ identical
        quarantine sets at workers=1 and workers=8."""
        serial = _chaos_run(fodors, seed=0, workers=1)
        parallel = _chaos_run(fodors, seed=0, workers=8)
        serial_q = {(r.index, r.error_type, r.stage) for r in serial.quarantine}
        parallel_q = {
            (r.index, r.error_type, r.stage) for r in parallel.quarantine
        }
        assert serial_q == parallel_q
        assert serial.predictions == parallel.predictions
        assert serial.metric == parallel.metric

    def test_different_seeds_differ(self, fodors):
        """Sanity check that the seed actually drives the schedule (a
        constant schedule would pass the identity tests trivially)."""
        digests = {
            FaultPlan("heavy", seed=seed).schedule_digest(
                [f"probe prompt {i}" for i in range(200)]
            )
            for seed in range(3)
        }
        assert len(digests) == 3


class TestGracefulDegradation:
    def test_degraded_but_scored_with_high_coverage(self, fodors):
        run = _chaos_run(fodors, seed=0)
        assert run.degraded
        assert len(run.quarantine) >= 1
        assert run.coverage >= 0.95
        assert run.metric > 0.5  # survivors still score like Table 1

    def test_survivor_predictions_identical_to_fault_free(self, fodors):
        clean = run_task(
            "em", CompletionClient(), fodors, k=0, max_examples=MAX_EXAMPLES,
        )
        faulted = _chaos_run(fodors, seed=0)
        quarantined = {record.index for record in faulted.quarantine}
        assert quarantined  # otherwise this test proves nothing
        for index in range(faulted.n_examples):
            if index in quarantined:
                assert faulted.predictions[index] is None
            else:
                assert faulted.predictions[index] == clean.predictions[index]

    def test_quarantine_records_carry_forensics(self, fodors):
        run = _chaos_run(fodors, seed=0)
        for record in run.quarantine:
            assert 0 <= record.index < run.n_examples
            assert record.error_type
            assert record.stage in ("completion", "parse")
            assert record.attempts >= 1

    def test_raise_mode_is_unchanged_default(self, fodors):
        """Without quarantine mode, injected unrecoverable faults still
        abort the run — graceful degradation is strictly opt-in."""
        profile_run = lambda: run_task(  # noqa: E731
            "em",
            CompletionClient(fault_plan=FaultPlan("ci", seed=0)),
            fodors,
            k=0,
            max_examples=MAX_EXAMPLES,
        )
        with pytest.raises(Exception):
            profile_run()


class TestManifestIntegration:
    def test_chaos_manifest_validates_against_schema(self, fodors):
        run = _chaos_run(fodors, seed=0)
        schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
        problems = validate_manifest(run.manifest.to_dict(), schema)
        assert problems == []

    def test_manifest_reports_quarantine_and_faults(self, fodors):
        run = _chaos_run(fodors, seed=0)
        manifest = run.manifest.to_dict()
        assert manifest["degraded"] is True
        assert manifest["coverage"] == pytest.approx(run.coverage)
        assert len(manifest["quarantine"]) == len(run.quarantine)
        assert manifest["faults"]["profile"] == "ci"
        assert manifest["faults"]["seed"] == 0
        assert sum(manifest["faults"]["injected"].values()) >= 1

    def test_fault_free_manifest_stays_clean(self, fodors):
        run = run_task(
            "em", CompletionClient(), fodors, k=0, max_examples=20,
        )
        manifest = run.manifest.to_dict()
        assert manifest["degraded"] is False
        assert manifest["coverage"] == 1.0
        assert manifest["quarantine"] == []
        assert manifest["faults"] is None


class TestBenchUnderChaos:
    def test_table1_sweep_completes_degraded_but_scored(self):
        """The resilience acceptance: a Table-1 style sweep under the ci
        profile (installed process-wide, exactly as ``repro bench
        --chaos ci`` does) completes with degraded totals, coverage
        ≥ 0.95, and schema-valid per-run manifests."""
        from repro.bench import table1
        from repro.bench.reporting import summarize_manifests
        from repro.bench.runners import collect_manifests

        set_default_fault_plan(FaultPlan("ci", seed=0))
        set_default_on_error("quarantine")
        try:
            with collect_manifests() as sink:
                result = table1.run(
                    datasets=("fodors_zagats", "beer"), max_examples=40
                )
        finally:
            set_default_fault_plan(None)
            set_default_on_error("raise")
        assert len(result.rows) == 2
        summary = summarize_manifests("table1", sink, 0.0, 1)
        totals = summary["totals"]
        assert totals["degraded"] is True
        assert totals["quarantined"] >= 1
        assert totals["coverage"] >= 0.95
        schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
        for run_manifest in summary["runs"]:
            assert validate_manifest(run_manifest, schema) == []
