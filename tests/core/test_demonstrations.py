"""Tests for repro.core.demonstrations."""

from repro.core.demonstrations import ManualCurator, RandomSelector


POOL = [("pos", i) if i % 4 == 0 else ("neg", i) for i in range(40)]


def _label(item):
    return item[0] == "pos"


class TestRandomSelector:
    def test_selects_k(self):
        assert len(RandomSelector(seed=0).select(POOL, 10)) == 10

    def test_k_zero(self):
        assert RandomSelector().select(POOL, 0) == []

    def test_empty_pool(self):
        assert RandomSelector().select([], 5) == []

    def test_deterministic_per_seed(self):
        assert RandomSelector(seed=3).select(POOL, 8) == RandomSelector(seed=3).select(POOL, 8)

    def test_seeds_differ(self):
        assert RandomSelector(seed=1).select(POOL, 8) != RandomSelector(seed=2).select(POOL, 8)

    def test_no_duplicates(self):
        chosen = RandomSelector(seed=0).select(POOL, 15)
        assert len(set(chosen)) == 15

    def test_balanced_mode(self):
        selector = RandomSelector(seed=0, balanced=True, label_of=_label)
        chosen = selector.select(POOL, 10)
        positives = sum(_label(item) for item in chosen)
        assert positives == 5

    def test_balanced_with_scarce_minority(self):
        pool = [("pos", 0)] + [("neg", i) for i in range(1, 20)]
        selector = RandomSelector(seed=0, balanced=True, label_of=_label)
        chosen = selector.select(pool, 6)
        assert len(chosen) == 6
        assert sum(_label(item) for item in chosen) == 1


class TestManualCurator:
    def test_maximizes_supplied_objective(self):
        # Objective: prefer items whose index is small.
        def evaluate(demos):
            if not demos:
                return 0.0
            return 1.0 / (1.0 + sum(item[1] for item in demos) / len(demos))

        curator = ManualCurator(evaluate=evaluate, pool_cap=20, seed=0)
        chosen = curator.select(POOL, 4)
        assert len(chosen) == 4
        mean_index = sum(item[1] for item in chosen) / 4
        assert mean_index < 15  # clearly better than random's ~20

    def test_balance_enforced_with_labels(self):
        curator = ManualCurator(
            evaluate=lambda demos: float(len(demos)),
            pool_cap=24, seed=0, label_of=_label,
        )
        chosen = curator.select(POOL, 10)
        positives = sum(_label(item) for item in chosen)
        assert abs(positives - (len(chosen) - positives)) <= 1

    def test_trace_recorded(self):
        curator = ManualCurator(evaluate=lambda demos: float(len(demos)), seed=0)
        curator.select(POOL, 3)
        assert curator.trace[0] == (0, 0.0)
        assert curator.trace[-1][0] == 3

    def test_k_zero(self):
        curator = ManualCurator(evaluate=lambda demos: 0.0)
        assert curator.select(POOL, 0) == []

    def test_pool_cap_limits_candidates(self):
        examined = set()

        def evaluate(demos):
            examined.update(demos)
            return 0.0

        ManualCurator(evaluate=evaluate, pool_cap=6, seed=0).select(POOL, 2)
        assert len(examined) <= 6
