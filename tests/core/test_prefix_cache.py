"""Tests for repro.core.tasks.prefix and the engine's prefix-cached path.

Two contracts under test:

* byte identity — ``build_prefix(demos, config) + build_suffix(example,
  config)`` equals per-example ``build_prompt`` for every task that
  supports the split, so predictions cannot drift; and
* charged-once accounting — the shared prefix's tokens enter the usage
  ledger once per run (not once per example), with the saving reported
  in the manifest's ``prefix_cache`` block.
"""

import json
import pathlib

import pytest

from repro.api import CompletionClient, FaultPlan
from repro.api.usage import count_tokens
from repro.core.manifest import validate_manifest
from repro.core.tasks import (
    PromptPrefix,
    PromptPrefixCache,
    get_default_prefix_cache,
    get_task,
    prefix_key,
    run_task,
    set_default_prefix_cache,
)
from repro.datasets import load_dataset

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "schemas"
    / "run_manifest.schema.json"
)


@pytest.fixture(scope="module")
def schema():
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestPromptPrefix:
    def test_from_text_counts_tokens(self):
        prefix = PromptPrefix.from_text("hello world\n\n")
        assert prefix.text == "hello world\n\n"
        assert prefix.n_tokens == count_tokens("hello world\n\n")

    def test_frozen(self):
        prefix = PromptPrefix.from_text("x")
        with pytest.raises(AttributeError):
            prefix.text = "y"


class TestPrefixKey:
    def test_stable(self):
        assert prefix_key("em", 4, 0, dataset="beer") == prefix_key(
            "em", 4, 0, dataset="beer"
        )

    @pytest.mark.parametrize(
        "other",
        [
            dict(task="ed", k=4, seed=0, dataset="beer"),
            dict(task="em", k=6, seed=0, dataset="beer"),
            dict(task="em", k=4, seed=1, dataset="beer"),
            dict(task="em", k=4, seed=0, dataset="fodors_zagats"),
            dict(task="em", k=4, seed=0, dataset="beer", selection="random"),
        ],
    )
    def test_every_component_discriminates(self, other):
        base = prefix_key("em", 4, 0, dataset="beer")
        assert prefix_key(
            other.pop("task"), other.pop("k"), other.pop("seed"), **other
        ) != base

    def test_demonstrations_discriminate(self):
        # A custom selector's *name* cannot pin its parameters, so the
        # resolved demonstrations themselves are folded into the key.
        dataset = load_dataset("beer")
        a = prefix_key("em", 2, 0, demonstrations=list(dataset.train[:2]))
        b = prefix_key("em", 2, 0, demonstrations=list(dataset.train[2:4]))
        assert a != b


class TestPromptPrefixCache:
    def test_get_or_build_hits_and_misses(self):
        cache = PromptPrefixCache()
        built = []

        def build():
            built.append(1)
            return "prefix text\n\n"

        first, was_cached = cache.get_or_build("key", build)
        assert not was_cached
        second, was_cached_again = cache.get_or_build("key", build)
        assert was_cached_again
        assert second is first
        assert built == [1]  # built exactly once
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_fifo_eviction(self):
        cache = PromptPrefixCache(max_entries=2)
        cache.put("a", PromptPrefix.from_text("a"))
        cache.put("b", PromptPrefix.from_text("b"))
        cache.put("c", PromptPrefix.from_text("c"))
        assert len(cache) == 2
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c") is not None

    def test_clear_resets_counters(self):
        cache = PromptPrefixCache()
        cache.get_or_build("k", lambda: "text")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PromptPrefixCache(max_entries=0)

    def test_default_cache_is_process_wide_and_swappable(self):
        original = get_default_prefix_cache()
        try:
            mine = PromptPrefixCache()
            set_default_prefix_cache(mine)
            assert get_default_prefix_cache() is mine
            set_default_prefix_cache(None)
            fresh = get_default_prefix_cache()
            assert fresh is not mine
            assert len(fresh) == 0
        finally:
            set_default_prefix_cache(original)


class TestSplitByteIdentity:
    #: Every (task, dataset) whose prompts split into prefix + suffix.
    CASES = [
        ("entity_matching", "beer"),
        ("error_detection", "hospital"),
        ("imputation", "restaurant"),
        ("schema_matching", "synthea"),
    ]

    @pytest.mark.parametrize("task_name,dataset_name", CASES)
    def test_prefix_plus_suffix_equals_build_prompt(
        self, task_name, dataset_name
    ):
        spec = get_task(task_name)
        assert spec.supports_prefix
        dataset = load_dataset(dataset_name)
        demonstrations = list(dataset.train[:3])
        config = spec.default_config(dataset)
        prefix = spec.build_prefix(demonstrations, config)
        for example in list(dataset.test)[:5]:
            assert prefix + spec.build_suffix(example, config) == (
                spec.build_prompt(example, demonstrations, config, 3)
            )

    @pytest.mark.parametrize("task_name,dataset_name", CASES)
    def test_count_tokens_additive_across_split(self, task_name, dataset_name):
        spec = get_task(task_name)
        dataset = load_dataset(dataset_name)
        demonstrations = list(dataset.train[:3])
        config = spec.default_config(dataset)
        prefix = spec.build_prefix(demonstrations, config)
        suffix = spec.build_suffix(list(dataset.test)[0], config)
        assert count_tokens(prefix + suffix) == count_tokens(
            prefix
        ) + count_tokens(suffix)

    def test_transformation_does_not_split(self):
        assert not get_task("transformation").supports_prefix


def _run(**kwargs):
    defaults = dict(
        task="entity_matching", model="gpt3-175b", dataset="beer",
        k=4, selection="random", seed=0, max_examples=24,
    )
    defaults.update(kwargs)
    return run_task(**defaults)


class TestEnginePrefixPath:
    def test_predictions_identical_with_and_without_prefix_cache(self):
        on = _run(prefix_cache=PromptPrefixCache())
        off = _run(prefix_cache=False)
        assert on.predictions == off.predictions
        assert on.metric == off.metric

    def test_manifest_block_and_schema(self, schema):
        run = _run(prefix_cache=PromptPrefixCache())
        block = run.manifest.prefix_cache
        assert block["misses"] == 1  # cold cache: built once
        assert block["hits"] == run.n_examples - 1
        assert block["prefix_tokens"] > 0
        assert block["tokens_saved"] == block["prefix_tokens"] * block["hits"]
        assert validate_manifest(run.manifest.to_dict(), schema) == []

    def test_warm_cache_across_runs(self):
        cache = PromptPrefixCache()
        _run(prefix_cache=cache)
        warm = _run(prefix_cache=cache)
        block = warm.manifest.prefix_cache
        assert block["misses"] == 0
        assert block["hits"] == warm.n_examples
        assert len(cache) == 1

    def test_prefix_tokens_charged_once_per_run(self):
        on = _run(prefix_cache=PromptPrefixCache())
        off = _run(prefix_cache=False)
        block = on.manifest.prefix_cache
        tokens = lambda run: run.manifest.usage["gpt3-175b"]["prompt_tokens"]
        assert tokens(off) - tokens(on) == block["tokens_saved"]

    def test_disabled_prefix_cache_matches_pr5_manifest_shape(self, schema):
        run = _run(prefix_cache=False)
        manifest = run.manifest.to_dict()
        assert manifest["prefix_cache"] is None
        assert validate_manifest(manifest, schema) == []

    def test_zero_shot_has_no_prefix_block(self):
        run = _run(k=0, selection="manual")
        block = run.manifest.prefix_cache
        # k=0 builds an empty prefix: nothing is saved, and the block
        # must not claim otherwise.
        assert block is None or block["tokens_saved"] == 0


class TestExecutorParityThroughEngine:
    def _outcomes(self, **kwargs):
        run = _run(**kwargs)
        return (
            run.predictions,
            run.metric,
            [(r.index, r.error_type, r.stage) for r in run.quarantine],
            run.coverage,
        )

    def test_async_matches_thread_at_any_concurrency(self):
        baseline = self._outcomes(executor="thread", workers=1)
        for executor in ("thread", "async"):
            for workers in (1, 8):
                assert self._outcomes(
                    executor=executor, workers=workers
                ) == baseline

    def test_async_matches_thread_under_faults(self):
        def outcomes(executor, workers):
            return self._outcomes(
                executor=executor, workers=workers, on_error="quarantine",
                fault_plan=FaultPlan("heavy", seed=7),
            )

        baseline = outcomes("thread", 1)
        assert baseline[2]  # the heavy profile must actually quarantine
        assert outcomes("thread", 8) == baseline
        assert outcomes("async", 1) == baseline
        assert outcomes("async", 8) == baseline

    def test_async_manifest_matches_thread_manifest(self, schema):
        def manifest(executor):
            run = _run(executor=executor, workers=4,
                       prefix_cache=PromptPrefixCache())
            data = run.manifest.to_dict()
            assert validate_manifest(data, schema) == []
            # Only timing differs between the cores.
            for volatile in ("phases", "wall_clock_s", "requests"):
                data.pop(volatile, None)
            return data

        assert manifest("async") == manifest("thread")

    def test_async_usage_accounting_matches_thread(self):
        thread = _run(executor="thread", workers=4)
        awaited = _run(executor="async", workers=4)
        assert awaited.manifest.usage == thread.manifest.usage
        assert awaited.manifest.prefix_cache == thread.manifest.prefix_cache
