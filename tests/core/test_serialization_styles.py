"""Tests for the Ditto-style serialization variant."""

import pytest
from hypothesis import given, strategies as st

from repro.core.serialization import SerializationConfig, serialize_row
from repro.fm.parsing import parse_serialized_entity

value = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"),
                           whitelist_characters=" -"),
    max_size=12,
).map(lambda s: " ".join(s.split()))
rows = st.dictionaries(
    st.sampled_from(["name", "city", "price"]),
    st.one_of(st.none(), value),
    min_size=1, max_size=3,
)


class TestDittoStyle:
    def test_rendering(self):
        config = SerializationConfig(style="ditto")
        text = serialize_row({"name": "sony", "price": "199.99"}, config)
        assert text == "COL name VAL sony COL price VAL 199.99"

    def test_null_renders_empty(self):
        config = SerializationConfig(style="ditto")
        assert serialize_row({"a": None}, config) == "COL a VAL "

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            SerializationConfig(style="xml")

    def test_style_survives_with_attributes(self):
        config = SerializationConfig(style="ditto").with_attributes(["name"])
        assert config.style == "ditto"

    @given(rows)
    def test_parser_roundtrip(self, row):
        config = SerializationConfig(style="ditto")
        parsed = parse_serialized_entity(serialize_row(row, config))
        assert parsed is not None
        assert set(parsed) == set(row)
        for attribute, original in row.items():
            assert parsed[attribute] == (original or "")

    def test_end_to_end_matching(self, fm_175b):
        """The FM answers identically-structured questions under either
        serialization style."""
        from repro.core.prompts import (
            EntityMatchingPromptConfig,
            build_entity_matching_prompt,
        )
        from repro.datasets.base import MatchingPair

        pair = MatchingPair(
            {"name": "sony camera DSC-W55"}, {"name": "Sony DSC-W55 camera"},
            False,
        )
        anchor = MatchingPair({"name": "anchor"}, {"name": "anchor"}, True)
        answers = []
        for style in ("colon", "ditto"):
            config = EntityMatchingPromptConfig(
                serialization=SerializationConfig(style=style)
            )
            prompt = build_entity_matching_prompt(pair, [anchor], config)
            answers.append(fm_175b.complete(prompt))
        assert answers == ["Yes", "Yes"]
