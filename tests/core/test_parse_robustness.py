"""Malformed-response robustness for every registered task parser.

A completion that comes back empty, truncated, or garbled must never
escape a parser as a raw ``IndexError``/``KeyError``/``TypeError`` —
either the parser returns a graceful fallback, or the engine's
quarantine-mode wrapper (`_parse_checked`) raises a typed
:class:`~repro.api.retry.ParseError`.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.retry import ParseError
from repro.core.tasks.engine import _parse_checked
from repro.core.tasks.spec import available_tasks, get_task

pytestmark = [pytest.mark.smoke, pytest.mark.chaos]

#: Raw parser errors that indicate a parser assumed well-formed input.
UNTYPED_ERRORS = (IndexError, KeyError, TypeError, AttributeError)

MALFORMED_TEXT = {
    "empty": "",
    "whitespace": "   \n\t  ",
    "truncated": "Yes, the two prod",
    "garbage": "�3f9a�",
    "nul_bytes": "ab\x00cd",
}


@pytest.fixture(params=available_tasks())
def spec(request):
    return get_task(request.param)


class TestRawParsers:
    @pytest.mark.parametrize("text", MALFORMED_TEXT.values(),
                             ids=MALFORMED_TEXT.keys())
    def test_malformed_text_never_raises_untyped(self, spec, text):
        try:
            spec.parse_response(text)
        except ParseError:
            pass  # a typed refusal is acceptable
        except UNTYPED_ERRORS as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"{spec.name}.parse_response({text!r}) leaked "
                f"{type(exc).__name__}: {exc}"
            )

    def test_empty_text_yields_falsy_fallback(self, spec):
        """All shipped parsers degrade to a falsy value on empty input
        (False for yes/no tasks, '' for free-text tasks)."""
        try:
            assert not spec.parse_response("")
        except ParseError:
            pass


class TestParseChecked:
    @pytest.mark.parametrize("response", [None, 42, b"bytes", "", "  \n"],
                             ids=["none", "int", "bytes", "empty", "blank"])
    def test_non_text_and_empty_raise_parse_error(self, spec, response):
        with pytest.raises(ParseError):
            _parse_checked(spec, response)

    def test_garbage_markers_raise_parse_error(self, spec):
        with pytest.raises(ParseError):
            _parse_checked(spec, "Yes� but corrupted")

    def test_clean_text_parses_normally(self, spec):
        clean = "No, they are different."
        assert _parse_checked(spec, clean) == spec.parse_response(clean)

    def test_untyped_parser_exception_is_wrapped(self):
        """A parser that still chokes on clean-looking text surfaces as a
        typed ParseError carrying the original exception as its cause."""
        base = get_task("em")

        def brittle(text):
            return text.split(":")[3]  # IndexError on anything realistic

        spec = dataclasses.replace(base, parse_response=brittle)
        with pytest.raises(ParseError, match="IndexError") as info:
            _parse_checked(spec, "a clean response")
        assert isinstance(info.value.__cause__, IndexError)

    def test_parse_error_from_parser_passes_through(self):
        base = get_task("em")

        def refusing(text):
            raise ParseError("refused")

        spec = dataclasses.replace(base, parse_response=refusing)
        with pytest.raises(ParseError, match="refused"):
            _parse_checked(spec, "a clean response")
