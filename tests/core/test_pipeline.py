"""Tests for the high-level Wrangler API."""

import pytest

from repro.core import Wrangler
from repro.datasets.base import ImputationExample, MatchingPair
from repro.knowledge.medical import OMOP_ATTRIBUTES, SYNTHEA_ATTRIBUTES


@pytest.fixture(scope="module")
def wrangler():
    return Wrangler(model="gpt3-175b")


class TestConstruction:
    def test_from_model_name(self):
        assert Wrangler("gpt3-6.7b").model_name == "gpt3-6.7b"

    def test_from_model_object(self, fm_175b):
        assert Wrangler(fm_175b).model is fm_175b

    def test_rejects_non_models(self):
        with pytest.raises(TypeError):
            Wrangler(model=object())


class TestVerbs:
    def test_match(self, wrangler):
        anchor = MatchingPair({"name": "anchor"}, {"name": "anchor"}, True)
        assert wrangler.match(
            {"name": "golden lotus cafe"}, {"name": "Golden Lotus Cafe"},
            demonstrations=[anchor],
        )
        assert not wrangler.match(
            {"name": "golden lotus cafe"}, {"name": "iron skillet bbq"},
            demonstrations=[anchor],
        )

    def test_impute(self, wrangler):
        answer = wrangler.impute(
            {"name": "blue heron", "phone": "415-775-7036"}, "city"
        )
        assert "san francisco" in answer.casefold()

    def test_impute_with_demonstrations(self, wrangler):
        demos = [ImputationExample(
            row={"name": "x", "phone": "617-111-2222", "city": None},
            attribute="city", answer="boston",
        )]
        answer = wrangler.impute(
            {"name": "y", "phone": "312-555-1234"}, "city", demonstrations=demos
        )
        assert answer == "chicago"

    def test_detect_error_zero_shot_defaults_no(self, wrangler):
        assert not wrangler.detect_error({"city": "boston"}, "city")

    def test_detect_errors_whole_row(self, wrangler):
        verdicts = wrangler.detect_errors({"city": "boston", "state": "ma"})
        assert set(verdicts) == {"city", "state"}

    def test_match_schema(self, wrangler):
        verdict = wrangler.match_schema(SYNTHEA_ATTRIBUTES[0], OMOP_ATTRIBUTES[0])
        assert isinstance(verdict, bool)

    def test_transform_by_example(self, wrangler):
        result = wrangler.transform(
            "Chicago", examples=[("Seattle", "WA"), ("Boston", "MA")]
        )
        assert result == "IL"

    def test_transform_by_instruction(self, wrangler):
        result = wrangler.transform(
            "report.pdf", instruction="Extract the file extension."
        )
        assert result in ("pdf", "report.pdf")  # instruction-following gated


class TestBatchVerbs:
    def test_match_many_agrees_with_match(self, wrangler):
        anchor = MatchingPair({"name": "anchor"}, {"name": "anchor"}, True)
        pairs = [
            ({"name": "golden lotus cafe"}, {"name": "Golden Lotus Cafe"}),
            ({"name": "golden lotus cafe"}, {"name": "iron skillet bbq"}),
        ]
        batch = wrangler.match_many(pairs, demonstrations=[anchor])
        singles = [wrangler.match(l, r, demonstrations=[anchor]) for l, r in pairs]
        assert batch == singles == [True, False]

    def test_match_schema_many_agrees_with_match_schema(self, wrangler):
        pairs = [
            (SYNTHEA_ATTRIBUTES[0], OMOP_ATTRIBUTES[0]),
            (SYNTHEA_ATTRIBUTES[1], OMOP_ATTRIBUTES[1]),
            (SYNTHEA_ATTRIBUTES[0], OMOP_ATTRIBUTES[-1]),
        ]
        batch = wrangler.match_schema_many(pairs)
        assert batch == [wrangler.match_schema(l, r) for l, r in pairs]
        assert all(isinstance(v, bool) for v in batch)

    def test_match_schema_many_with_workers(self, wrangler):
        pairs = [(SYNTHEA_ATTRIBUTES[i], OMOP_ATTRIBUTES[i]) for i in range(4)]
        assert (wrangler.match_schema_many(pairs, workers=3)
                == wrangler.match_schema_many(pairs))

    def test_impute_many_agrees_with_impute(self, wrangler):
        items = [
            ({"name": "blue heron", "phone": "415-775-7036"}, "city"),
            ({"name": "x", "phone": "617-111-2222"}, "city"),
        ]
        batch = wrangler.impute_many(items)
        assert batch == [wrangler.impute(row, attr) for row, attr in items]


class TestSpecDrivenCore:
    def test_run_matches_the_verb(self, wrangler):
        pair = MatchingPair(
            {"name": "golden lotus cafe"}, {"name": "Golden Lotus Cafe"}, False
        )
        anchor = MatchingPair({"name": "anchor"}, {"name": "anchor"}, True)
        assert wrangler.run("entity_matching", pair, [anchor]) == wrangler.match(
            pair.left, pair.right, demonstrations=[anchor]
        )

    def test_run_accepts_aliases(self, wrangler):
        pair = MatchingPair({"name": "a"}, {"name": "b"}, False)
        assert wrangler.run("em", pair) == wrangler.run("entity_matching", pair)

    def test_run_many_preserves_order(self, wrangler):
        examples = [
            ImputationExample(row={"name": "blue heron", "phone": "415-775-7036",
                                   "city": None},
                              attribute="city", answer=""),
            ImputationExample(row={"name": "x", "phone": "617-111-2222",
                                   "city": None},
                              attribute="city", answer=""),
        ]
        answers = wrangler.run_many("imputation", examples)
        assert "san francisco" in answers[0].casefold()
        assert "boston" in answers[1].casefold()

    def test_run_rejects_unknown_task(self, wrangler):
        with pytest.raises(KeyError):
            wrangler.run("sentiment", {"text": "hi"})
