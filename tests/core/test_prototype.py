"""Tests for the §5.1 model prototyper."""

import pytest

from repro.baselines import MagellanMatcher
from repro.core.prototype import ModelPrototyper
from repro.core.tasks.entity_matching import default_prompt_config
from repro.datasets import load_dataset
from repro.datasets.base import MatchingPair


@pytest.fixture(scope="module")
def fodors():
    return load_dataset("fodors_zagats")


@pytest.fixture(scope="module")
def prototyper(fm_175b, fodors):
    demos = fodors.train[:4]
    return ModelPrototyper(
        fm_175b, demonstrations=demos,
        config=default_prompt_config(fodors),
    )


class TestLabeling:
    def test_labels_all_pairs(self, prototyper, fodors):
        pool = fodors.train[:60]
        labeled = prototyper.label(pool)
        assert len(labeled) == 60
        assert prototyper.report.n_pool == 60

    def test_high_agreement_on_easy_data(self, prototyper, fodors):
        prototyper.label(fodors.train[:80])
        assert prototyper.report.agreement_with_gold > 0.9

    def test_confidence_filter_abstains(self, fm_175b, fodors):
        strict = ModelPrototyper(
            fm_175b, demonstrations=fodors.train[:4],
            config=default_prompt_config(fodors), min_confidence=0.99,
        )
        labeled = strict.label(fodors.train[:60])
        assert len(labeled) < 60
        assert strict.report.n_labeled == len(labeled)

    def test_rejects_non_model(self):
        with pytest.raises(TypeError):
            ModelPrototyper(object())


class TestDistillation:
    def test_student_learns_from_machine_labels(self, prototyper, fodors):
        student = prototyper.distill(
            fodors.train,
            student_factory=lambda: MagellanMatcher.for_dataset(fodors),
        )
        predictions = [student.predict(p) for p in fodors.test[:60]]
        labels = [p.label for p in fodors.test[:60]]
        accuracy = sum(p == l for p, l in zip(predictions, labels)) / 60
        assert accuracy > 0.9

    def test_single_class_pool_rejected(self, fm_175b, fodors):
        prototyper = ModelPrototyper(
            fm_175b, demonstrations=fodors.train[:4],
            config=default_prompt_config(fodors),
        )
        obvious_negatives = [
            MatchingPair({"name": f"alpha {i}"}, {"name": f"omega {i + 50}"}, False)
            for i in range(8)
        ]
        with pytest.raises(ValueError):
            prototyper.distill(
                obvious_negatives,
                student_factory=lambda: MagellanMatcher.for_dataset(fodors),
            )
