"""Tests for run manifests: schema, engine telemetry, trace alignment."""

import json
import threading
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core.manifest import (
    MANIFEST_SCHEMA_VERSION,
    PHASE_NAMES,
    RunManifest,
    jsonable,
    validate_manifest,
)
from repro.core.tasks import run_task
from repro.datasets import load_dataset
from repro.api.backends import get_backend

SCHEMA_PATH = (
    Path(__file__).resolve().parents[2] / "schemas" / "run_manifest.schema.json"
)


@pytest.fixture(scope="module")
def schema():
    return json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def em_run():
    """One shared small entity-matching run (string-model route)."""
    return run_task(
        "entity_matching", "gpt3-175b", "fodors_zagats", k=0, max_examples=8
    )


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable(None) is None
        assert jsonable(3) == 3
        assert jsonable("x") == "x"
        assert jsonable(True) is True

    def test_dataclasses_become_dicts(self):
        @dataclass
        class Config:
            sep: str = "."
            k: int = 3

        assert jsonable(Config()) == {"sep": ".", "k": 3}

    def test_containers_recurse(self):
        assert jsonable({"a": (1, 2), "b": [None]}) == {"a": [1, 2], "b": [None]}

    def test_exotic_degrades_to_repr(self):
        value = jsonable(object())
        assert isinstance(value, str) and "object" in value


class TestValidator:
    def test_valid_instance(self, schema):
        manifest = RunManifest(
            task="entity_matching", dataset="d", model="m", k=0,
            selection="manual", split="test", seed=0, workers=1,
            n_examples=1, metric_name="f1", metric=1.0,
            phases={name: 0.0 for name in PHASE_NAMES},
            requests={"n_requests": 1, "n_failures": 0, "n_retries": 0,
                      "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0},
        )
        assert validate_manifest(manifest.to_dict(), schema) == []

    def test_missing_required_key_reported(self, schema):
        instance = {"task": "em"}
        problems = validate_manifest(instance, schema)
        assert any("dataset" in problem for problem in problems)

    def test_wrong_type_reported(self, schema, em_run):
        instance = em_run.manifest.to_dict()
        instance["metric"] = "high"
        problems = validate_manifest(instance, schema)
        assert any("$.metric" in problem for problem in problems)

    def test_null_cache_allowed(self, schema, em_run):
        instance = em_run.manifest.to_dict()
        instance["cache"] = None
        assert validate_manifest(instance, schema) == []

    def test_pre_chaos_manifest_still_validates(self, schema, em_run):
        """The quarantine/degraded/coverage/faults fields are optional:
        manifests written before the chaos harness keep validating."""
        instance = em_run.manifest.to_dict()
        for legacy_absent in ("quarantine", "degraded", "coverage", "faults"):
            instance.pop(legacy_absent, None)
        assert validate_manifest(instance, schema) == []

    def test_quarantine_entries_are_typed(self, schema, em_run):
        instance = em_run.manifest.to_dict()
        instance["degraded"] = True
        instance["coverage"] = 0.875
        instance["quarantine"] = [
            {"index": 3, "error_type": "TimeoutError",
             "error": "injected", "attempts": 3, "stage": "completion"},
        ]
        assert validate_manifest(instance, schema) == []
        instance["quarantine"] = [{"index": "three"}]
        problems = validate_manifest(instance, schema)
        assert problems != []

    def test_faults_section_accepts_object_or_null(self, schema, em_run):
        instance = em_run.manifest.to_dict()
        instance["faults"] = None
        assert validate_manifest(instance, schema) == []
        instance["faults"] = {
            "profile": "ci", "seed": 0,
            "rates": {"rate_limit": 0.04}, "injected": {"rate_limit": 2},
        }
        assert validate_manifest(instance, schema) == []


class TestEngineManifest:
    def test_every_run_carries_a_manifest(self, em_run):
        assert isinstance(em_run.manifest, RunManifest)
        assert em_run.manifest.schema_version == MANIFEST_SCHEMA_VERSION

    def test_matches_checked_in_schema(self, schema, em_run):
        assert validate_manifest(em_run.manifest.to_dict(), schema) == []

    def test_phase_timings_cover_the_run(self, em_run):
        manifest = em_run.manifest
        # "fallback" is emitted only when a degradation ladder ran, and
        # "calibration" only when a cascade calibrated its threshold.
        assert set(manifest.phases) <= set(PHASE_NAMES)
        assert set(PHASE_NAMES) - set(manifest.phases) <= {
            "fallback", "calibration",
        }
        assert all(seconds >= 0.0 for seconds in manifest.phases.values())
        assert manifest.wall_clock_s >= sum(manifest.phases.values()) - 1e-6

    def test_request_and_cache_sections(self, em_run):
        manifest = em_run.manifest
        assert manifest.requests["n_requests"] == manifest.n_examples == 8
        assert manifest.requests["n_failures"] == 0
        assert manifest.cache is not None
        assert manifest.cache["lookups"] == 8
        assert manifest.cost_usd > 0.0
        assert manifest.unknown_price is False
        assert "gpt3-175b" in manifest.usage

    def test_json_round_trip(self, em_run, tmp_path):
        path = tmp_path / "manifest.json"
        em_run.manifest.write(path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == em_run.manifest.to_dict()

    def test_unknown_price_flagged_for_unpriced_backends(self):
        """A model outside the price table must flag, not invent, cost."""
        class FreeBackend:
            name = "free-backend"

            def complete(self, prompt, temperature=0.0, **kwargs):
                return "Yes"

        from repro.api import CompletionClient

        client = CompletionClient(FreeBackend())
        run = run_task("entity_matching", client, "fodors_zagats", k=0,
                       max_examples=4)
        assert run.manifest.cost_usd == 0.0
        assert run.manifest.unknown_price is True


class FlakyModel:
    """Simulator wrapper whose first attempt times out for 1-in-3 prompts.

    Deterministic per prompt within a run: the first call for every third
    distinct prompt raises TimeoutError; the retry (and every later call)
    succeeds with the simulator's answer.
    """

    def __init__(self, model="gpt3-175b", every=3):
        self._fm = get_backend(model)
        self.name = self._fm.name
        self.every = every
        self.timed_out = set()
        self._seen = {}
        self._lock = threading.Lock()

    def complete(self, prompt, temperature=0.0, **kwargs):
        with self._lock:
            index = self._seen.setdefault(prompt, len(self._seen))
            if index % self.every == 0 and prompt not in self.timed_out:
                self.timed_out.add(prompt)
                raise TimeoutError("simulated request timeout")
        return self._fm.complete(prompt, temperature=temperature)


class TestTraceLatencyAlignment:
    def test_trace_records_stay_aligned_under_workers_and_retries(self):
        """Per-example latency must join on the example's *index*, not
        completion order — under workers>1 with retries the two diverge
        (a retried example finishes long after its successors)."""
        dataset = load_dataset("fodors_zagats")
        model = FlakyModel()
        run = run_task("entity_matching", model, dataset, k=0,
                       max_examples=12, workers=4, trace=True)
        clean = run_task(
            "entity_matching", get_backend("gpt3-175b"),
            dataset, k=0, max_examples=12,
        )
        # Retries must not perturb predictions or ordering.
        assert [record.index for record in run.records] == list(range(12))
        assert run.predictions == clean.predictions
        assert model.timed_out  # the flakiness actually fired
        # The latency join is pinned by the backoff floor: a retried
        # example's record carries its wait (the jittered first backoff
        # lands in [0.025s, 0.05s]), a clean one finishes in
        # microseconds.  Misaligned indices would hand some retried
        # example a sub-millisecond latency.
        for record in run.records:
            assert record.latency_s is not None
            if record.prompt in model.timed_out:
                assert record.latency_s >= 0.02
            else:
                assert record.latency_s < 0.02
        manifest = run.manifest
        assert manifest.requests["n_requests"] == 12
        assert manifest.requests["n_retries"] == len(model.timed_out)
        assert manifest.requests["n_failures"] == 0
