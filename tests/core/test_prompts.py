"""Tests for repro.core.prompts — exact template shapes."""

from repro.core.prompts import (
    EntityMatchingPromptConfig,
    ErrorDetectionPromptConfig,
    SchemaMatchingPromptConfig,
    build_entity_matching_prompt,
    build_error_detection_prompt,
    build_imputation_prompt,
    build_schema_matching_prompt,
    build_transformation_prompt,
)
from repro.datasets.base import (
    ErrorExample,
    ImputationExample,
    MatchingPair,
    SchemaPair,
)
from repro.knowledge.medical import SchemaAttribute


class TestEntityMatchingTemplate:
    def test_paper_template_shape(self):
        pair = MatchingPair({"name": "a"}, {"name": "b"}, False)
        prompt = build_entity_matching_prompt(pair, [])
        assert prompt == (
            "Product A is name: a.\n"
            "Product B is name: b.\n"
            "Are Product A and Product B the same?"
        )

    def test_demo_carries_answer(self):
        demo = MatchingPair({"n": "x"}, {"n": "x"}, True)
        query = MatchingPair({"n": "p"}, {"n": "q"}, False)
        prompt = build_entity_matching_prompt(query, [demo])
        blocks = prompt.split("\n\n")
        assert len(blocks) == 2
        assert blocks[0].endswith("the same? Yes")
        assert blocks[1].endswith("the same?")

    def test_instruction_prepended(self):
        config = EntityMatchingPromptConfig(instruction="Decide coreference.")
        pair = MatchingPair({"n": "a"}, {"n": "b"}, False)
        prompt = build_entity_matching_prompt(pair, [], config)
        assert prompt.startswith("Decide coreference.\n\n")

    def test_noun_substitution(self):
        config = EntityMatchingPromptConfig(entity_noun="Song")
        pair = MatchingPair({"n": "a"}, {"n": "b"}, False)
        prompt = build_entity_matching_prompt(pair, [], config)
        assert "Song A is" in prompt and "Are Song A and Song B" in prompt


class TestErrorDetectionTemplate:
    def test_paper_question(self):
        example = ErrorExample({"city": "bxston"}, "city", True)
        prompt = build_error_detection_prompt(example, [])
        assert prompt.endswith("Is there an error in city: bxston?")

    def test_context_line_first(self):
        example = ErrorExample({"city": "bxston", "state": "ma"}, "city", True)
        prompt = build_error_detection_prompt(example, [])
        first_line = prompt.split("\n")[0]
        assert first_line == "city: bxston. state: ma"

    def test_no_context_variant(self):
        config = ErrorDetectionPromptConfig(include_row_context=False)
        example = ErrorExample({"city": "boston"}, "city", False)
        prompt = build_error_detection_prompt(example, [], config)
        assert "\n" not in prompt


class TestImputationTemplate:
    def test_paper_template(self):
        example = ImputationExample(
            {"name": "blue heron", "city": None}, "city", "boston"
        )
        prompt = build_imputation_prompt(example, [])
        assert prompt == "name: blue heron. city?"

    def test_demo_answer_inline(self):
        demo = ImputationExample({"name": "x", "city": None}, "city", "boston")
        query = ImputationExample({"name": "y", "city": None}, "city", "")
        prompt = build_imputation_prompt(query, [demo])
        assert "name: x. city? boston" in prompt


class TestSchemaTemplate:
    A = SchemaAttribute("patients", "birthdate", "date of birth", ("1974-03-02",))
    B = SchemaAttribute("person", "birth_datetime", "birth timestamp", ("1988-01-01",))

    def test_shape(self):
        pair = SchemaPair(self.A, self.B, False)
        prompt = build_schema_matching_prompt(pair, [])
        assert prompt.startswith("Attribute A is patients.birthdate (date of birth)")
        assert "with values like 1974-03-02" in prompt
        assert prompt.endswith("semantically equivalent?")

    def test_samples_suppressible(self):
        config = SchemaMatchingPromptConfig(include_samples=False)
        prompt = build_schema_matching_prompt(SchemaPair(self.A, self.B, False), [], config)
        assert "values like" not in prompt


class TestTransformationTemplate:
    def test_shape(self):
        prompt = build_transformation_prompt("q", [("a", "b")])
        assert prompt == "Input: a\nOutput: b\n\nInput: q\nOutput:"
