"""Tests for repro.core.blocking."""

import pytest

from repro.core.blocking import (
    CandidatePair,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    evaluate_blocking,
)

LEFT = [
    {"name": "golden lotus cafe", "city": "boston"},
    {"name": "iron skillet", "city": "denver"},
    {"name": "blue heron grill", "city": "seattle"},
]
RIGHT = [
    {"name": "the golden lotus", "city": "boston"},
    {"name": "blue heron bar and grill", "city": "seattle"},
    {"name": "dragon palace", "city": "miami"},
]
TRUE_MATCHES = [(0, 0), (2, 1)]


class TestTokenBlocker:
    def test_retains_true_matches(self):
        candidates = TokenBlocker("name").candidates(LEFT, RIGHT)
        report = evaluate_blocking(candidates, TRUE_MATCHES, len(LEFT), len(RIGHT))
        assert report.pair_completeness == 1.0

    def test_prunes_the_cross_product(self):
        candidates = TokenBlocker("name").candidates(LEFT, RIGHT)
        assert len(candidates) < len(LEFT) * len(RIGHT)

    def test_min_shared_tokens_tightens(self):
        loose = TokenBlocker("name", min_shared_tokens=1).candidates(LEFT, RIGHT)
        tight = TokenBlocker("name", min_shared_tokens=2).candidates(LEFT, RIGHT)
        assert len(tight) <= len(loose)

    def test_common_tokens_skipped(self):
        left = [{"name": f"the item {i}"} for i in range(20)]
        right = [{"name": f"the thing {i}"} for i in range(20)]
        blocker = TokenBlocker("name", max_block_size=10)
        candidates = blocker.candidates(left, right)
        # "the" appears in every row and is skipped as a blocking key; the
        # only remaining shared tokens are the distinct numbers, so each
        # row pairs exactly with its same-numbered counterpart.
        assert len(candidates) == 20
        assert all(pair.left_index == pair.right_index for pair in candidates)

    def test_null_values_tolerated(self):
        candidates = TokenBlocker("name").candidates(
            [{"name": None}], [{"name": "x"}]
        )
        assert candidates == []

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TokenBlocker("name", min_shared_tokens=0)

    def test_deterministic_ordering(self):
        a = TokenBlocker("name").candidates(LEFT, RIGHT)
        b = TokenBlocker("name").candidates(LEFT, RIGHT)
        assert a == b


class TestSortedNeighborhood:
    def test_neighbors_paired(self):
        blocker = SortedNeighborhoodBlocker(key=lambda row: row["name"], window=3)
        candidates = blocker.candidates(LEFT, RIGHT)
        report = evaluate_blocking(candidates, TRUE_MATCHES, len(LEFT), len(RIGHT))
        assert report.pair_completeness >= 0.5

    def test_wider_window_more_candidates(self):
        narrow = SortedNeighborhoodBlocker(lambda r: r["name"], window=2)
        wide = SortedNeighborhoodBlocker(lambda r: r["name"], window=6)
        assert len(wide.candidates(LEFT, RIGHT)) >= len(narrow.candidates(LEFT, RIGHT))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker(lambda r: r["name"], window=1)


class TestReport:
    def test_reduction_ratio(self):
        report = evaluate_blocking(
            [CandidatePair(0, 0)], [(0, 0)], n_left=10, n_right=10
        )
        assert report.reduction_ratio == pytest.approx(0.99)
        assert report.pair_completeness == 1.0

    def test_no_true_matches(self):
        report = evaluate_blocking([], [], n_left=1, n_right=1)
        assert report.pair_completeness == 1.0

    def test_blocking_feeds_the_wrangler(self, fm_175b):
        """End to end: block two tables, match the candidates."""
        from repro.core import Wrangler

        wrangler = Wrangler(fm_175b)
        from repro.datasets.base import MatchingPair

        anchor = MatchingPair({"name": "anchor"}, {"name": "anchor"}, True)
        candidates = TokenBlocker("name").candidates(LEFT, RIGHT)
        matched = [
            (pair.left_index, pair.right_index)
            for pair in candidates
            if wrangler.match(LEFT[pair.left_index], RIGHT[pair.right_index],
                              demonstrations=[anchor])
        ]
        assert set(matched) == set(TRUE_MATCHES)
