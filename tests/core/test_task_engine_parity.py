"""Parity pins: the generic engine must reproduce the seed runners exactly.

Every expected value below was captured by running the five per-task
runner implementations from the pre-registry tree with the same model,
seeds and subsampling.  Predictions are pinned whole — as a bitstring
for the binary tasks and a digest for the free-text tasks — so any
drift in prompt construction, demonstration selection, response parsing
or scoring shows up as a changed string, not just a nudged metric.
"""

import hashlib

import pytest

from repro.core.tasks import (
    run_entity_matching,
    run_error_detection,
    run_imputation,
    run_schema_matching,
    run_task,
    run_transformation,
)
from repro.datasets import load_dataset


def bits(predictions) -> str:
    return "".join("1" if p else "0" for p in predictions)


def strhash(predictions) -> str:
    return hashlib.sha256("\x1f".join(predictions).encode()).hexdigest()[:16]


#: (wrapper, alias, model, dataset, kwargs, (k, n, metric, bits(predictions)))
BINARY_PINS = [
    pytest.param(
        run_entity_matching, "em", "gpt3-175b", "fodors_zagats",
        dict(k=0, max_examples=40),
        (0, 40, 0.9523809524, "1001000000001000000110000000001110010100"),
        id="em_fodors_k0",
    ),
    pytest.param(
        run_entity_matching, "em", "gpt3-175b", "beer",
        dict(k=4, selection="manual", max_examples=30),
        (4, 30, 0.9090909091, "000001000000000001001000110000"),
        id="em_beer_k4_manual",
    ),
    pytest.param(
        run_error_detection, "ed", "gpt3-175b", "adult",
        dict(k=6, selection="random", max_examples=120),
        (6, 120, 0.5714285714,
         "000000000000011000000000000001000000000000000000000000000000"
         "000000000000000000000000000010000000000000000000100000000000"),
        id="ed_adult_k6_random",
    ),
    pytest.param(
        run_error_detection, "ed", "gpt3-175b", "hospital",
        dict(k=4, selection="manual", max_examples=60),
        (4, 60, 1.0, "000000000001000000000000010010000000010000100000000000000000"),
        id="ed_hospital_k4_manual",
    ),
    pytest.param(
        run_schema_matching, "sm", "gpt3-175b", "synthea",
        dict(k=3, selection="manual"),
        (3, 52, 0.5263157895,
         "1111010110100000101101001010010000000001100111011001"),
        id="sm_synthea_k3_manual",
    ),
    pytest.param(
        run_schema_matching, "sm", "gpt3-175b", "synthea",
        dict(k=0),
        (0, 52, 0.0, "0" * 52),
        id="sm_synthea_k0",
    ),
]

#: (wrapper, alias, model, dataset, kwargs, (k, n, metric, strhash(predictions)))
FREETEXT_PINS = [
    pytest.param(
        run_imputation, "di", "gpt3-175b", "restaurant",
        dict(k=0, max_examples=40),
        (0, 40, 0.65, "c0bd60253376e128"),
        id="di_restaurant_k0",
    ),
    pytest.param(
        run_imputation, "di", "gpt3-6.7b", "buy",
        dict(k=10, selection="manual", max_examples=60),
        (10, 60, 0.8666666667, "ac27058661b8a92f"),
        id="di_buy_k10_manual_6.7b",
    ),
]

#: (dataset, k, metric, per-case accuracies in case order)
TRANSFORMATION_PINS = [
    pytest.param(
        "bing_querylogs", 0, 0.2361111111,
        {"city_to_state": 0.0, "state_to_abbr": 0.0, "month_to_number": 0.0,
         "month_to_abbrev": 0.0, "month_abbrev_expand": 0.125,
         "city_to_area_code": 0.0, "zip_to_city": 0.0,
         "us_textual_to_iso": 1.0, "drop_decimal": 1.0},
        id="dt_bing_k0",
    ),
    pytest.param(
        "stackoverflow", 3, 0.7788461538,
        {"flip_comma_name": 1.0, "url_to_domain": 0.875,
         "iso_to_us_date": 0.75, "file_extension": 0.5,
         "snake_to_title": 1.0, "normalize_phone": 0.0, "zero_pad": 0.875,
         "dash_middle": 0.75, "strip_currency": 0.625, "name_initials": 1.0,
         "textual_date_to_iso": 0.875, "weekday_expand": 1.0,
         "quote_and_comma": 0.875},
        id="dt_stackoverflow_k3",
    ),
]


def _fingerprint(run, digest):
    return (run.k, run.n_examples, round(run.metric, 10), digest(run.predictions))


class TestBinaryTaskParity:
    @pytest.mark.smoke
    @pytest.mark.parametrize("wrapper,alias,model,dataset_name,kwargs,expected",
                             BINARY_PINS)
    def test_pinned(self, wrapper, alias, model, dataset_name, kwargs, expected):
        run = wrapper(model, load_dataset(dataset_name), **kwargs)
        assert _fingerprint(run, bits) == expected

    @pytest.mark.parametrize("wrapper,alias,model,dataset_name,kwargs,expected",
                             BINARY_PINS)
    def test_registry_route_identical(self, wrapper, alias, model,
                                      dataset_name, kwargs, expected):
        """``run_task`` by alias + string names hits the exact same pins."""
        run = run_task(alias, model, dataset_name, **kwargs)
        assert _fingerprint(run, bits) == expected


class TestFreeTextTaskParity:
    @pytest.mark.parametrize("wrapper,alias,model,dataset_name,kwargs,expected",
                             FREETEXT_PINS)
    def test_pinned(self, wrapper, alias, model, dataset_name, kwargs, expected):
        run = wrapper(model, load_dataset(dataset_name), **kwargs)
        assert _fingerprint(run, strhash) == expected

    @pytest.mark.parametrize("wrapper,alias,model,dataset_name,kwargs,expected",
                             FREETEXT_PINS)
    def test_registry_route_identical(self, wrapper, alias, model,
                                      dataset_name, kwargs, expected):
        run = run_task(alias, model, dataset_name, **kwargs)
        assert _fingerprint(run, strhash) == expected


class TestTransformationParity:
    @pytest.mark.parametrize("dataset_name,k,metric,per_case",
                             TRANSFORMATION_PINS)
    def test_pinned(self, fm_175b, dataset_name, k, metric, per_case):
        run = run_transformation(fm_175b, load_dataset(dataset_name), k=k)
        assert round(run.metric, 10) == metric
        assert {name: round(score, 10)
                for name, score in run.details["per_case"].items()} == per_case

    @pytest.mark.parametrize("dataset_name,k,metric,per_case",
                             TRANSFORMATION_PINS)
    def test_registry_route_identical(self, fm_175b, dataset_name, k, metric,
                                      per_case):
        run = run_task("dt", fm_175b, dataset_name, k=k)
        assert round(run.metric, 10) == metric
        assert run.details["per_case"].keys() == per_case.keys()


class TestParallelParity:
    def test_workers_do_not_change_predictions(self, fm_175b):
        dataset = load_dataset("fodors_zagats")
        serial = run_entity_matching(fm_175b, dataset, k=0, max_examples=40)
        threaded = run_entity_matching(fm_175b, dataset, k=0, max_examples=40,
                                       workers=4)
        assert threaded.predictions == serial.predictions
        assert threaded.metric == serial.metric
