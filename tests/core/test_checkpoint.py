"""The append-only run journal: record, replay, resume, mismatch."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import (
    CheckpointCorruptionWarning,
    CheckpointMismatchError,
    RunCheckpoint,
    _record_crc,
    prompt_sha,
    run_fingerprint,
)

pytestmark = [pytest.mark.smoke, pytest.mark.chaos]

CONFIG = {"task": "em", "dataset": "d", "k": 0, "seed": 0}


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = run_fingerprint({"x": 1, "y": 2})
        b = run_fingerprint({"y": 2, "x": 1})
        assert a == b

    def test_differs_on_any_field(self):
        assert run_fingerprint(CONFIG) != run_fingerprint({**CONFIG, "k": 1})

    def test_tolerates_unserializable_values(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert run_fingerprint({"v": Odd()}) == run_fingerprint({"v": Odd()})


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        with RunCheckpoint(path, fp) as journal:
            journal.record_example(0, "prompt zero", "resp zero")
            journal.record_example(2, "prompt two", "resp two")
            journal.record_quarantine(1, "TimeoutError", "injected", 3)
        resumed = RunCheckpoint(path, fp)
        assert resumed.response_for(0, "prompt zero") == "resp zero"
        assert resumed.response_for(2, "prompt two") == "resp two"
        assert resumed.quarantined[1]["error_type"] == "TimeoutError"
        assert resumed.verify_prompts(["prompt zero", "x", "prompt two"]) == 2
        resumed.close()

    def test_prompt_mismatch_forces_rerun(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        with RunCheckpoint(path, fp) as journal:
            journal.record_example(0, "original prompt", "resp")
        resumed = RunCheckpoint(path, fp)
        assert resumed.response_for(0, "a different prompt") is None
        resumed.close()

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunCheckpoint(path, run_fingerprint(CONFIG)).close()
        other = run_fingerprint({**CONFIG, "k": 3})
        with pytest.raises(CheckpointMismatchError, match="different"):
            RunCheckpoint(path, other)

    def test_non_journal_file_is_refused(self, tmp_path):
        path = tmp_path / "notes.jsonl"
        path.write_text('{"type": "something-else"}\n', encoding="utf-8")
        with pytest.raises(CheckpointMismatchError, match="no header"):
            RunCheckpoint(path, run_fingerprint(CONFIG))

    def test_trailing_partial_line_is_tolerated(self, tmp_path):
        """A kill mid-append leaves a torn last line; loading must drop
        it (that example re-runs) instead of crashing."""
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        with RunCheckpoint(path, fp) as journal:
            journal.record_example(0, "p0", "r0")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "example", "index": 1, "resp')
        resumed = RunCheckpoint(path, fp)
        assert resumed.response_for(0, "p0") == "r0"
        assert resumed.response_for(1, "p1") is None
        resumed.close()

    def test_unknown_record_types_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        RunCheckpoint(path, fp).close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "future-extension", "data": 1}\n')
        resumed = RunCheckpoint(path, fp)
        assert resumed.completed == {}
        resumed.close()

    def test_lines_are_valid_json_with_prompt_sha(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunCheckpoint(path, run_fingerprint(CONFIG)) as journal:
            journal.record_example(5, "the prompt", "the response")
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert lines[0]["type"] == "header"
        body = {
            "type": "example",
            "index": 5,
            "prompt_sha": prompt_sha("the prompt"),
            "response": "the response",
        }
        assert lines[1] == {**body, "crc": _record_crc(body)}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "run.jsonl"
        with RunCheckpoint(path, run_fingerprint(CONFIG)) as journal:
            journal.record_example(0, "p", "r")
        assert path.exists()


class TestDurability:
    """CRC-per-line + corrupt-record recovery + opt-in fsync."""

    def test_corrupt_midfile_line_is_skipped_with_warning(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        with RunCheckpoint(path, fp) as journal:
            journal.record_example(0, "p0", "r0")
            journal.record_example(1, "p1", "r1")
        lines = path.read_text(encoding="utf-8").splitlines()
        # Mangle the *middle* record (index 0's example), keep the rest.
        lines[1] = lines[1][: len(lines[1]) // 2] + "\x00garbage"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(CheckpointCorruptionWarning, match="skipped"):
            resumed = RunCheckpoint(path, fp)
        assert resumed.response_for(0, "p0") is None  # re-runs
        assert resumed.response_for(1, "p1") == "r1"  # survives
        resumed.close()

    def test_crc_mismatch_is_skipped_with_warning(self, tmp_path):
        """A bit-rotted but still-parseable record must not be trusted."""
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        with RunCheckpoint(path, fp) as journal:
            journal.record_example(0, "p0", "r0")
            journal.record_example(1, "p1", "r1")
        lines = path.read_text(encoding="utf-8").splitlines()
        rotted = json.loads(lines[1])
        rotted["response"] = "r0-flipped-bit"  # payload changed, crc stale
        lines[1] = json.dumps(rotted, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(CheckpointCorruptionWarning, match="CRC mismatch"):
            resumed = RunCheckpoint(path, fp)
        assert resumed.response_for(0, "p0") is None
        assert resumed.response_for(1, "p1") == "r1"
        resumed.close()

    def test_pre_crc_journals_still_load(self, tmp_path):
        """Journals written before the CRC field existed load unchanged."""
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        header = {"type": "header", "version": 1, "fingerprint": fp, "meta": {}}
        old = {
            "type": "example",
            "index": 0,
            "prompt_sha": prompt_sha("p0"),
            "response": "r0",
        }
        path.write_text(
            json.dumps(header) + "\n" + json.dumps(old) + "\n",
            encoding="utf-8",
        )
        resumed = RunCheckpoint(path, fp)
        assert resumed.response_for(0, "p0") == "r0"
        resumed.close()

    def test_fsync_journal_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint(CONFIG)
        with RunCheckpoint(path, fp, fsync=True) as journal:
            journal.record_example(0, "p0", "r0")
        resumed = RunCheckpoint(path, fp)
        assert resumed.response_for(0, "p0") == "r0"
        resumed.close()
