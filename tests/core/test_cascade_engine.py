"""Pinned guarantees of the confidence-routed cost-aware cascade.

The acceptance tests of cheapest-tier-first serving:

* cascade decisions are **byte-identical** at ``workers=1`` and
  ``workers=8``, and across the thread and async executor cores — same
  predictions, same per-tier serving split, same escalation set,
* escalation accounting adds up: every pending example is tried on the
  cheapest tier, escalated examples are charged on every tier they
  touched, and nothing is double-counted,
* ``threshold=0`` serves everything from the cheapest tier while a
  threshold above 1.0 reproduces the primary-only run's predictions
  exactly (the cascade can always be dialed back to the baseline),
* per-task calibration picks per-tier thresholds whose composed
  validation metric stays within the policy's quality budget of the
  primary-only reference,
* the manifest's ``cascade`` block validates against the checked-in
  schema, and with the knob off the run matches the PR 6 shape exactly.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.api import CascadePolicy, CompletionClient
from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task
from repro.datasets import load_dataset

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "schemas"
    / "run_manifest.schema.json"
)

MAX_EXAMPLES = 40
THRESHOLD = 0.9  # empirically mid-range for walmart_amazon's cheap tier


@pytest.fixture(scope="module")
def walmart():
    return load_dataset("walmart_amazon")


@pytest.fixture(scope="module")
def schema():
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def _run(dataset, workers=1, cascade=True, threshold=THRESHOLD, **kwargs):
    if cascade and not isinstance(cascade, CascadePolicy):
        cascade = CascadePolicy(threshold=threshold)
    return run_task(
        "em", "gpt3-175b", dataset, k=4, selection="random",
        max_examples=MAX_EXAMPLES, workers=workers,
        cascade=cascade or None, **kwargs,
    )


class TestCascadePolicy:
    def test_parse_tier_string(self):
        policy = CascadePolicy.parse("gpt3-1.3b,gpt3-6.7b", threshold=0.7)
        assert policy.tiers == ("gpt3-1.3b", "gpt3-6.7b")
        assert policy.threshold == 0.7

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CascadePolicy(tiers=())
        with pytest.raises(ValueError):
            CascadePolicy(threshold=2.5)
        with pytest.raises(ValueError):
            CascadePolicy(spread=-0.1)

    def test_should_escalate_is_pure_and_seeded(self):
        policy = CascadePolicy(threshold=0.8, spread=0.2, seed=7)
        draws = [
            policy.effective_threshold("prompt-a", 0.8) for _ in range(3)
        ]
        assert len(set(draws)) == 1  # same prompt, same jitter
        assert policy.effective_threshold(
            "prompt-b", 0.8
        ) != pytest.approx(draws[0])
        assert policy.should_escalate("p", 0.1, 0.8)
        assert not policy.should_escalate("p", 0.99, 0.8)

    def test_unresolved_threshold_raises(self):
        with pytest.raises(ValueError):
            CascadePolicy().should_escalate("p", 0.5)


class TestCascadeDeterminism:
    def test_workers_1_vs_8_byte_identical(self, walmart):
        serial = _run(walmart, workers=1)
        fanned = _run(walmart, workers=8)
        assert serial.predictions == fanned.predictions
        assert serial.metric == fanned.metric
        casc_serial = serial.manifest.cascade
        casc_fanned = fanned.manifest.cascade
        assert casc_serial["served_by_tier"] == casc_fanned["served_by_tier"]
        assert casc_serial["escalated"] == casc_fanned["escalated"]
        assert (
            casc_serial["backend_calls_by_tier"]
            == casc_fanned["backend_calls_by_tier"]
        )

    def test_thread_vs_async_executor_identical(self, walmart):
        threaded = _run(walmart, workers=4, executor="thread")
        asynced = _run(walmart, workers=4, executor="async")
        assert threaded.predictions == asynced.predictions
        assert (
            threaded.manifest.cascade["served_by_tier"]
            == asynced.manifest.cascade["served_by_tier"]
        )
        assert (
            threaded.manifest.cascade["escalated"]
            == asynced.manifest.cascade["escalated"]
        )

    def test_escalation_is_mid_range_at_pinned_threshold(self, walmart):
        run = _run(walmart, workers=4)
        cascade = run.manifest.cascade
        assert 0 < cascade["escalated"] < MAX_EXAMPLES
        assert 0.0 < cascade["escalation_rate"] < 1.0


class TestEscalationAccounting:
    def test_backend_calls_add_up(self, walmart):
        run = _run(walmart, workers=4)
        cascade = run.manifest.cascade
        calls = cascade["backend_calls_by_tier"]
        served = cascade["served_by_tier"]
        tiers = cascade["tiers"]
        # Every pending example is tried on the cheapest tier exactly once.
        assert calls[tiers[0]] == MAX_EXAMPLES
        # Each tier serves at most what it was asked; calls at tier i+1
        # equal the examples tier i escalated (charged on both tiers,
        # never double-counted within one tier).
        for depth in range(1, len(tiers)):
            expected = calls[tiers[depth - 1]] - served[tiers[depth - 1]]
            assert calls[tiers[depth]] == expected
        assert sum(served.values()) == MAX_EXAMPLES
        assert cascade["escalated"] == MAX_EXAMPLES - served[tiers[0]]

    def test_escalated_examples_charged_on_every_tier_touched(self, walmart):
        client = CompletionClient("gpt3-175b")
        run = run_task(
            "em", client, walmart, k=4, selection="random",
            max_examples=MAX_EXAMPLES, workers=4,
            cascade=CascadePolicy(threshold=THRESHOLD),
        )
        cascade = run.manifest.cascade
        usage = run.manifest.usage
        for tier, calls in cascade["backend_calls_by_tier"].items():
            if calls:
                assert usage[tier]["n_requests"] >= calls


class TestThresholdExtremes:
    def test_zero_threshold_serves_everything_from_cheapest(self, walmart):
        run = _run(walmart, threshold=0.0)
        cascade = run.manifest.cascade
        assert cascade["served_by_tier"]["gpt3-1.3b"] == MAX_EXAMPLES
        assert cascade["escalated"] == 0
        assert cascade["escalation_rate"] == 0.0

    def test_above_one_threshold_reproduces_primary_only_run(self, walmart):
        baseline = run_task(
            "em", "gpt3-175b", walmart, k=4, selection="random",
            max_examples=MAX_EXAMPLES, workers=4,
        )
        escalate_all = _run(walmart, threshold=1.5)
        assert escalate_all.predictions == baseline.predictions
        assert escalate_all.metric == baseline.metric
        cascade = escalate_all.manifest.cascade
        assert cascade["served_by_tier"]["gpt3-175b"] == MAX_EXAMPLES
        assert cascade["escalation_rate"] == 1.0


class TestCalibration:
    def test_calibrated_run_reports_reference_and_stays_in_budget(
        self, walmart
    ):
        run = _run(walmart, cascade=CascadePolicy(max_quality_loss=0.01))
        cascade = run.manifest.cascade
        assert cascade["calibrated"] is True
        assert cascade["threshold"] is None  # no fixed knob was given
        assert len(cascade["thresholds"]) == len(cascade["tiers"]) - 1
        assert all(
            0.0 <= value <= 2.0 for value in cascade["thresholds"]
        )
        assert cascade["reference_metric"] is not None
        assert cascade["validation_metric"] is not None
        assert (
            cascade["validation_metric"]
            >= cascade["reference_metric"] - 0.01 - 1e-9
        )
        assert "calibration" in run.manifest.phases

    def test_fixed_threshold_skips_calibration(self, walmart):
        run = _run(walmart)
        assert run.manifest.cascade["calibrated"] is False
        assert "calibration" not in run.manifest.phases


class TestManifestAndGuards:
    def test_cascade_block_validates_against_schema(self, walmart, schema):
        run = _run(walmart, workers=4)
        assert validate_manifest(run.manifest.to_dict(), schema) == []

    def test_cost_estimates_present_and_cheaper_than_baseline(self, walmart):
        run = run_task(
            "em", CompletionClient("gpt3-175b"), walmart, k=4,
            selection="random", max_examples=MAX_EXAMPLES, workers=4,
            cascade=CascadePolicy(threshold=THRESHOLD),
        )
        cascade = run.manifest.cascade
        assert cascade["est_baseline_cost_usd"] > 0.0
        assert 0.0 < cascade["est_cost_usd"] < cascade["est_baseline_cost_usd"]
        assert 0.0 < cascade["est_savings_rate"] < 1.0

    def test_cascade_rejects_checkpoint_resume(self, walmart, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            _run(walmart, checkpoint=tmp_path / "journal.jsonl")

    def test_defaults_off_matches_pr6_shape(self, walmart):
        run = run_task(
            "em", "gpt3-175b", walmart, k=4, selection="random",
            max_examples=MAX_EXAMPLES, workers=4,
        )
        assert run.manifest.cascade is None
        assert "calibration" not in run.manifest.phases
        assert run.manifest.served_by_tier is None
