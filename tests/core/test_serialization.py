"""Tests for repro.core.serialization."""

from hypothesis import given, strategies as st

from repro.core.serialization import SerializationConfig, serialize_row
from repro.fm.parsing import parse_serialized_entity

attr_name = st.sampled_from(["name", "city", "phone", "Beer Name", "modelno"])
attr_value = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"),
                               whitelist_characters=" -"),
        max_size=15,
    ).map(lambda s: " ".join(s.split())),
)
rows = st.dictionaries(attr_name, attr_value, min_size=1, max_size=4)


class TestSerializeRow:
    def test_paper_format(self):
        text = serialize_row({"name": "pcanywhere 11.0", "price": None})
        assert text == "name: pcanywhere 11.0. price: "

    def test_null_is_empty_string(self):
        assert serialize_row({"a": None}) == "a: "

    def test_attribute_subselection(self):
        config = SerializationConfig(attributes=("city",))
        assert serialize_row({"name": "x", "city": "boston"}, config) == "city: boston"

    def test_subselection_order_respected(self):
        config = SerializationConfig(attributes=("b", "a"))
        assert serialize_row({"a": "1", "b": "2"}, config) == "b: 2. a: 1"

    def test_missing_selected_attribute_serializes_empty(self):
        config = SerializationConfig(attributes=("ghost",))
        assert serialize_row({"name": "x"}, config) == "ghost: "

    def test_without_attribute_names(self):
        config = SerializationConfig(include_attribute_names=False)
        assert serialize_row({"a": "x", "b": "y"}, config) == "x. y"

    def test_without_names_skips_nulls(self):
        config = SerializationConfig(include_attribute_names=False)
        assert serialize_row({"a": "x", "b": None}, config) == "x"

    def test_newlines_collapsed(self):
        assert serialize_row({"a": "line\nbreak"}) == "a: line break"

    def test_with_attributes_builder(self):
        config = SerializationConfig().with_attributes(["a"])
        assert config.attributes == ("a",)
        assert SerializationConfig(attributes=("x",)).with_attributes(None).attributes is None


class TestRoundTripWithParser:
    """The serializer and the FM's prompt parser must agree."""

    @given(rows)
    def test_parse_recovers_attributes(self, row):
        text = serialize_row(row)
        parsed = parse_serialized_entity(text)
        assert parsed is not None
        assert set(parsed) == set(row)

    @given(rows)
    def test_parse_recovers_simple_values(self, row):
        text = serialize_row(row)
        parsed = parse_serialized_entity(text)
        for attribute, value in row.items():
            expected = "" if value is None else value
            # The parser may strip a trailing period; these generated
            # values have none, so recovery must be exact.
            assert parsed[attribute] == expected
