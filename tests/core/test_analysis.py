"""Tests for the error-analysis tooling."""

import pytest

from repro.core.analysis import (
    analyze_error_detection,
    analyze_imputation,
    analyze_matching,
)
from repro.core.tasks import (
    run_entity_matching,
    run_error_detection,
    run_imputation,
)
from repro.datasets import load_dataset


class TestMatchingAnalysis:
    @pytest.fixture(scope="class")
    def run_and_pairs(self, request):
        fm = request.getfixturevalue("fm_175b")
        dataset = load_dataset("amazon_google")
        pairs = dataset.test[:80]
        run = run_entity_matching(fm, dataset, k=10, selection="manual",
                                  max_examples=80)
        return run, pairs

    def test_buckets_sum_to_confusions(self, run_and_pairs):
        run, pairs = run_and_pairs
        breakdown = analyze_matching(run, pairs)
        expected = sum(
            1 for p, pair in zip(run.predictions, pairs) if p != pair.label
        )
        assert breakdown.n_errors == expected

    def test_summary_renders(self, run_and_pairs):
        run, pairs = run_and_pairs
        text = analyze_matching(run, pairs).summary()
        assert "errors over 80 examples" in text

    def test_length_mismatch_rejected(self, run_and_pairs):
        run, pairs = run_and_pairs
        with pytest.raises(ValueError):
            analyze_matching(run, pairs[:-1])


class TestErrorDetectionAnalysis:
    def test_attribute_attribution(self, fm_67b):
        dataset = load_dataset("hospital")
        run = run_error_detection(fm_67b, dataset, k=10, selection="manual",
                                  max_examples=300)
        breakdown = analyze_error_detection(run, dataset.test[:300])
        # The 6.7B model misses typos; the FNs must carry attribute names.
        assert breakdown.false_negatives
        assert sum(breakdown.by_attribute.values()) == breakdown.n_errors


class TestImputationAnalysis:
    def test_wrong_values_listed(self, fm_13b):
        dataset = load_dataset("restaurant")
        run = run_imputation(fm_13b, dataset, k=0)
        breakdown = analyze_imputation(run, dataset.test)
        assert breakdown.wrong_values  # 1.3B gets plenty wrong
        assert "->" in breakdown.wrong_values[0]

    def test_perfect_run_is_clean(self, fm_175b):
        dataset = load_dataset("buy")
        run = run_imputation(fm_175b, dataset, k=10, selection="manual",
                             max_examples=40)
        breakdown = analyze_imputation(run, dataset.test[:40])
        assert breakdown.n_errors == run.n_examples - int(
            run.metric * run.n_examples + 0.5
        )
