"""Tests for the task runners (with the simulated FM as the model)."""

import pytest

from repro.core.tasks import (
    parse_yes_no,
    run_entity_matching,
    run_error_detection,
    run_imputation,
    run_schema_matching,
    run_transformation,
)
from repro.core.tasks.common import subsample
from repro.datasets import load_dataset


class TestParseYesNo:
    @pytest.mark.parametrize("text,expected", [
        ("Yes", True), ("yes!", True), (" YES", True),
        ("No", False), ("no.", False),
        ("I'm not sure.", False),   # the paper's default-No rule
        ("", False),
    ])
    def test_cases(self, text, expected):
        assert parse_yes_no(text) is expected


class TestSubsample:
    def test_caps(self):
        assert subsample([1, 2, 3], 2) == [1, 2]

    def test_none_means_all(self):
        assert subsample([1, 2], None) == [1, 2]

    def test_limit_above_length(self):
        assert subsample([1], 10) == [1]


class TestEntityMatchingRunner:
    @pytest.mark.smoke
    def test_zero_shot_run(self, fm_175b):
        dataset = load_dataset("fodors_zagats")
        run = run_entity_matching(fm_175b, dataset, k=0, max_examples=40)
        assert run.task == "entity_matching"
        assert run.k == 0
        assert run.n_examples == 40
        assert 0.0 <= run.metric <= 1.0
        assert run.metric_name == "f1"

    def test_few_shot_selects_k_demos(self, fm_175b):
        dataset = load_dataset("beer")
        run = run_entity_matching(
            fm_175b, dataset, k=4, selection="random", max_examples=30
        )
        assert run.k == 4

    def test_unknown_selection_rejected(self, fm_175b):
        dataset = load_dataset("beer")
        with pytest.raises(ValueError):
            run_entity_matching(fm_175b, dataset, k=2, selection="psychic")

    def test_model_name_recorded(self, fm_175b):
        dataset = load_dataset("beer")
        run = run_entity_matching(fm_175b, dataset, k=0, max_examples=10)
        assert run.model == "gpt3-175b"

    def test_describe(self, fm_175b):
        dataset = load_dataset("beer")
        run = run_entity_matching(fm_175b, dataset, k=0, max_examples=10)
        assert "entity_matching/beer" in run.describe()

    def test_duck_typed_model(self):
        class AlwaysNo:
            def complete(self, prompt, **kwargs):
                return "No"

        dataset = load_dataset("beer")
        run = run_entity_matching(AlwaysNo(), dataset, k=0, max_examples=20)
        assert run.metric == 0.0  # no true positives


class TestImputationRunner:
    def test_accuracy_metric(self, fm_175b):
        dataset = load_dataset("buy")
        run = run_imputation(fm_175b, dataset, k=0, max_examples=40)
        assert run.metric_name == "accuracy"
        assert run.metric > 0.5

    def test_few_shot_at_least_zero_shot_on_buy(self, fm_175b):
        dataset = load_dataset("buy")
        zero = run_imputation(fm_175b, dataset, k=0, max_examples=60)
        few = run_imputation(fm_175b, dataset, k=10, selection="manual",
                             max_examples=60)
        assert few.metric >= zero.metric


class TestErrorDetectionRunner:
    def test_runs(self, fm_175b):
        dataset = load_dataset("adult")
        run = run_error_detection(fm_175b, dataset, k=6, selection="random",
                                  max_examples=120)
        assert run.task == "error_detection"
        assert run.metric > 0.5


class TestSchemaRunner:
    def test_runs(self, fm_175b):
        dataset = load_dataset("synthea")
        run = run_schema_matching(fm_175b, dataset, k=3, selection="manual")
        assert run.task == "schema_matching"
        assert 0.0 <= run.metric <= 1.0


class TestTransformationRunner:
    def test_per_case_details(self, fm_175b):
        dataset = load_dataset("bing_querylogs")
        run = run_transformation(fm_175b, dataset, k=3)
        assert set(run.details["per_case"]) == {c.name for c in dataset.cases}
        assert run.n_examples == dataset.n_tests

    def test_zero_shot_uses_instruction(self, fm_175b):
        dataset = load_dataset("bing_querylogs")
        run = run_transformation(fm_175b, dataset, k=0)
        assert run.metric > 0.0  # instructions rescue some cases
