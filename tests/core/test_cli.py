"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import _parse_examples, _parse_row, main

SCHEMA_PATH = (
    Path(__file__).resolve().parents[2] / "schemas" / "run_manifest.schema.json"
)


@pytest.fixture()
def manifest_schema():
    return json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))


@pytest.fixture()
def clean_default_cache():
    """--cache installs a process-wide default; never leak it to other
    tests."""
    from repro.api import set_default_cache

    yield
    set_default_cache(None)


class TestParsers:
    def test_parse_row(self):
        assert _parse_row("name=blue heron, city=boston") == {
            "name": "blue heron", "city": "boston",
        }

    def test_parse_row_rejects_garbage(self):
        with pytest.raises(SystemExit):
            _parse_row("no-equals-sign")

    def test_parse_examples(self):
        assert _parse_examples("Seattle=WA; Boston=MA") == [
            ("Seattle", "WA"), ("Boston", "MA"),
        ]


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "walmart_amazon" in out
        assert "transformation" in out

    def test_match(self, capsys):
        code = main([
            "match",
            "--left", "name=sony camera DSC-W55",
            "--right", "name=canon printer LBP-6030",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip() in ("Yes", "No")

    def test_impute(self, capsys):
        main(["impute", "--row", "name=x,phone=617-111-2222",
              "--attribute", "city"])
        assert "boston" in capsys.readouterr().out.casefold()

    def test_repair(self, capsys):
        main(["repair", "--row", "city=bxston,state=ma", "--attribute", "city"])
        assert capsys.readouterr().out.strip() == "boston"

    def test_transform(self, capsys):
        main(["transform", "--value", "Chicago",
              "--examples", "Seattle=WA;Boston=MA"])
        assert capsys.readouterr().out.strip() == "IL"

    def test_probe(self, capsys):
        main(["probe"])
        assert "gpt3-175b" in capsys.readouterr().out

    def test_bench_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["bench", "tableX"])

    def test_bench_known_set_comes_from_the_registry(self):
        from repro.bench import available_experiments

        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "tableX"])
        for name in available_experiments():
            assert name in str(excinfo.value)

    def test_bench_runs_table6(self, capsys):
        assert main(["bench", "table6"]) == 0
        assert "Encoded functional dependencies" in capsys.readouterr().out

    def test_backends_lists_the_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("gpt3-1.3b", "gpt3-6.7b", "gpt3-175b"):
            assert name in out
        assert "$0.0200/1k" in out
        assert "175B" in out

    def test_run_cascade_flag_end_to_end(
        self, capsys, tmp_path, manifest_schema
    ):
        from repro.core.manifest import validate_manifest

        path = tmp_path / "cascade.json"
        assert main([
            "run", "em", "walmart_amazon", "--k", "4",
            "--selection", "random", "--max-examples", "20",
            "--workers", "4", "--cascade",
            "--cascade-threshold", "0.9", "--manifest", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cascade: threshold=0.900" in out
        manifest = json.loads(path.read_text(encoding="utf-8"))
        assert validate_manifest(manifest, manifest_schema) == []
        assert manifest["cascade"]["threshold"] == 0.9
        assert sum(manifest["cascade"]["served_by_tier"].values()) == 20

    def test_run_cascade_accepts_explicit_tier_ladder(self, capsys):
        assert main([
            "run", "em", "fodors_zagats", "--k", "0",
            "--max-examples", "8", "--cascade", "gpt3-1.3b",
            "--cascade-threshold", "0.0",
        ]) == 0
        assert "cascade: threshold=0.000" in capsys.readouterr().out

    def test_cascade_threshold_requires_cascade(self):
        with pytest.raises(SystemExit, match="--cascade"):
            main(["run", "em", "fodors_zagats", "--k", "0",
                  "--max-examples", "4", "--cascade-threshold", "0.5"])

    def test_cascade_rejects_out_of_range_threshold(self):
        with pytest.raises(SystemExit, match="threshold"):
            main(["run", "em", "fodors_zagats", "--k", "0",
                  "--max-examples", "4", "--cascade",
                  "--cascade-threshold", "3.0"])

    def test_tasks_lists_the_registry(self, capsys):
        assert main(["tasks"]) == 0
        out = capsys.readouterr().out
        for name in ("entity_matching", "error_detection", "imputation",
                     "schema_matching", "transformation"):
            assert name in out

    def test_run_schema_matching_end_to_end(self, capsys):
        assert main(["run", "schema_matching", "synthea", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "schema_matching/synthea" in out
        assert "precision" in out and "recall" in out

    def test_run_accepts_aliases_and_trace(self, capsys):
        assert main(["run", "em", "fodors_zagats", "--k", "0",
                     "--max-examples", "10", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "entity_matching/fodors_zagats" in out
        assert "trace: 10 examples" in out

    def test_run_rejects_unknown_task(self):
        with pytest.raises(SystemExit):
            main(["run", "sentiment", "synthea"])

    def test_run_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["run", "em", "no_such_dataset"])

    def test_run_rejects_task_dataset_mismatch(self):
        with pytest.raises(SystemExit, match="schema_matching"):
            main(["run", "em", "synthea"])

    def test_run_manifest_flag_writes_schema_valid_json(
        self, capsys, tmp_path, manifest_schema
    ):
        from repro.core.manifest import validate_manifest

        path = tmp_path / "run.json"
        assert main(["run", "em", "fodors_zagats", "--k", "0",
                     "--max-examples", "8", "--manifest", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== run manifest: entity_matching/fodors_zagats" in out
        assert "phases:" in out and "requests:" in out
        instance = json.loads(path.read_text(encoding="utf-8"))
        assert validate_manifest(instance, manifest_schema) == []
        assert instance["n_examples"] == 8

    def test_run_cache_flag_makes_reruns_hit(
        self, capsys, tmp_path, clean_default_cache
    ):
        cache = str(tmp_path / "cache.db")
        manifest = tmp_path / "run.json"
        argv = ["run", "em", "fodors_zagats", "--k", "0", "--max-examples",
                "6", "--cache", cache, "--manifest", str(manifest)]
        assert main(argv) == 0
        cold = json.loads(manifest.read_text(encoding="utf-8"))
        assert cold["cache"]["hits"] == 0
        assert main(argv) == 0
        warm = json.loads(manifest.read_text(encoding="utf-8"))
        assert warm["cache"]["hit_rate"] == 1.0
        assert warm["metric"] == cold["metric"]

    def test_bench_manifest_flag_writes_experiment_summary(
        self, capsys, tmp_path, manifest_schema, clean_default_cache
    ):
        import sys

        sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
        try:
            from validate_manifest import validate_bench
        finally:
            sys.path.pop(0)

        out_dir = tmp_path / "manifests"
        assert main(["bench", "table5", "--manifest", str(out_dir),
                     "--cache", str(tmp_path / "cache.db")]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out and "cache hits" in out
        summary = json.loads(
            (out_dir / "table5.json").read_text(encoding="utf-8")
        )
        assert validate_bench(summary, manifest_schema) == []
        assert summary["n_runs"] == len(summary["runs"]) > 0
        assert summary["totals"]["requests"] > 0

    def test_model_flag(self, capsys):
        main(["impute", "--model", "gpt3-1.3b",
              "--row", "name=z,phone=415-775-7036", "--attribute", "city"])
        out = capsys.readouterr().out.casefold()
        assert "san francisco" not in out  # 1.3B cannot recall this


@pytest.fixture()
def clean_chaos_defaults():
    """--chaos/--on-error/--checkpoint-dir install process-wide defaults;
    never leak them to other tests."""
    from repro.api.faults import set_default_fault_plan
    from repro.core.tasks import (
        set_default_checkpoint_dir,
        set_default_on_error,
    )

    yield
    set_default_fault_plan(None)
    set_default_on_error("raise")
    set_default_checkpoint_dir(None)


@pytest.mark.chaos
class TestChaosCommands:
    def test_run_with_chaos_flag_degrades_gracefully(
        self, capsys, clean_chaos_defaults
    ):
        assert main(["run", "em", "fodors_zagats", "--k", "0",
                     "--max-examples", "60", "--chaos", "ci",
                     "--chaos-seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "entity_matching/fodors_zagats" in out
        assert "degraded" in out

    def test_run_chaos_with_raise_on_error_fails(
        self, capsys, clean_chaos_defaults
    ):
        """--on-error raise overrides the quarantine default that --chaos
        implies: an unrecoverable injected fault aborts the run."""
        with pytest.raises(Exception):
            main(["run", "em", "fodors_zagats", "--k", "0",
                  "--max-examples", "60", "--chaos", "ci",
                  "--chaos-seed", "0", "--on-error", "raise"])

    def test_run_checkpoint_flag_resumes(
        self, capsys, tmp_path, clean_chaos_defaults
    ):
        journal = tmp_path / "run.jsonl"
        argv = ["run", "em", "fodors_zagats", "--k", "0",
                "--max-examples", "8", "--checkpoint", str(journal)]
        assert main(argv) == 0
        first = journal.read_text(encoding="utf-8")
        assert main(argv) == 0  # resumes: replays, appends nothing new
        assert journal.read_text(encoding="utf-8") == first
        out = capsys.readouterr().out
        assert "entity_matching/fodors_zagats" in out

    def test_chaos_subcommand_reports_resilience(
        self, capsys, tmp_path, manifest_schema, clean_chaos_defaults
    ):
        from repro.core.manifest import validate_manifest

        manifest = tmp_path / "chaos.json"
        assert main(["chaos", "em", "fodors_zagats", "--k", "0",
                     "--max-examples", "60", "--profile", "ci",
                     "--chaos-seed", "0", "--manifest", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "chaos report" in out
        assert "quarantined" in out
        assert "fault-free" in out  # baseline comparison ran
        instance = json.loads(manifest.read_text(encoding="utf-8"))
        assert validate_manifest(instance, manifest_schema) == []
        assert instance["degraded"] is True
        assert instance["faults"]["profile"] == "ci"

    def test_chaos_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["chaos", "em", "fodors_zagats", "--profile", "tsunami"])

    def test_bench_checkpoint_dir_journals_runs(
        self, capsys, tmp_path, clean_chaos_defaults, clean_default_cache
    ):
        out_dir = tmp_path / "journals"
        assert main(["bench", "table5", "--checkpoint-dir",
                     str(out_dir)]) == 0
        journals = list(out_dir.glob("*.jsonl"))
        assert journals
        header = json.loads(
            journals[0].read_text(encoding="utf-8").splitlines()[0]
        )
        assert header["type"] == "header"
