"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_examples, _parse_row, main


class TestParsers:
    def test_parse_row(self):
        assert _parse_row("name=blue heron, city=boston") == {
            "name": "blue heron", "city": "boston",
        }

    def test_parse_row_rejects_garbage(self):
        with pytest.raises(SystemExit):
            _parse_row("no-equals-sign")

    def test_parse_examples(self):
        assert _parse_examples("Seattle=WA; Boston=MA") == [
            ("Seattle", "WA"), ("Boston", "MA"),
        ]


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "walmart_amazon" in out
        assert "transformation" in out

    def test_match(self, capsys):
        code = main([
            "match",
            "--left", "name=sony camera DSC-W55",
            "--right", "name=canon printer LBP-6030",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip() in ("Yes", "No")

    def test_impute(self, capsys):
        main(["impute", "--row", "name=x,phone=617-111-2222",
              "--attribute", "city"])
        assert "boston" in capsys.readouterr().out.casefold()

    def test_repair(self, capsys):
        main(["repair", "--row", "city=bxston,state=ma", "--attribute", "city"])
        assert capsys.readouterr().out.strip() == "boston"

    def test_transform(self, capsys):
        main(["transform", "--value", "Chicago",
              "--examples", "Seattle=WA;Boston=MA"])
        assert capsys.readouterr().out.strip() == "IL"

    def test_probe(self, capsys):
        main(["probe"])
        assert "gpt3-175b" in capsys.readouterr().out

    def test_bench_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["bench", "tableX"])

    def test_bench_runs_table6(self, capsys):
        assert main(["bench", "table6"]) == 0
        assert "Encoded functional dependencies" in capsys.readouterr().out

    def test_model_flag(self, capsys):
        main(["impute", "--model", "gpt3-1.3b",
              "--row", "name=z,phone=415-775-7036", "--attribute", "city"])
        out = capsys.readouterr().out.casefold()
        assert "san francisco" not in out  # 1.3B cannot recall this
