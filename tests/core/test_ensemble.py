"""Tests for §5.3 prompt ensembling."""

import pytest

from repro.core.ensemble import DEFAULT_VARIANTS, PromptEnsemble
from repro.core.prompts import build_entity_matching_prompt
from repro.datasets.base import MatchingPair


def _prompt(left, right, demos=()):
    return build_entity_matching_prompt(
        MatchingPair(left, right, False), list(demos)
    )


class CountingModel:
    """Backend that records the prompts it sees and answers by keyword."""

    name = "counting"

    def __init__(self, answers=None):
        self.prompts = []
        self.answers = answers

    def complete(self, prompt, **kwargs):
        self.prompts.append(prompt)
        if self.answers is not None:
            return self.answers[(len(self.prompts) - 1) % len(self.answers)]
        return "Yes"


class TestEnsemble:
    def test_votes_across_variants(self):
        backend = CountingModel()
        ensemble = PromptEnsemble(backend)
        answer = ensemble.complete(_prompt({"name": "a"}, {"name": "a"}))
        assert answer == "Yes"
        assert len(backend.prompts) == len(DEFAULT_VARIANTS)

    def test_each_variant_question_used(self):
        backend = CountingModel()
        PromptEnsemble(backend).complete(_prompt({"name": "a"}, {"name": "b"}))
        joined = "\n".join(backend.prompts)
        assert "equivalent?" in joined
        assert "duplicates?" in joined

    def test_majority_wins(self):
        backend = CountingModel(answers=["Yes", "No", "Yes", "Yes", "No"])
        assert PromptEnsemble(backend).complete(
            _prompt({"name": "a"}, {"name": "b"})
        ) == "Yes"

    def test_free_text_votes_abstain(self):
        backend = CountingModel(answers=["hmm", "No", "unsure", "No", "maybe"])
        assert PromptEnsemble(backend).complete(
            _prompt({"name": "a"}, {"name": "b"})
        ) == "No"

    def test_non_binary_prompts_pass_through(self):
        backend = CountingModel(answers=["boston"])
        answer = PromptEnsemble(backend).complete("name: x. city?")
        assert answer == "boston"
        assert len(backend.prompts) == 1

    def test_demonstration_questions_rewritten_too(self):
        backend = CountingModel()
        demo = MatchingPair({"name": "d"}, {"name": "d"}, True)
        PromptEnsemble(backend).complete(_prompt({"name": "a"}, {"name": "b"}, [demo]))
        variant_prompt = backend.prompts[1]
        assert "the same?" not in variant_prompt

    def test_name_property(self, fm_67b):
        assert PromptEnsemble(fm_67b).name == "gpt3-6.7b-ensemble5"

    def test_needs_two_variants(self, fm_67b):
        with pytest.raises(ValueError):
            PromptEnsemble(fm_67b, variants=("only one?",))

    def test_rejects_non_model(self):
        with pytest.raises(TypeError):
            PromptEnsemble(object())

    def test_real_model_determinism(self, fm_175b):
        ensemble = PromptEnsemble(fm_175b)
        prompt = _prompt({"name": "sony camera DSC-W55"},
                         {"name": "Sony DSC-W55 camera"})
        assert ensemble.complete(prompt) == ensemble.complete(prompt)
