"""Tests for repro.core.metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import accuracy, binary_metrics, normalize_answer


class TestBinaryMetrics:
    def test_perfect(self):
        metrics = binary_metrics([True, False, True], [True, False, True])
        assert metrics.f1 == 1.0
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_all_wrong(self):
        metrics = binary_metrics([True, False], [False, True])
        assert metrics.f1 == 0.0

    def test_confusion_counts(self):
        metrics = binary_metrics(
            [True, True, False, False], [True, False, True, False]
        )
        assert (metrics.true_positives, metrics.false_positives,
                metrics.false_negatives, metrics.true_negatives) == (1, 1, 1, 1)
        assert metrics.support == 2

    def test_no_positive_predictions(self):
        metrics = binary_metrics([False, False], [True, False])
        assert metrics.precision == 0.0
        assert metrics.f1 == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            binary_metrics([True], [True, False])

    def test_as_dict(self):
        metrics = binary_metrics([True], [True])
        assert metrics.as_dict() == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=30))
    def test_f1_is_harmonic_mean(self, outcomes):
        predictions = [p for p, _l in outcomes]
        labels = [l for _p, l in outcomes]
        metrics = binary_metrics(predictions, labels)
        if metrics.precision + metrics.recall > 0:
            expected = (
                2 * metrics.precision * metrics.recall
                / (metrics.precision + metrics.recall)
            )
            assert metrics.f1 == pytest.approx(expected)
        assert 0.0 <= metrics.f1 <= 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=20))
    def test_perfect_predictions_score_one(self, labels):
        metrics = binary_metrics(labels, labels)
        if any(labels):
            assert metrics.f1 == 1.0


class TestNormalizeAnswer:
    def test_casefold_and_whitespace(self):
        assert normalize_answer("  San   Francisco ") == "san francisco"

    def test_embellishment_not_erased(self):
        assert normalize_answer("San Francisco, CA") != normalize_answer("san francisco")


class TestAccuracy:
    def test_case_insensitive_match(self):
        assert accuracy(["Boston"], ["boston"]) == 1.0

    def test_partial(self):
        assert accuracy(["a", "b"], ["a", "c"]) == 0.5

    def test_empty(self):
        assert accuracy([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(["a"], [])

    @given(st.lists(st.text(max_size=6), min_size=1, max_size=20))
    def test_self_accuracy_one(self, answers):
        assert accuracy(answers, answers) == 1.0
