"""Integrity tests for the TaskSpec registry and the generic engine."""

import pytest

from repro.core.tasks import (
    TASKS,
    TaskSpec,
    available_tasks,
    get_task,
    run_task,
)
from repro.core.tasks.spec import register
from repro.datasets import load_dataset

#: One benchmark per task, for the round-trip checks.
DATASET_FOR = {
    "entity_matching": "fodors_zagats",
    "error_detection": "hospital",
    "imputation": "restaurant",
    "schema_matching": "synthea",
    "transformation": "bing_querylogs",
}


class TestRegistry:
    @pytest.mark.smoke
    def test_all_five_tasks_registered(self):
        assert available_tasks() == [
            "entity_matching", "error_detection", "imputation",
            "schema_matching", "transformation",
        ]

    def test_aliases_resolve_to_the_same_spec(self):
        for alias, name in (("em", "entity_matching"), ("ed", "error_detection"),
                            ("di", "imputation"), ("sm", "schema_matching"),
                            ("dt", "transformation")):
            assert get_task(alias) is get_task(name)

    def test_spec_passes_through(self):
        spec = get_task("entity_matching")
        assert get_task(spec) is spec

    def test_unknown_task_raises_with_known_names(self):
        with pytest.raises(KeyError, match="entity_matching"):
            get_task("sentiment_analysis")

    def test_aliases_are_listed_in_the_registry_map(self):
        assert set(TASKS) >= set(available_tasks()) | {"em", "ed", "di", "sm", "dt"}

    def test_register_rejects_name_collisions(self):
        existing = get_task("entity_matching")
        impostor = TaskSpec(
            name="impostor",
            metric_name="f1",
            default_k=0,
            build_prompt=lambda *a: "",
            parse_response=str,
            label_of=lambda e: e,
            score=lambda p, l, e: (0.0, {}),
            default_config=lambda d: None,
            aliases=("em",),
        )
        with pytest.raises(ValueError):
            register(impostor)
        assert get_task("em") is existing  # registry left intact

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            get_task("entity_matching").default_k = 99


class TestSpecRoundTrip:
    """Every spec's builder/parser/scorer round-trips one real example."""

    @pytest.mark.parametrize("name", sorted(DATASET_FOR))
    def test_one_example(self, fm_175b, name):
        spec = get_task(name)
        dataset = load_dataset(DATASET_FOR[name])
        example = spec.examples_of(dataset, "test")[0]
        config = spec.default_config(dataset)
        prompt = spec.build_prompt(example, [], config, 0)
        assert isinstance(prompt, str) and prompt.strip()
        prediction = spec.parse_response(fm_175b.complete(prompt))
        label = spec.label_of(example)
        metric, details = spec.score([prediction], [label], [example])
        assert 0.0 <= metric <= 1.0
        assert isinstance(details, dict)

    @pytest.mark.parametrize("name", sorted(DATASET_FOR))
    def test_validation_sample_is_capped_and_typed(self, name):
        spec = get_task(name)
        if not spec.supports_selection:
            pytest.skip("no train/valid splits for this task")
        dataset = load_dataset(DATASET_FOR[name])
        validation = spec.validation_examples(dataset, spec.max_validation)
        assert 0 < len(validation) <= spec.max_validation
        for example in validation:
            spec.label_of(example)  # must not raise


class TestEngineRunTask:
    def test_k_none_uses_spec_default(self, fm_175b):
        run = run_task("schema_matching", fm_175b, "synthea")
        assert run.k == get_task("schema_matching").default_k

    def test_string_model_and_dataset_coerced(self):
        run = run_task("em", "gpt3-175b", "fodors_zagats", k=0, max_examples=10)
        assert run.model == "gpt3-175b"
        assert run.dataset == "fodors_zagats"

    def test_unknown_selection_rejected(self, fm_175b):
        with pytest.raises(ValueError):
            run_task("em", fm_175b, "beer", k=2, selection="psychic")


class TestTraceRecords:
    def test_records_off_by_default(self, fm_175b):
        run = run_task("em", fm_175b, "fodors_zagats", k=0, max_examples=5)
        assert run.records == []

    @pytest.mark.smoke
    def test_records_align_with_predictions(self, fm_175b):
        dataset = load_dataset("fodors_zagats")
        run = run_task("em", fm_175b, dataset, k=0, max_examples=8, trace=True)
        assert len(run.records) == run.n_examples == 8
        for index, record in enumerate(run.records):
            assert record.index == index
            assert record.prompt.strip()
            assert record.prediction == run.predictions[index]
            assert record.latency_s is not None and record.latency_s >= 0.0

    def test_tracing_does_not_change_predictions(self, fm_175b):
        dataset = load_dataset("restaurant")
        plain = run_task("di", fm_175b, dataset, k=0, max_examples=20)
        traced = run_task("di", fm_175b, dataset, k=0, max_examples=20,
                          trace=True)
        assert traced.predictions == plain.predictions
        assert [r.label for r in traced.records] == plain.labels
