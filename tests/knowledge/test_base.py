"""Tests for repro.knowledge.base."""

import pytest

from repro.knowledge.base import Fact, KnowledgeBase


@pytest.fixture()
def small_kb():
    kb = KnowledgeBase()
    kb.add("capital", "France", "Paris", frequency=100.0)
    kb.add("capital", "Nauru", "Yaren", frequency=0.5)
    kb.add("capital", "Atlantis", "Poseidonis", frequency=0.0)
    kb.add_symmetric("alias", "hp", "hewlett-packard", frequency=50.0)
    return kb


class TestFact:
    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            Fact(relation="r", subject="s", obj="o", frequency=-1.0)

    def test_facts_are_frozen(self):
        fact = Fact(relation="r", subject="s", obj="o")
        with pytest.raises(AttributeError):
            fact.obj = "other"


class TestLookup:
    def test_basic(self, small_kb):
        assert small_kb.lookup_one("capital", "France") == "Paris"

    def test_case_insensitive_subject(self, small_kb):
        assert small_kb.lookup_one("capital", "FRANCE") == "Paris"

    def test_frequency_floor_gates_recall(self, small_kb):
        assert small_kb.lookup_one("capital", "Nauru", min_frequency=1.0) is None
        assert small_kb.lookup_one("capital", "Nauru", min_frequency=0.1) == "Yaren"

    def test_zero_frequency_needs_zero_floor(self, small_kb):
        assert small_kb.lookup_one("capital", "Atlantis", min_frequency=0.4) is None
        assert small_kb.lookup_one("capital", "Atlantis") == "Poseidonis"

    def test_unknown_subject(self, small_kb):
        assert small_kb.lookup_one("capital", "Mars") is None
        assert small_kb.lookup("capital", "Mars") == []

    def test_most_frequent_first(self):
        kb = KnowledgeBase()
        kb.add("r", "s", "rare", frequency=1.0)
        kb.add("r", "s", "common", frequency=10.0)
        assert kb.lookup_one("r", "s") == "common"
        assert [fact.obj for fact in kb.lookup("r", "s")] == ["common", "rare"]

    def test_symmetric(self, small_kb):
        assert small_kb.lookup_one("alias", "hp") == "hewlett-packard"
        assert small_kb.lookup_one("alias", "hewlett-packard") == "hp"


class TestEntityFrequency:
    def test_max_over_facts(self, small_kb):
        assert small_kb.entity_frequency("France") == 100.0
        assert small_kb.entity_frequency("Paris") == 100.0

    def test_unknown_entity_zero(self, small_kb):
        assert small_kb.entity_frequency("nowhere") == 0.0

    def test_knows_entity(self, small_kb):
        assert small_kb.knows_entity("France", min_frequency=50.0)
        assert not small_kb.knows_entity("France", min_frequency=500.0)
        assert not small_kb.knows_entity("nowhere")


class TestInventory:
    def test_len_counts_facts(self, small_kb):
        assert len(small_kb) == 5  # 3 capitals + 2 symmetric alias facts

    def test_relations(self, small_kb):
        assert small_kb.relations() == {"capital", "alias"}

    def test_subjects_and_objects_deduplicate(self):
        kb = KnowledgeBase()
        kb.add("r", "A", "x")
        kb.add("r", "a", "y")
        assert kb.subjects("r") == ["A"]
        assert set(kb.objects("r")) == {"x", "y"}

    def test_merge(self, small_kb):
        other = KnowledgeBase()
        other.add("capital", "Japan", "Tokyo")
        small_kb.merge(other)
        assert small_kb.lookup_one("capital", "Japan") == "Tokyo"
