"""Tests for repro.knowledge.geography — the FD invariants."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.knowledge.base import KnowledgeBase
from repro.knowledge.geography import add_geography_facts, build_geography


def test_city_names_unique():
    cities = build_geography(n_tail=40)
    names = [city.name.casefold() for city in cities]
    assert len(set(names)) == len(names)


def test_head_frequencies_follow_zipf():
    cities = [city for city in build_geography(12) if not city.is_tail]
    frequencies = [city.frequency for city in cities]
    assert frequencies == sorted(frequencies, reverse=True)
    assert frequencies[0] == 1000.0


def test_tail_cities_have_zero_frequency():
    for city in build_geography(12):
        if city.is_tail:
            assert city.frequency == 0.0


def test_zip_codes_unique_across_cities():
    """zip → city must be a function."""
    cities = build_geography(40)
    counts = Counter(zip_code for city in cities for zip_code in city.zip_codes)
    assert all(count == 1 for count in counts.values())


def test_area_codes_unique_across_cities():
    """area code → city must be a function (simplification in this world)."""
    cities = build_geography(40)
    counts = Counter(code for city in cities for code in city.area_codes)
    duplicated = [code for code, count in counts.items() if count > 1]
    assert duplicated == []


@given(st.integers(min_value=0, max_value=60))
def test_deterministic_for_any_tail_count(n_tail):
    assert build_geography(n_tail) == build_geography(n_tail)


class TestFacts:
    def test_fd_consistency(self):
        cities = build_geography(12)
        kb = KnowledgeBase()
        add_geography_facts(kb, cities)
        for city in cities:
            assert kb.lookup_one("city_to_state", city.name) == city.state_abbr
            for zip_code in city.zip_codes:
                assert kb.lookup_one("zip_to_city", zip_code) == city.name
            for area_code in city.area_codes:
                assert kb.lookup_one("area_code_to_city", area_code) == city.name

    def test_fact_frequency_matches_city(self):
        cities = build_geography(12)
        kb = KnowledgeBase()
        add_geography_facts(kb, cities)
        sf = next(city for city in cities if city.name == "San Francisco")
        fact = kb.lookup("area_code_to_city", "415")[0]
        assert fact.frequency == sf.frequency

    def test_paper_probe_facts_present(self, kb=None):
        """The Table 6 probes must be answerable from the default world."""
        from repro.knowledge import default_knowledge

        kb = default_knowledge()
        assert kb.lookup_one("area_code_to_city", "415") == "San Francisco"
        assert kb.lookup_one("area_code_to_city", "310") == "Malibu"
        assert kb.lookup_one("zip_to_city", "35205") == "Birmingham"
        assert kb.lookup_one("state_abbr_to_name", "AL") == "Alabama"
