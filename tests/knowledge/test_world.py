"""Tests for the assembled world and its knowledge base."""

from repro.knowledge import default_knowledge, default_world
from repro.knowledge.calendar import MONTHS
from repro.knowledge.census import ADULT_DOMAINS
from repro.knowledge.medical import CORRESPONDENCES


class TestWorldAssembly:
    def test_cached_singleton(self):
        assert default_world() is default_world()

    def test_corpora_present(self, world):
        assert len(world.cities) >= 60
        assert len(world.products) >= 300
        assert len(world.tracks) >= 200
        assert len(world.papers) >= 200
        assert len(world.restaurants) >= 200
        assert len(world.beers) >= 150

    def test_head_tail_partition(self, world):
        assert set(world.head_cities).isdisjoint(world.tail_cities)
        assert len(world.head_cities) + len(world.tail_cities) == len(world.cities)


class TestKnowledgeContents:
    def test_expected_relations(self, kb):
        expected = {
            "zip_to_city", "area_code_to_city", "city_to_state",
            "state_to_city", "product_to_manufacturer", "brand_alias",
            "track_to_artist", "beer_to_brewery", "restaurant_to_city",
            "venue_alias", "attr_synonym", "month_to_number",
            "census_domain", "month_abbrev", "weekday_abbrev",
        }
        assert expected <= kb.relations()

    def test_calendar_facts(self, kb):
        for i, month in enumerate(MONTHS, start=1):
            assert kb.lookup_one("month_to_number", month) == str(i)
            assert kb.lookup_one("number_to_month", str(i)) == month

    def test_census_facts(self, kb):
        for attribute, values in ADULT_DOMAINS.items():
            for value in values:
                assert kb.lookup_one("census_domain", value) == attribute

    def test_product_fd(self, world):
        product = world.products[0]
        assert (
            world.kb.lookup_one("product_to_manufacturer", product.short_name)
            == product.manufacturer
        )

    def test_restaurant_fd(self, world):
        restaurant = world.restaurants[0]
        assert (
            world.kb.lookup_one("restaurant_to_city", restaurant.name)
            == restaurant.city
        )


class TestMedicalSchema:
    def test_correspondences_reference_real_attributes(self):
        from repro.knowledge.medical import OMOP_ATTRIBUTES, SYNTHEA_ATTRIBUTES

        synthea = {attr.qualified for attr in SYNTHEA_ATTRIBUTES}
        omop = {attr.qualified for attr in OMOP_ATTRIBUTES}
        for source, target in CORRESPONDENCES:
            assert source in synthea, source
            assert target in omop, target

    def test_correspondences_functional_on_source(self):
        sources = [source for source, _target in CORRESPONDENCES]
        assert len(set(sources)) == len(sources)

    def test_generic_synonyms_are_head_knowledge(self, kb):
        fact = kb.lookup("attr_synonym", "birthdate")[0]
        assert fact.frequency >= 50.0

    def test_jargon_synonyms_are_tail_knowledge(self, kb):
        fact = kb.lookup("attr_synonym", "ssn")[0]
        assert fact.frequency < 15.0  # below the 6.7B knowledge floor
