"""Tests for the entity corpora (products, music, papers, restaurants, beers)."""

from collections import Counter

from repro.knowledge.beers import build_beer_corpus
from repro.knowledge.music import build_music_catalog
from repro.knowledge.papers import VENUE_ALIASES, build_paper_corpus
from repro.knowledge.products import build_product_catalog, known_brands
from repro.knowledge.restaurants import build_restaurant_corpus
from repro.knowledge.geography import build_geography


class TestProducts:
    def test_requested_count(self):
        assert len(build_product_catalog(150)) == 150

    def test_short_names_unique(self):
        products = build_product_catalog(300)
        names = [product.short_name for product in products]
        assert len(set(names)) == len(names)

    def test_full_name_contains_brand_and_short_name(self):
        for product in build_product_catalog(50):
            assert product.name.startswith(product.manufacturer)
            assert product.short_name in product.name

    def test_deterministic(self):
        assert build_product_catalog(40) == build_product_catalog(40)

    def test_manufacturers_are_known_brands(self):
        brands = set(known_brands())
        assert all(p.manufacturer in brands for p in build_product_catalog(100))

    def test_prices_positive(self):
        assert all(p.price > 0 for p in build_product_catalog(100))


class TestMusic:
    def test_title_artist_unique(self):
        tracks = build_music_catalog(200)
        keys = [(track.title, track.artist) for track in tracks]
        assert len(set(keys)) == len(keys)

    def test_time_format(self):
        for track in build_music_catalog(50):
            minutes, seconds = track.time.split(":")
            assert 0 <= int(seconds) < 60
            assert int(minutes) > 0

    def test_price_format(self):
        assert all(t.price.startswith("$") for t in build_music_catalog(50))


class TestPapers:
    def test_titles_unique(self):
        papers = build_paper_corpus(200)
        titles = [paper.title for paper in papers]
        assert len(set(titles)) == len(titles)

    def test_every_venue_has_alias(self):
        for paper in build_paper_corpus(100):
            assert paper.venue in VENUE_ALIASES

    def test_authors_nonempty(self):
        assert all(paper.authors for paper in build_paper_corpus(60))


class TestRestaurants:
    def test_geography_consistency(self):
        cities = build_geography(12)
        by_name = {city.name: city for city in cities}
        for restaurant in build_restaurant_corpus(cities):
            city = by_name[restaurant.city]
            assert restaurant.phone.split("-")[0] in city.area_codes
            assert restaurant.zip_code in city.zip_codes
            assert restaurant.state == city.state_abbr

    def test_names_unique(self):
        cities = build_geography(12)
        names = [r.name for r in build_restaurant_corpus(cities)]
        assert len(set(names)) == len(names)

    def test_density_follows_prominence(self):
        cities = build_geography(12)
        restaurants = build_restaurant_corpus(cities)
        counts = Counter(r.city for r in restaurants)
        # The most famous city hosts more restaurants than a mid-tier one.
        assert counts["New York"] > counts["Boise"]


class TestBeers:
    def test_name_brewery_unique(self):
        beers = build_beer_corpus(150)
        keys = [(beer.name, beer.brewery) for beer in beers]
        assert len(set(keys)) == len(keys)

    def test_abv_parses(self):
        for beer in build_beer_corpus(60):
            assert 0 < float(beer.abv.rstrip("%")) < 20
