"""Tests for the imputation and error-detection dataset builders."""

from collections import Counter

import pytest

from repro.datasets import load_dataset
from repro.datasets.error_datasets import ADULT_ATTRIBUTES, HOSPITAL_ATTRIBUTES
from repro.datasets.imputation_datasets import build_restaurant
from repro.knowledge.census import ADULT_DOMAINS


class TestRestaurant:
    @pytest.fixture(scope="class")
    def built(self):
        return build_restaurant()

    def test_answers_never_null(self, built):
        dataset, _info = built
        for example in dataset.train + dataset.valid + dataset.test:
            assert example.answer

    def test_target_masked_in_rows(self, built):
        dataset, _info = built
        for example in dataset.test:
            assert example.row["city"] is None

    def test_heldout_cities_absent_from_train(self, built):
        dataset, info = built
        train_cities = {example.answer.casefold() for example in dataset.train}
        assert not (info.heldout_cities & train_cities)

    def test_heldout_cities_present_in_test(self, built):
        dataset, info = built
        test_cities = {example.answer.casefold() for example in dataset.test}
        assert info.heldout_cities <= test_cities

    def test_rare_cities_between_1_and_10_train_rows(self, built):
        _dataset, info = built
        for city in info.rare_cities:
            assert 1 <= info.train_frequency[city] <= 10, city

    def test_common_cities_above_10_train_rows(self, built):
        _dataset, info = built
        for city in info.common_cities:
            assert info.train_frequency[city] > 10, city

    def test_slice_of_matches_frequency(self, built):
        _dataset, info = built
        assert info.slice_of(next(iter(info.heldout_cities))) == "freq=0"
        assert info.slice_of(next(iter(info.rare_cities))) == "0<freq<=10"
        assert info.slice_of(next(iter(info.common_cities))) == "freq>10"

    def test_complete_rows_align_with_train(self, built):
        dataset, _info = built
        assert len(dataset.complete_train_rows) == len(dataset.train)
        for row, example in zip(dataset.complete_train_rows, dataset.train):
            assert row["city"] == example.answer


class TestBuy:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("buy")

    def test_manufacturer_masked(self, dataset):
        for example in dataset.test:
            assert example.row["manufacturer"] is None

    def test_brand_usually_in_name(self, dataset):
        hits = sum(
            example.answer.casefold() in (example.row["name"] or "").casefold()
            for example in dataset.test
        )
        assert hits / len(dataset.test) > 0.6

    def test_split_sizes(self, dataset):
        assert len(dataset.train) > len(dataset.valid)
        assert len(dataset.test) > 50


class TestHospital:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("hospital")

    def test_schema(self, dataset):
        assert dataset.attributes == HOSPITAL_ATTRIBUTES
        for example in dataset.test[:50]:
            assert set(example.row) == set(HOSPITAL_ATTRIBUTES)

    def test_train_is_small(self, dataset):
        assert len(dataset.train) == 100

    def test_train_has_some_errors(self, dataset):
        positives = sum(example.label for example in dataset.train)
        assert 3 <= positives <= 20

    def test_error_rate_plausible(self, dataset):
        rate = sum(e.label for e in dataset.test) / len(dataset.test)
        assert 0.01 < rate < 0.12

    def test_dirty_cells_differ_from_clean_value(self, dataset):
        for example in dataset.test:
            if example.label:
                assert example.row[example.attribute] != example.clean_value
                assert "x" in example.row[example.attribute]

    def test_clean_cells_match_clean_value(self, dataset):
        for example in dataset.test[:200]:
            if not example.label:
                assert example.row[example.attribute] == example.clean_value


class TestAdult:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("adult")

    def test_schema(self, dataset):
        assert dataset.attributes == ADULT_ATTRIBUTES

    def test_clean_categoricals_in_domain(self, dataset):
        for example in dataset.test[:300]:
            attribute = example.attribute
            if not example.label and attribute in ADULT_DOMAINS:
                assert example.row[attribute] in ADULT_DOMAINS[attribute]

    def test_dirty_categoricals_out_of_domain(self, dataset):
        for example in dataset.test:
            attribute = example.attribute
            if example.label and attribute in ADULT_DOMAINS:
                assert example.row[attribute] not in ADULT_DOMAINS[attribute]

    def test_dirty_numerics_out_of_range(self, dataset):
        for example in dataset.test:
            if example.label and example.attribute in ("age", "hours_per_week"):
                value = int(example.row[example.attribute])
                assert value < 0 or value > 120

    def test_attributes_covered(self, dataset):
        covered = Counter(example.attribute for example in dataset.test)
        assert set(covered) == set(ADULT_ATTRIBUTES)
