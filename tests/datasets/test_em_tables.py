"""Tests for reconstructing source tables from EM pair datasets."""

import pytest

from repro.datasets import load_dataset
from repro.datasets.em_tables import dataset_tables


@pytest.fixture(scope="module")
def tables():
    return dataset_tables(load_dataset("fodors_zagats"))


class TestDatasetTables:
    def test_rows_deduplicated(self, tables):
        keys = [tuple(sorted(row.items())) for row in tables.left]
        assert len(set(keys)) == len(keys)

    def test_matches_reference_valid_indexes(self, tables):
        for left_index, right_index in tables.matches:
            assert 0 <= left_index < len(tables.left)
            assert 0 <= right_index < len(tables.right)

    def test_match_count_equals_positive_pairs(self):
        dataset = load_dataset("beer")
        tables = dataset_tables(dataset)
        assert len(tables.matches) == sum(pair.label for pair in dataset.test)

    def test_matched_rows_are_the_pair_rows(self):
        dataset = load_dataset("beer")
        tables = dataset_tables(dataset)
        positives = [pair for pair in dataset.test if pair.label]
        for (left_index, right_index), pair in zip(tables.matches, positives):
            assert tables.left[left_index] == pair.left
            assert tables.right[right_index] == pair.right

    def test_schema_preserved(self, tables):
        dataset = load_dataset("fodors_zagats")
        assert tables.left.columns == dataset.attributes

    def test_split_selectable(self):
        dataset = load_dataset("beer")
        train_tables = dataset_tables(dataset, split="train")
        assert len(train_tables.matches) == sum(p.label for p in dataset.train)
