"""Seed-robustness properties: any seed must yield a well-formed dataset."""

from hypothesis import given, settings, strategies as st

from repro.datasets import load_dataset

seeds = st.integers(min_value=0, max_value=10_000)


@given(seed=seeds)
@settings(max_examples=8, deadline=None)
def test_em_dataset_well_formed_for_any_seed(seed):
    dataset = load_dataset("beer", seed=seed)
    for split_name in ("train", "valid", "test"):
        split = dataset.split(split_name)
        assert split
        for pair in split:
            assert set(pair.left) <= set(dataset.attributes)
            assert set(pair.right) <= set(dataset.attributes)
    # Both labels present in the training data (learnability invariant).
    assert {pair.label for pair in dataset.train} == {True, False}


@given(seed=seeds)
@settings(max_examples=6, deadline=None)
def test_error_dataset_well_formed_for_any_seed(seed):
    dataset = load_dataset("adult", seed=seed)
    assert any(example.label for example in dataset.train)
    for example in dataset.test[:50]:
        assert example.attribute in dataset.attributes
        assert example.row.get(example.attribute) is not None


@given(seed=seeds)
@settings(max_examples=6, deadline=None)
def test_imputation_dataset_well_formed_for_any_seed(seed):
    dataset = load_dataset("buy", seed=seed)
    for example in dataset.train + dataset.test:
        assert example.answer
        assert example.row[dataset.target_attribute] is None


@given(seed=seeds)
@settings(max_examples=6, deadline=None)
def test_transformation_dataset_well_formed_for_any_seed(seed):
    dataset = load_dataset("stackoverflow", seed=seed)
    for case in dataset.cases:
        assert case.examples and case.tests
        # Demonstrations must be internally consistent (no duplicate
        # inputs mapping to different outputs).
        seen = {}
        for source, target in case.examples:
            assert seen.setdefault(source, target) == target
