"""Tests for repro.datasets.table."""

import pytest
from hypothesis import given, strategies as st

from repro.datasets.table import Table

COLUMNS = ["name", "city", "phone"]


@pytest.fixture()
def table():
    return Table(COLUMNS, [
        {"name": "a", "city": "boston", "phone": "1"},
        {"name": "b", "city": None, "phone": "2"},
        {"name": "c", "city": "boston"},
    ])


class TestConstruction:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(["a", "a"])

    def test_missing_columns_become_null(self, table):
        assert table[2]["phone"] is None

    def test_unknown_column_rejected(self, table):
        with pytest.raises(ValueError):
            table.append({"name": "d", "bogus": "x"})

    def test_column_order_normalized(self):
        table = Table(["a", "b"], [{"b": "2", "a": "1"}])
        assert list(table[0]) == ["a", "b"]


class TestAccess:
    def test_len_and_iter(self, table):
        assert len(table) == 3
        assert [row["name"] for row in table] == ["a", "b", "c"]

    def test_column_values(self, table):
        assert table.column_values("city") == ["boston", None, "boston"]
        assert table.column_values("city", drop_null=True) == ["boston", "boston"]

    def test_column_values_unknown(self, table):
        with pytest.raises(KeyError):
            table.column_values("bogus")

    def test_select(self, table):
        projected = table.select(["city", "name"])
        assert projected.columns == ["city", "name"]
        assert len(projected) == 3
        assert "phone" not in projected[0]

    def test_select_unknown(self, table):
        with pytest.raises(KeyError):
            table.select(["bogus"])

    def test_where(self, table):
        filtered = table.where(lambda row: row["city"] == "boston")
        assert len(filtered) == 2

    def test_head(self, table):
        assert len(table.head(2)) == 2

    def test_copy_isolated(self, table):
        clone = table.copy()
        clone[0]["name"] = "changed"
        assert table[0]["name"] == "a"

    def test_repr(self, table):
        assert "n_rows=3" in repr(table)


row_strategy = st.dictionaries(
    st.sampled_from(COLUMNS),
    st.one_of(st.none(), st.text(max_size=8)),
    max_size=3,
)


@given(st.lists(row_strategy, max_size=10))
def test_roundtrip_preserves_values(rows):
    table = Table(COLUMNS, rows)
    for original, stored in zip(rows, table):
        for column in COLUMNS:
            assert stored[column] == original.get(column)


@given(st.lists(row_strategy, max_size=10))
def test_select_then_where_counts(rows):
    table = Table(COLUMNS, rows)
    selected = table.select(["name"])
    assert len(selected) == len(table)
