"""Tests for repro.datasets.perturb."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.datasets.perturb import (
    PerturbationConfig,
    abbreviate,
    change_case,
    corrupt_char_x,
    drop_token,
    jitter_price,
    perturb_row,
    perturb_value,
    truncate,
    typo,
)

words = st.text(alphabet="abcdefgh ", min_size=2, max_size=30)


class TestOperators:
    @given(words, st.integers())
    def test_typo_changes_length_by_at_most_one(self, value, seed):
        result = typo(value, random.Random(seed))
        assert abs(len(result) - len(value)) <= 1

    @given(words, st.integers())
    def test_drop_token_keeps_at_least_one(self, value, seed):
        result = drop_token(value, random.Random(seed))
        if value.split():
            assert len(result.split()) >= 1

    def test_drop_token_single_token_noop(self):
        assert drop_token("word", random.Random(0)) == "word"

    def test_abbreviate_street(self):
        assert abbreviate("main street", random.Random(0)) == "main st."

    def test_abbreviate_no_candidates(self):
        assert abbreviate("nothing here", random.Random(0)) == "nothing here"

    @given(words, st.integers())
    def test_change_case_preserves_casefold(self, value, seed):
        result = change_case(value, random.Random(seed))
        assert result.casefold() == value.casefold()

    @given(st.integers())
    def test_truncate_prefix(self, seed):
        value = "one two three four five"
        result = truncate(value, random.Random(seed))
        assert value.startswith(result)
        assert len(result.split()) < len(value.split())

    def test_corrupt_char_x_single_position(self):
        rng = random.Random(0)
        value = "boston"
        result = corrupt_char_x(value, rng)
        assert len(result) == len(value)
        assert sum(a != b for a, b in zip(result, value)) == 1
        assert "x" in result

    def test_jitter_price_stays_close(self):
        result = jitter_price("$100.00", random.Random(0))
        assert result.startswith("$")
        assert abs(float(result.lstrip("$")) - 100.0) <= 5.0

    def test_jitter_price_non_numeric_noop(self):
        assert jitter_price("call us", random.Random(0)) == "call us"


class TestPerturbRow:
    def test_protected_attributes_untouched(self):
        config = PerturbationConfig(
            typo_rate=1.0, case_rate=1.0, null_rate=0.0, protected=("phone",)
        )
        rng = random.Random(0)
        row = {"name": "golden lotus", "phone": "415-775-7036"}
        dirty = perturb_row(row, config, rng)
        assert dirty["phone"] == "415-775-7036"

    def test_null_rate_one_nulls_everything(self):
        config = PerturbationConfig(null_rate=1.0)
        dirty = perturb_row({"a": "x", "b": "y"}, config, random.Random(0))
        assert dirty == {"a": None, "b": None}

    def test_null_values_pass_through(self):
        config = PerturbationConfig(typo_rate=1.0)
        dirty = perturb_row({"a": None}, config, random.Random(0))
        assert dirty["a"] is None

    def test_zero_rates_identity(self):
        config = PerturbationConfig(
            typo_rate=0, drop_token_rate=0, abbreviate_rate=0, case_rate=0,
            truncate_rate=0, noise_rate=0, null_rate=0, price_jitter_rate=0,
        )
        row = {"a": "Exact Value"}
        assert perturb_row(row, config, random.Random(0)) == row

    def test_deterministic_given_seed(self):
        config = PerturbationConfig(typo_rate=0.5, case_rate=0.5)
        row = {"a": "some value here", "b": "another one"}
        assert perturb_row(row, config, random.Random(42)) == perturb_row(
            row, config, random.Random(42)
        )

    @given(st.integers(), words)
    def test_perturb_value_returns_str_or_none(self, seed, value):
        config = PerturbationConfig()
        result = perturb_value(value, config, random.Random(seed))
        assert result is None or isinstance(result, str)
