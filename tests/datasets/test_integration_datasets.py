"""Tests for the schema-matching and transformation dataset builders."""

import pytest

from repro.datasets import load_dataset
from repro.datasets.base import TransformationCase
from repro.datasets.synthea_dataset import TEST_TABLES, TRAIN_TABLES, VALID_TABLES
from repro.knowledge.medical import CORRESPONDENCES


class TestSynthea:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("synthea")

    def test_split_by_source_table(self, dataset):
        assert {pair.left.table for pair in dataset.train} <= TRAIN_TABLES
        assert {pair.left.table for pair in dataset.valid} <= VALID_TABLES
        assert {pair.left.table for pair in dataset.test} <= TEST_TABLES

    def test_positives_are_true_correspondences(self, dataset):
        truth = set(CORRESPONDENCES)
        for pair in dataset.train + dataset.valid + dataset.test:
            key = (pair.left.qualified, pair.right.qualified)
            assert (key in truth) == pair.label

    def test_negatives_dominate(self, dataset):
        pairs = dataset.train + dataset.valid + dataset.test
        n_pos = sum(pair.label for pair in pairs)
        assert n_pos * 3 <= len(pairs)

    def test_every_split_has_positives(self, dataset):
        for split in (dataset.train, dataset.valid, dataset.test):
            assert any(pair.label for pair in split)

    def test_no_duplicate_pairs(self, dataset):
        pairs = dataset.train + dataset.valid + dataset.test
        keys = [(p.left.qualified, p.right.qualified) for p in pairs]
        assert len(set(keys)) == len(keys)


@pytest.mark.parametrize("name", ["stackoverflow", "bing_querylogs"])
class TestTransformations:
    def test_cases_well_formed(self, name):
        dataset = load_dataset(name)
        for case in dataset.cases:
            assert len(case.examples) >= 3
            assert len(case.tests) >= 5
            assert case.kind in ("syntactic", "semantic")
            assert case.instruction

    def test_examples_and_tests_disjoint(self, name):
        dataset = load_dataset(name)
        for case in dataset.cases:
            example_inputs = {source for source, _t in case.examples}
            test_inputs = {source for source, _t in case.tests}
            # Occasional collisions are possible for tiny domains (months),
            # but the bulk must be held out.
            assert len(test_inputs - example_inputs) >= len(test_inputs) - 1

    def test_deterministic(self, name):
        assert load_dataset(name).cases == load_dataset(name).cases

    def test_n_tests_accounting(self, name):
        dataset = load_dataset(name)
        assert dataset.n_tests == sum(len(case.tests) for case in dataset.cases)


def test_stackoverflow_mostly_syntactic():
    kinds = [case.kind for case in load_dataset("stackoverflow").cases]
    assert kinds.count("syntactic") > kinds.count("semantic")


def test_bing_mostly_semantic():
    kinds = [case.kind for case in load_dataset("bing_querylogs").cases]
    assert kinds.count("semantic") > kinds.count("syntactic")


def test_case_validation():
    with pytest.raises(ValueError):
        TransformationCase(name="x", examples=(), tests=(("a", "b"),))
    with pytest.raises(ValueError):
        TransformationCase(
            name="x", examples=(("a", "b"),), tests=(("c", "d"),), kind="bogus"
        )


class TestRegistry:
    def test_all_fourteen_datasets(self):
        from repro.datasets import available_datasets

        assert len(available_datasets()) == 14

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_explicit_world_accepted(self, world):
        dataset = load_dataset("beer", world=world)
        assert dataset.test
