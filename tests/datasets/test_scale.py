"""The --scale knob: deterministic N-row splits for EM/ED/DI."""

import pytest

from repro.datasets import load_dataset, scale_dataset

pytestmark = pytest.mark.smoke


class TestScaleMechanics:
    @pytest.mark.parametrize("name", ["fodors_zagats", "hospital", "restaurant"])
    def test_exact_row_count_and_renamed(self, name):
        base = load_dataset(name)
        target = 2 * len(base.split("test")) + 3
        scaled = scale_dataset(base, target)
        assert len(scaled.split("test")) == target
        assert scaled.name == f"{base.name}@{target}"
        assert scaled.task == base.task

    @pytest.mark.parametrize("name", ["fodors_zagats", "hospital", "restaurant"])
    def test_deterministic_across_processes(self, name):
        # Two independent loads must agree byte-for-byte: sharded
        # workers rebuild the scaled workload without shipping rows.
        first = load_dataset(name, scale=150).split("test")
        second = load_dataset(name, scale=150).split("test")
        assert first == second

    def test_round_zero_is_verbatim(self):
        base = load_dataset("fodors_zagats")
        n = len(base.split("test"))
        scaled = scale_dataset(base, n + 5)
        assert scaled.split("test")[:n] == base.split("test")

    def test_variants_are_distinct_examples(self):
        base = load_dataset("fodors_zagats")
        n = len(base.split("test"))
        scaled = scale_dataset(base, 3 * n)
        rendered = {
            (tuple(sorted(p.left.items())), tuple(sorted(p.right.items())))
            for p in scaled.split("test")
        }
        assert len(rendered) == 3 * n

    def test_labels_carried_over(self):
        base = load_dataset("fodors_zagats")
        n = len(base.split("test"))
        scaled = scale_dataset(base, 2 * n)
        base_labels = [p.label for p in base.split("test")]
        assert [p.label for p in scaled.split("test")] == base_labels * 2

    def test_demo_pools_untouched(self):
        base = load_dataset("fodors_zagats")
        scaled = scale_dataset(base, 500)
        assert scaled.train == base.train
        assert scaled.valid == base.valid


class TestScaleGuards:
    def test_ed_never_dirties_the_cell_under_scrutiny(self):
        base = load_dataset("hospital")
        n = len(base.split("test"))
        scaled = scale_dataset(base, 2 * n)
        for original, variant in zip(
            base.split("test"), scaled.split("test")[n:]
        ):
            assert variant.row[variant.attribute] == original.row[original.attribute]
            assert variant.label == original.label

    def test_di_never_touches_the_target_attribute(self):
        base = load_dataset("restaurant")
        n = len(base.split("test"))
        scaled = scale_dataset(base, 2 * n)
        target = base.target_attribute
        for original, variant in zip(
            base.split("test"), scaled.split("test")[n:]
        ):
            assert variant.row.get(target) == original.row.get(target)
            assert variant.answer == original.answer

    def test_nonpositive_scale_rejected(self):
        base = load_dataset("fodors_zagats")
        with pytest.raises(ValueError, match="positive"):
            scale_dataset(base, 0)

    def test_unsupported_dataset_type_rejected(self):
        sm = load_dataset("synthea")
        if sm.task in ("entity_matching", "error_detection", "imputation"):
            pytest.skip("need a non-EM/ED/DI dataset for this guard")
        with pytest.raises(ValueError, match="EM/ED/DI"):
            scale_dataset(sm, 10)

    def test_cli_run_accepts_scale(self):
        # The knob is plumbed through load_dataset(name, scale=...).
        scaled = load_dataset("fodors_zagats", scale=130)
        assert len(scaled.split("test")) == 130
