"""Tests for the generic EM pair generator and the seven dataset builders."""

import random

import pytest

from repro.datasets import load_dataset
from repro.datasets.em import build_em_dataset, generate_matching_pairs, split_3_1_1
from repro.datasets.em_datasets import EM_BUILDERS
from repro.datasets.perturb import PerturbationConfig


def _identity_render(entity):
    return {"name": entity}


CLEAN = PerturbationConfig(
    typo_rate=0, drop_token_rate=0, abbreviate_rate=0, case_rate=0,
    truncate_rate=0, noise_rate=0, null_rate=0,
)


class TestGenerator:
    def test_counts(self):
        entities = [f"entity {i} group{i % 3}" for i in range(40)]
        pairs = generate_matching_pairs(
            entities, _identity_render, _identity_render, CLEAN, CLEAN,
            group_key=lambda e: e.split()[-1],
            n_matches=10, n_hard_negatives=10, n_random_negatives=10,
            rng=random.Random(0),
        )
        assert sum(pair.label for pair in pairs) == 10
        assert sum(not pair.label for pair in pairs) == 20

    def test_matches_are_same_entity(self):
        entities = [f"unique-{i}" for i in range(20)]
        pairs = generate_matching_pairs(
            entities, _identity_render, _identity_render, CLEAN, CLEAN,
            group_key=lambda e: "all",
            n_matches=5, n_hard_negatives=5, n_random_negatives=5,
            rng=random.Random(1),
        )
        for pair in pairs:
            if pair.label:
                assert pair.left == pair.right
            else:
                assert pair.left != pair.right

    def test_hard_negatives_share_group(self):
        entities = [f"item-{i} g{i % 2}" for i in range(20)]
        pairs = generate_matching_pairs(
            entities, _identity_render, _identity_render, CLEAN, CLEAN,
            group_key=lambda e: e.split()[-1],
            n_matches=0, n_hard_negatives=8, n_random_negatives=0,
            rng=random.Random(2),
        )
        for pair in pairs:
            assert pair.left["name"].split()[-1] == pair.right["name"].split()[-1]

    def test_no_duplicate_pairs(self):
        entities = [f"e{i}" for i in range(30)]
        pairs = generate_matching_pairs(
            entities, _identity_render, _identity_render, CLEAN, CLEAN,
            group_key=lambda e: "g",
            n_matches=10, n_hard_negatives=20, n_random_negatives=20,
            rng=random.Random(3),
        )
        keys = [pair.key() for pair in pairs]
        assert len(set(keys)) == len(keys)

    def test_too_few_entities_rejected(self):
        with pytest.raises(ValueError):
            generate_matching_pairs(
                ["only"], _identity_render, _identity_render, CLEAN, CLEAN,
                group_key=lambda e: "g", n_matches=1, n_hard_negatives=0,
                n_random_negatives=0, rng=random.Random(0),
            )


class TestSplit311:
    def test_proportions(self):
        train, valid, test = split_3_1_1(list(range(100)), random.Random(0))
        assert len(train) == 60
        assert len(valid) == 20
        assert len(test) == 20

    def test_partition(self):
        items = list(range(57))
        train, valid, test = split_3_1_1(items, random.Random(1))
        assert sorted(train + valid + test) == items


class TestBuildEmDataset:
    def test_key_attribute_validation(self):
        with pytest.raises(ValueError):
            build_em_dataset(
                name="x", entities=["a", "b"], attributes=["name"],
                key_attributes=["bogus"], render_left=_identity_render,
                render_right=_identity_render, left_config=CLEAN,
                right_config=CLEAN, group_key=lambda e: "g",
                n_matches=1, n_hard_negatives=1, n_random_negatives=1, seed=0,
            )


@pytest.mark.parametrize("name", sorted(EM_BUILDERS))
class TestSevenDatasets:
    def test_splits_nonempty_and_mixed(self, name):
        dataset = load_dataset(name)
        for split_name in ("train", "valid", "test"):
            split = dataset.split(split_name)
            assert split, (name, split_name)
            labels = {pair.label for pair in split}
            assert labels == {True, False}, (name, split_name)

    def test_rows_use_declared_schema(self, name):
        dataset = load_dataset(name)
        schema = set(dataset.attributes)
        for pair in dataset.test[:20]:
            assert set(pair.left) <= schema
            assert set(pair.right) <= schema

    def test_deterministic(self, name):
        a = load_dataset(name)
        b = load_dataset(name)
        assert [p.key() for p in a.test] == [p.key() for p in b.test]

    def test_seed_changes_pairs(self, name):
        a = load_dataset(name)
        b = load_dataset(name, seed=999)
        assert [p.key() for p in a.test] != [p.key() for p in b.test]

    def test_unknown_split_rejected(self, name):
        with pytest.raises(KeyError):
            load_dataset(name).split("bogus")
