"""Unit tests for the engine's decision machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.fm.engine import _calibrate_threshold


class TestCalibrateThreshold:
    def test_empty_returns_prior(self):
        assert _calibrate_threshold([], 0.6) == 0.6

    def test_single_class_returns_prior(self):
        assert _calibrate_threshold([(0.9, True), (0.8, True)], 0.6) == 0.6
        assert _calibrate_threshold([(0.1, False)], 0.6) == 0.6

    def test_separable_demos_keep_prior_when_inside_band(self):
        scored = [(0.2, False), (0.3, False), (0.8, True), (0.9, True)]
        threshold = _calibrate_threshold(scored, 0.6)
        assert threshold == 0.6  # prior already error-free

    def test_prior_outside_band_gets_pulled_in(self):
        scored = [(0.2, False), (0.3, False), (0.8, True), (0.9, True)]
        threshold = _calibrate_threshold(scored, 0.05)
        # Must move off the hopeless prior; one tolerated demo error means
        # it may stop just above the first negative.
        assert 0.2 < threshold < 0.8

    def test_hard_outlier_tolerated(self):
        """One negative scoring above the positives must not force the
        threshold above them (the tolerance mechanism)."""
        scored = [(0.1, False), (0.15, False), (0.2, False), (0.87, False),
                  (0.7, True), (0.75, True), (0.8, True), (0.9, True)]
        threshold = _calibrate_threshold(scored, 0.6)
        assert threshold < 0.7

    def test_classifies_most_demos_correctly(self):
        scored = [(0.1, False), (0.2, False), (0.3, False),
                  (0.7, True), (0.8, True), (0.9, True)]
        threshold = _calibrate_threshold(scored, 0.95)
        errors = sum((s >= threshold) != l for s, l in scored)
        assert errors <= 1

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=1,
                                allow_nan=False), st.booleans()),
            min_size=1, max_size=16,
        ),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    )
    def test_threshold_always_in_unit_interval(self, scored, prior):
        threshold = _calibrate_threshold(scored, prior)
        assert -0.1 <= threshold <= 1.1


class TestConfidence:
    def test_confused_answers_have_zero_confidence(self, fm_175b):
        completion = fm_175b.complete_verbose("name: mystery. nothing_known?")
        if completion.text == "I'm not sure.":
            assert completion.confidence == 0.0

    def test_recall_beats_fallback(self, fm_175b):
        strong = fm_175b.complete_verbose("name: x. phone: 415-775-7036. city?")
        weak = fm_175b.complete_verbose("name: mystery. note: nothing. city?")
        assert strong.confidence > weak.confidence

    def test_wide_margin_beats_borderline(self, fm_175b):
        from repro.core.prompts import build_entity_matching_prompt
        from repro.datasets.base import MatchingPair

        anchor = [MatchingPair({"name": "anchor"}, {"name": "anchor"}, True),
                  MatchingPair({"name": "anchor"}, {"name": "zzz"}, False)]
        easy = build_entity_matching_prompt(
            MatchingPair({"name": "alpha beta"}, {"name": "alpha beta"}, False),
            anchor,
        )
        hard = build_entity_matching_prompt(
            MatchingPair({"name": "office suite 11.0"},
                         {"name": "office suite tools"}, False),
            anchor,
        )
        assert (fm_175b.complete_verbose(easy).confidence
                >= fm_175b.complete_verbose(hard).confidence)

    def test_client_forwards_verbose(self):
        from repro.api import CompletionClient

        client = CompletionClient("gpt3-175b")
        completion = client.complete_verbose("name: x. phone: 415-775-7036. city?")
        assert completion.text == "San Francisco"
        assert completion.confidence > 0.5

    def test_client_verbose_requires_capable_backend(self):
        from repro.api import CompletionClient

        class Plain:
            name = "plain"

            def complete(self, prompt, **kwargs):
                return "x"

        with pytest.raises(AttributeError):
            CompletionClient(Plain()).complete_verbose("p")
