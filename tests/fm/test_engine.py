"""Tests for the completion engine itself — behaviour through the text API."""

import pytest

from repro.core.prompts import (
    EntityMatchingPromptConfig,
    build_entity_matching_prompt,
    build_error_detection_prompt,
    build_imputation_prompt,
    build_schema_matching_prompt,
    build_transformation_prompt,
)
from repro.datasets.base import (
    ErrorExample,
    ImputationExample,
    MatchingPair,
    SchemaPair,
)
from repro.fm import SimulatedFoundationModel
from repro.knowledge.medical import OMOP_ATTRIBUTES, SYNTHEA_ATTRIBUTES


def _match_prompt(left, right, demos=(), **config_kwargs):
    pair = MatchingPair(left=left, right=right, label=False)
    config = EntityMatchingPromptConfig(**config_kwargs)
    return build_entity_matching_prompt(pair, list(demos), config)


class TestCompletionApi:
    def test_text_in_text_out(self, fm_175b):
        answer = fm_175b.complete("name: blue heron. phone: 415-775-7036. city?")
        assert isinstance(answer, str)

    def test_rejects_non_string(self, fm_175b):
        with pytest.raises(TypeError):
            fm_175b.complete(42)

    def test_deterministic_at_zero_temperature(self, fm_175b):
        prompt = _match_prompt({"name": "alpha"}, {"name": "alpha"})
        assert fm_175b.complete(prompt) == fm_175b.complete(prompt)

    def test_counts_completions(self):
        fm = SimulatedFoundationModel("gpt3-175b")
        fm.complete("hello there")
        fm.complete("name: a. city?")
        assert fm.n_completions == 2

    def test_complete_many(self, fm_175b):
        answers = fm_175b.complete_many(["name: a. city?", "name: b. city?"])
        assert len(answers) == 2

    def test_unknown_prompt_gets_free_text(self, fm_175b):
        answer = fm_175b.complete("Write a haiku about B-trees.")
        assert isinstance(answer, str) and answer

    def test_max_tokens_truncates(self, fm_175b):
        answer = fm_175b.complete("Write a haiku about B-trees.", max_tokens=1)
        assert len(answer) <= 8


class TestMatching:
    # A lone anchor demonstration avoids the (by-design) zero-shot
    # format-failure lottery, so these verdict tests are about similarity.
    ANCHOR = MatchingPair({"name": "anchor item"}, {"name": "anchor item"}, True)

    def test_obvious_match(self, fm_175b):
        prompt = _match_prompt(
            {"name": "sony digital camera DSC-W55"},
            {"name": "Sony DSC-W55 digital camera"},
            demos=[self.ANCHOR],
        )
        assert fm_175b.complete(prompt) == "Yes"

    def test_obvious_non_match(self, fm_175b):
        prompt = _match_prompt(
            {"name": "sony digital camera DSC-W55"},
            {"name": "canon laser printer LBP-6030"},
            demos=[self.ANCHOR],
        )
        assert fm_175b.complete(prompt) == "No"

    def test_zero_shot_sometimes_fails_format(self, fm_175b, world):
        """Without demonstrations some answers are not Yes/No at all."""
        from repro.datasets import load_dataset

        dataset = load_dataset("walmart_amazon")
        answers = set()
        for pair in dataset.test[:80]:
            answers.add(fm_175b.complete(_match_prompt(pair.left, pair.right)))
        assert answers - {"Yes", "No"}, "expected occasional free-text answers"

    def test_demonstrations_calibrate(self, fm_175b):
        demos = [
            MatchingPair({"name": "golden lotus"}, {"name": "golden lotus cafe"}, True),
            MatchingPair({"name": "golden lotus"}, {"name": "iron skillet"}, False),
        ]
        prompt = _match_prompt(
            {"name": "blue heron grill"}, {"name": "blue heron bar & grill"},
            demos=demos,
        )
        assert fm_175b.complete(prompt) == "Yes"

    def test_question_wording_can_change_answers(self, fm_175b, world):
        """Format brittleness: across borderline pairs and several unusual
        phrasings, at least one verdict must differ from 'the same?'."""
        from repro.datasets import load_dataset

        dataset = load_dataset("amazon_google")
        variants = (
            "Do {noun} A and {noun} B denote one product?",
            "Is {noun} A identical to {noun} B?",
            "Are {noun} A and {noun} B duplicates?",
        )
        changed = 0
        for pair in dataset.test[:100]:
            baseline = fm_175b.complete(_match_prompt(pair.left, pair.right))
            for question in variants:
                other = fm_175b.complete(
                    _match_prompt(pair.left, pair.right, question=question)
                )
                if other != baseline:
                    changed += 1
        assert changed >= 1


class TestErrorDetection:
    def test_zero_shot_defaults_to_no(self, fm_175b):
        example = ErrorExample(
            row={"workclass": "doctorate"}, attribute="workclass", label=True
        )
        prompt = build_error_detection_prompt(example, [])
        assert fm_175b.complete(prompt) == "No"

    def test_few_shot_catches_domain_swap(self, fm_175b):
        demos = [
            ErrorExample(row={"workclass": "private", "age": "30"},
                         attribute="workclass", label=False),
            ErrorExample(row={"workclass": "male", "age": "41"},
                         attribute="workclass", label=True),
        ]
        query = ErrorExample(
            row={"workclass": "doctorate", "age": "50"},
            attribute="workclass", label=True,
        )
        prompt = build_error_detection_prompt(query, demos)
        assert fm_175b.complete(prompt) == "Yes"

    def test_small_model_misses_typos_few_shot(self, fm_67b):
        demos = [
            ErrorExample(row={"city": "boston"}, attribute="city", label=False),
            ErrorExample(row={"city": "chicxgo"}, attribute="city", label=True),
        ]
        query = ErrorExample(row={"city": "bxston"}, attribute="city", label=True)
        prompt = build_error_detection_prompt(query, demos)
        assert fm_67b.complete(prompt) == "No"


class TestImputation:
    def test_knowledge_recall(self, fm_175b):
        example = ImputationExample(
            row={"name": "blue heron", "phone": "415-775-7036", "city": None},
            attribute="city", answer="san francisco",
        )
        prompt = build_imputation_prompt(example, [])
        assert "san francisco" in fm_175b.complete(prompt).casefold()

    def test_demonstrations_ground_casing(self, fm_175b):
        demos = [
            ImputationExample(
                row={"name": "x", "phone": "617-111-2222", "city": None},
                attribute="city", answer="boston",
            ),
        ]
        query = ImputationExample(
            row={"name": "y", "phone": "415-775-7036", "city": None},
            attribute="city", answer="san francisco",
        )
        prompt = build_imputation_prompt(query, demos)
        assert fm_175b.complete(prompt) == "san francisco"

    def test_small_model_wrong_identity_right_type(self, fm_13b, world):
        tail = world.tail_cities[0]
        example = ImputationExample(
            row={"name": "z", "phone": f"{tail.primary_area_code}-555-0000",
                 "city": None},
            attribute="city", answer=tail.name,
        )
        prompt = build_imputation_prompt(example, [])
        answer = fm_13b.complete(prompt)
        assert answer  # says *something* city-shaped
        assert tail.name.casefold() not in answer.casefold()


class TestSchemaMatching:
    def _pair(self, left_name, right_name):
        left = next(a for a in SYNTHEA_ATTRIBUTES if a.name == left_name)
        right = next(a for a in OMOP_ATTRIBUTES if a.name == right_name)
        return SchemaPair(left=left, right=right, label=False)

    def test_zero_shot_collapses(self, fm_175b):
        prompt = build_schema_matching_prompt(self._pair("birthdate", "birth_datetime"), [])
        assert fm_175b.complete(prompt) != "Yes"

    def test_few_shot_finds_synonym_pair(self, fm_175b):
        demos = [
            SchemaPair(
                left=SYNTHEA_ATTRIBUTES[10], right=OMOP_ATTRIBUTES[8], label=True
            ),  # city ↔ city
            SchemaPair(
                left=SYNTHEA_ATTRIBUTES[10], right=OMOP_ATTRIBUTES[0], label=False
            ),
        ]
        prompt = build_schema_matching_prompt(
            self._pair("birthdate", "birth_datetime"), demos
        )
        assert fm_175b.complete(prompt) == "Yes"


class TestTransformation:
    def test_exact_demo_lookup(self, fm_175b):
        prompt = build_transformation_prompt("a", [("a", "b"), ("c", "d")])
        assert fm_175b.complete(prompt) == "b"

    def test_knowledge_transform(self, fm_175b):
        prompt = build_transformation_prompt(
            "Chicago",
            [("Seattle", "WA"), ("Boston", "MA"), ("Denver", "CO")],
        )
        assert fm_175b.complete(prompt) == "IL"

    def test_syntactic_transform(self, fm_175b):
        prompt = build_transformation_prompt(
            "notes.txt",
            [("report.pdf", "pdf"), ("summary.csv", "csv"), ("a.json", "json")],
        )
        assert fm_175b.complete(prompt) == "txt"

    def test_no_demos_echoes_without_instruction(self, fm_175b):
        prompt = build_transformation_prompt("opaque-input", [])
        assert fm_175b.complete(prompt) == "opaque-input"
