"""Tests for repro.fm.parsing — including the prompt-format round trip.

The core contract of the repository: every prompt ``repro.core.prompts``
can build must parse back into the structure it encodes.  These round-trip
property tests are what keeps the prompting framework and the simulated
model in sync.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.prompts import (
    EntityMatchingPromptConfig,
    ErrorDetectionPromptConfig,
    ImputationPromptConfig,
    build_entity_matching_prompt,
    build_error_detection_prompt,
    build_imputation_prompt,
    build_transformation_prompt,
)
from repro.datasets.base import ErrorExample, ImputationExample, MatchingPair
from repro.fm.parsing import (
    ErrorExampleParsed,
    ImputeExampleParsed,
    MatchExample,
    TransformExampleParsed,
    parse_prompt,
    parse_serialized_entity,
)

value = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters=" -"),
    min_size=1, max_size=15,
).map(lambda s: " ".join(s.split())).filter(bool)


class TestParseSerializedEntity:
    def test_basic(self):
        parsed = parse_serialized_entity("name: golden lotus. city: boston")
        assert parsed == {"name": "golden lotus", "city": "boston"}

    def test_values_with_periods(self):
        parsed = parse_serialized_entity("addr: 12 main st. city: new york")
        assert parsed == {"addr": "12 main st", "city": "new york"}

    def test_empty_value(self):
        parsed = parse_serialized_entity("name: sony. price: . brand: x")
        assert parsed["price"] == ""

    def test_no_keys_returns_none(self):
        assert parse_serialized_entity("just some words") is None

    def test_spaced_attribute_names(self):
        parsed = parse_serialized_entity("Beer Name: hazy trail. ABV: 6.5%")
        assert parsed is not None
        assert parsed["Beer Name"] == "hazy trail"


class TestMatchRoundTrip:
    def _pair(self, left, right, label=False):
        return MatchingPair(left=left, right=right, label=label)

    def test_zero_shot_query(self):
        prompt = build_entity_matching_prompt(
            self._pair({"name": "a"}, {"name": "b"}), []
        )
        parsed = parse_prompt(prompt)
        assert parsed.task == "match"
        assert isinstance(parsed.query, MatchExample)
        assert parsed.query.label is None
        assert parsed.demonstrations == []

    def test_few_shot_demo_labels(self):
        demos = [
            self._pair({"name": "x"}, {"name": "x"}, True),
            self._pair({"name": "x"}, {"name": "y"}, False),
        ]
        prompt = build_entity_matching_prompt(
            self._pair({"name": "q1"}, {"name": "q2"}), demos
        )
        parsed = parse_prompt(prompt)
        assert [demo.label for demo in parsed.demonstrations] == [True, False]

    def test_custom_noun_preserved(self):
        config = EntityMatchingPromptConfig(entity_noun="Song")
        prompt = build_entity_matching_prompt(
            self._pair({"t": "a"}, {"t": "b"}), [], config
        )
        parsed = parse_prompt(prompt)
        assert parsed.task == "match"
        assert parsed.query.noun == "Song"

    def test_question_text_captured(self):
        config = EntityMatchingPromptConfig(
            question="Are {noun} A and {noun} B equivalent?"
        )
        prompt = build_entity_matching_prompt(
            self._pair({"t": "a"}, {"t": "b"}), [], config
        )
        assert "equivalent?" in parse_prompt(prompt).question_text

    @given(
        rows=st.lists(
            st.fixed_dictionaries({"name": value, "city": value}), min_size=2,
            max_size=4,
        ),
        labels=st.lists(st.booleans(), min_size=1, max_size=3),
    )
    def test_roundtrip_entity_values(self, rows, labels):
        demos = [
            MatchingPair(left=rows[0], right=rows[1], label=label)
            for label in labels
        ]
        query = MatchingPair(left=rows[-1], right=rows[0], label=False)
        prompt = build_entity_matching_prompt(query, demos)
        parsed = parse_prompt(prompt)
        assert parsed.task == "match"
        assert len(parsed.demonstrations) == len(demos)
        left = parse_serialized_entity(parsed.query.left_text)
        assert left is not None
        assert left["name"] == rows[-1]["name"].strip()


class TestErrorRoundTrip:
    def _example(self, label=False):
        return ErrorExample(
            row={"city": "bxston", "state": "ma"}, attribute="city", label=label
        )

    def test_query_fields(self):
        prompt = build_error_detection_prompt(self._example(), [])
        parsed = parse_prompt(prompt)
        assert parsed.task == "error"
        assert parsed.query.attribute == "city"
        assert parsed.query.value == "bxston"
        assert parsed.query.label is None

    def test_demo_label(self):
        prompt = build_error_detection_prompt(
            self._example(), [self._example(label=True)]
        )
        parsed = parse_prompt(prompt)
        assert parsed.demonstrations[0].label is True

    def test_context_carried(self):
        prompt = build_error_detection_prompt(self._example(), [])
        parsed = parse_prompt(prompt)
        assert "state" in parsed.query.context_text

    def test_without_row_context(self):
        config = ErrorDetectionPromptConfig(include_row_context=False)
        prompt = build_error_detection_prompt(self._example(), [], config)
        parsed = parse_prompt(prompt)
        assert parsed.task == "error"
        assert parsed.query.context_text == ""


class TestImputeRoundTrip:
    def _example(self, answer=""):
        return ImputationExample(
            row={"name": "blue heron", "phone": "415-775-7036", "city": None},
            attribute="city",
            answer=answer,
        )

    def test_query(self):
        prompt = build_imputation_prompt(self._example(), [])
        parsed = parse_prompt(prompt)
        assert parsed.task == "impute"
        assert parsed.query.attribute == "city"
        assert parsed.query.answer is None

    def test_demo_answer(self):
        prompt = build_imputation_prompt(
            self._example(), [self._example(answer="san francisco")]
        )
        parsed = parse_prompt(prompt)
        assert parsed.demonstrations[0].answer == "san francisco"

    def test_context_excludes_target(self):
        prompt = build_imputation_prompt(self._example(), [])
        parsed = parse_prompt(prompt)
        context = parse_serialized_entity(parsed.query.context_text)
        assert context is not None and "city" not in context


class TestTransformRoundTrip:
    def test_query_and_demos(self):
        prompt = build_transformation_prompt("input-x", [("a", "b"), ("c", "d")])
        parsed = parse_prompt(prompt)
        assert parsed.task == "transform"
        assert parsed.query.source == "input-x"
        assert parsed.query.target is None
        assert [(d.source, d.target) for d in parsed.demonstrations] == [
            ("a", "b"), ("c", "d"),
        ]


class TestInstructionAndUnknown:
    def test_instruction_block_captured(self):
        prompt = build_transformation_prompt("x", [], None)
        # Manually prepend an instruction, as TransformationPromptConfig does.
        from repro.core.prompts import TransformationPromptConfig

        config = TransformationPromptConfig(instruction="Convert to ISO format.")
        prompt = build_transformation_prompt("x", [], config)
        parsed = parse_prompt(prompt)
        assert parsed.instruction == "Convert to ISO format."

    def test_unknown_prompt(self):
        parsed = parse_prompt("Tell me a story about databases.")
        assert parsed.task == "unknown"

    def test_empty_prompt(self):
        assert parse_prompt("").task == "unknown"

    def test_mixed_demos_dropped(self):
        """Demos of a different task shape than the query are ignored."""
        prompt = (
            "Input: a\nOutput: b\n\n"
            "name: x. city?"
        )
        parsed = parse_prompt(prompt)
        assert parsed.task == "impute"
        assert parsed.demonstrations == []
