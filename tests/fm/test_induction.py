"""Tests for repro.fm.induction — in-context program induction."""

import pytest

from repro.fm.induction import (
    induce_knowledge_relation,
    induce_string_program,
    induce_transformation,
)
from repro.fm.profiles import get_profile

P175 = get_profile("gpt3-175b")
P13 = get_profile("gpt3-1.3b")


class TestKnowledgeRoute:
    def test_city_to_state(self, kb):
        examples = [("Seattle", "WA"), ("Boston", "MA"), ("Denver", "CO")]
        assert induce_knowledge_relation(examples, kb, P175.knowledge_floor) == "city_to_state"

    def test_month_to_number(self, kb):
        examples = [("March", "3"), ("July", "7")]
        assert induce_knowledge_relation(examples, kb, P175.knowledge_floor) == "month_to_number"

    def test_single_example_insufficient(self, kb):
        assert induce_knowledge_relation([("Seattle", "WA")], kb, 0.0) is None

    def test_inconsistent_examples_rejected(self, kb):
        examples = [("Seattle", "WA"), ("Boston", "XX")]
        assert induce_knowledge_relation(examples, kb, 0.0) is None

    def test_floor_blocks_tail_facts(self, world):
        tail = world.tail_cities[0]
        examples = [
            (tail.primary_area_code, tail.name),
            (world.tail_cities[1].primary_area_code, world.tail_cities[1].name),
        ]
        assert induce_knowledge_relation(examples, world.kb, P175.knowledge_floor) is None
        # With a zero floor the relation IS there — the gating is the floor.
        assert induce_knowledge_relation(examples, world.kb, 0.0) == "area_code_to_city"


class TestSyntacticRoute:
    def test_depth_one_take(self):
        examples = [("a-b-c", "b"), ("x-y-z", "y"), ("1-2-3", "2")]
        hypothesis = induce_string_program(examples, P175)
        assert hypothesis is not None
        name, program = hypothesis
        assert program("p-q-r") == "q"

    def test_depth_two_composition(self):
        examples = [("net_total", "Net Total"), ("tax_rate", "Tax Rate")]
        hypothesis = induce_string_program(examples, P175)
        assert hypothesis is not None
        assert hypothesis[1]("unit_price") == "Unit Price"

    def test_affix_inference(self):
        examples = [("alpha", '"alpha",'), ("beta", '"beta",')]
        hypothesis = induce_string_program(examples, P175)
        assert hypothesis is not None
        assert hypothesis[1]("gamma") == '"gamma",'

    def test_zfill_inference(self):
        examples = [("7", "00007"), ("123", "00123")]
        hypothesis = induce_string_program(examples, P175)
        assert hypothesis is not None
        assert hypothesis[1]("9") == "00009"

    def test_small_model_misses_depth_two(self):
        examples = [("net_total", "Net Total"), ("tax_rate", "Tax Rate")]
        assert induce_string_program(examples, P13) is None

    def test_unsolvable_returns_none(self):
        examples = [("January", "1"), ("February", "2"), ("March", "3")]
        assert induce_string_program(examples, P175) is None

    def test_empty_examples(self):
        assert induce_string_program([], P175) is None

    def test_program_consistent_on_training_examples(self):
        cases = [
            [("Doe, John", "John Doe"), ("Chen, Ada", "Ada Chen")],
            [("report.pdf", "pdf"), ("notes.txt", "txt")],
            [("$1,299.99", "1299.99"), ("$4,100.10", "4100.10")],
        ]
        for examples in cases:
            hypothesis = induce_string_program(examples, P175)
            assert hypothesis is not None, examples
            _name, program = hypothesis
            for source, target in examples:
                assert program(source) == target


class TestCombined:
    def test_prefers_knowledge_over_syntax(self, kb):
        # Month → its own number could never be syntactic; the combined
        # inducer should find the KB relation.
        examples = [("March", "3"), ("July", "7"), ("December", "12")]
        hypothesis = induce_transformation(examples, P175, kb)
        assert hypothesis is not None
        name, program = hypothesis
        assert name.startswith("kb:")
        assert program("May") == "5"

    def test_date_route(self, kb):
        examples = [("Mar 14, 2011", "2011-03-14"), ("Jan 2, 1999", "1999-01-02")]
        hypothesis = induce_transformation(examples, P175, kb)
        assert hypothesis is not None
        assert hypothesis[0].startswith("date:")
        assert hypothesis[1]("Aug 9, 2003") == "2003-08-09"

    def test_falls_back_to_syntax(self, kb):
        examples = [("a|b", "a"), ("c|d", "c"), ("x|y", "x")]
        hypothesis = induce_transformation(examples, P175, kb)
        assert hypothesis is not None
        assert hypothesis[1]("m|n") == "m"
