"""Tests for repro.fm.dates."""

import pytest
from hypothesis import given, strategies as st

from repro.fm.dates import (
    RENDER_FORMATS,
    ParsedDate,
    induce_date_conversion,
    parse_date,
    render_date,
)

dates = st.builds(
    ParsedDate,
    year=st.integers(min_value=1900, max_value=2099),
    month=st.integers(min_value=1, max_value=12),
    day=st.integers(min_value=1, max_value=28),
    layout=st.just("iso"),
)


class TestParse:
    @pytest.mark.parametrize("text,expected", [
        ("2011-03-14", (2011, 3, 14)),
        ("03/14/2011", (2011, 3, 14)),
        ("3-4-2011", (2011, 3, 4)),
        ("Mar 14, 2011", (2011, 3, 14)),
        ("March 14 2011", (2011, 3, 14)),
        ("14 March 2011", (2011, 3, 14)),
    ])
    def test_layouts(self, text, expected):
        date = parse_date(text)
        assert date is not None
        assert (date.year, date.month, date.day) == expected

    @pytest.mark.parametrize("text", [
        "not a date", "2011-13-01", "2011-00-10", "Mar 40, 2011", "14/03/20112",
    ])
    def test_rejections(self, text):
        assert parse_date(text) is None


class TestRender:
    def test_iso(self):
        date = ParsedDate(2011, 3, 4, "iso")
        assert render_date(date, "iso") == "2011-03-04"

    def test_textual_abbrev(self):
        date = ParsedDate(2011, 3, 4, "iso")
        assert render_date(date, "textual_mdy_abbrev") == "Mar 4, 2011"

    def test_unknown_layout(self):
        with pytest.raises(ValueError):
            render_date(ParsedDate(2011, 1, 1, "iso"), "bogus")

    @given(dates, st.sampled_from(RENDER_FORMATS))
    def test_render_parse_roundtrip(self, date, layout):
        text = render_date(date, layout)
        parsed = parse_date(text)
        assert parsed is not None
        assert (parsed.year, parsed.month, parsed.day) == (
            date.year, date.month, date.day,
        )


class TestInduction:
    def test_learns_output_layout(self):
        examples = [("Mar 14, 2011", "2011-03-14"), ("Jan 2, 1999", "1999-01-02")]
        assert induce_date_conversion(examples) == "iso"

    def test_rejects_non_dates(self):
        assert induce_date_conversion([("hello", "world")]) is None

    def test_rejects_inconsistent(self):
        examples = [("Mar 14, 2011", "2011-03-14"), ("Jan 2, 1999", "01/02/1999")]
        assert induce_date_conversion(examples) is None

    def test_empty(self):
        assert induce_date_conversion([]) is None
