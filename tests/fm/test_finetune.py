"""Tests for repro.fm.finetune."""

import pytest

from repro.core.metrics import accuracy, binary_metrics, normalize_answer
from repro.datasets import load_dataset
from repro.fm import AdapterModel, FinetunedModel


@pytest.fixture(scope="module")
def walmart():
    return load_dataset("walmart_amazon")


@pytest.fixture(scope="module")
def restaurant():
    return load_dataset("restaurant")


@pytest.fixture(scope="module")
def hospital():
    return load_dataset("hospital")


class TestBookkeeping:
    def test_full_trains_all_parameters(self, walmart):
        model = FinetunedModel("gpt3-6.7b")
        result = model.fit_matching(walmart.train[:60])
        assert result.n_trainable_parameters == 6_700_000_000
        assert result.mode == "full"
        assert result.n_samples == 60

    def test_adapter_trains_five_percent(self, walmart):
        model = AdapterModel("gpt3-6.7b")
        result = model.fit_matching(walmart.train[:60])
        assert result.n_trainable_parameters == int(6_700_000_000 * 0.05)
        assert result.mode == "adapter"

    def test_name_includes_mode(self):
        assert FinetunedModel("gpt3-1.3b").name == "gpt3-1.3b-full"
        assert AdapterModel("gpt3-6.7b").name == "gpt3-6.7b-adapter"


class TestMatching:
    def test_learns_matching(self, walmart):
        model = FinetunedModel("gpt3-6.7b")
        model.fit_matching(walmart.train)
        predictions = [model.predict_matching(p) for p in walmart.test[:80]]
        f1 = binary_metrics(predictions, [p.label for p in walmart.test[:80]]).f1
        assert f1 > 0.7

    def test_wrong_task_raises(self, walmart, restaurant):
        model = FinetunedModel("gpt3-6.7b")
        model.fit_matching(walmart.train[:40])
        with pytest.raises(RuntimeError):
            model.predict_imputation(restaurant.test[0])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            FinetunedModel("gpt3-6.7b").fit_matching([])


class TestImputation:
    def test_learns_train_values(self, restaurant):
        model = FinetunedModel("gpt3-6.7b")
        model.fit_imputation(restaurant.train)
        predictions = [model.predict_imputation(e) for e in restaurant.test]
        answers = [e.answer for e in restaurant.test]
        assert accuracy(predictions, answers) > 0.4

    def test_label_space_closed_over_train(self, restaurant):
        """Finetuned heads can only emit values seen in training — the
        mechanism behind Table 5's freq=0 row."""
        model = FinetunedModel("gpt3-6.7b")
        model.fit_imputation(restaurant.train[:50])
        train_answers = {
            normalize_answer(e.answer) for e in restaurant.train[:50]
        }
        for example in restaurant.test[:40]:
            prediction = model.predict_imputation(example)
            assert normalize_answer(prediction) in train_answers

    def test_adapter_friendlier_to_rare_classes(self, restaurant):
        """Adapter prior is flatter than full finetuning's."""
        full = FinetunedModel("gpt3-6.7b")
        adapter = AdapterModel("gpt3-6.7b")
        assert adapter._imputation_hyperparameters()[1] < \
            full._imputation_hyperparameters()[1]


class TestErrorDetection:
    def test_full_learns_hospital(self, hospital):
        model = FinetunedModel("gpt3-6.7b")
        model.fit_error_detection(hospital.train)
        predictions = [model.predict_error(e) for e in hospital.test[:400]]
        f1 = binary_metrics(predictions, [e.label for e in hospital.test[:400]]).f1
        assert f1 > 0.6

    def test_adapter_blind_to_character_errors(self, hospital):
        """Frozen 6.7B base ⇒ no character-level features ⇒ the adapter
        cannot learn Hospital (paper Figure 5, claim 2)."""
        model = AdapterModel("gpt3-6.7b")
        model.fit_error_detection(hospital.train)
        predictions = [model.predict_error(e) for e in hospital.test[:400]]
        f1 = binary_metrics(predictions, [e.label for e in hospital.test[:400]]).f1
        assert f1 < 0.4

    def test_adapter_on_175b_base_sees_characters(self, hospital):
        """An adapter on a base that CAN do character reasoning inherits it."""
        model = AdapterModel("gpt3-175b")
        model.fit_error_detection(hospital.train)
        predictions = [model.predict_error(e) for e in hospital.test[:400]]
        f1 = binary_metrics(predictions, [e.label for e in hospital.test[:400]]).f1
        assert f1 > 0.6
