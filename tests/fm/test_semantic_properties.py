"""Property tests on the semantic comparator's invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fm.profiles import get_profile
from repro.fm.semantic import SemanticComparator

value = st.text(alphabet="abcdef 0123.-", min_size=0, max_size=18)


@pytest.fixture(scope="module")
def comparator():
    from repro.knowledge import default_knowledge

    return SemanticComparator(get_profile("gpt3-175b"), default_knowledge())


class TestValueSimilarityProperties:
    @given(a=value, b=value)
    @settings(max_examples=150)
    def test_symmetry(self, a, b):
        from repro.knowledge import default_knowledge

        comparator = SemanticComparator(get_profile("gpt3-175b"), default_knowledge())
        forward = comparator.value_similarity(a, b)
        backward = comparator.value_similarity(b, a)
        # Alias lookups and jargon-noise keys are symmetric by
        # construction; the whole metric must be too.
        assert forward == pytest.approx(backward, abs=1e-9)

    @given(a=value)
    def test_identity(self, a):
        from repro.knowledge import default_knowledge

        comparator = SemanticComparator(get_profile("gpt3-175b"), default_knowledge())
        assert comparator.value_similarity(a, a) == 1.0

    @given(a=value, b=value)
    def test_deeper_models_are_not_worse_on_typo_pairs(self, a, b):
        """Depth ordering shows up as a *systematic* advantage on fuzzy
        pairs; individual pairs may flip because jargon noise differs per
        profile, so we assert only the bounded range here."""
        from repro.knowledge import default_knowledge

        kb = default_knowledge()
        for name in ("gpt3-1.3b", "gpt3-175b"):
            score = SemanticComparator(get_profile(name), kb).value_similarity(a, b)
            assert 0.0 <= score <= 1.0


class TestEntitySimilarityProperties:
    @given(
        name=st.text(alphabet="abc ", min_size=1, max_size=10),
        city=st.text(alphabet="xyz ", min_size=1, max_size=10),
    )
    def test_identical_serializations_score_one(self, comparator, name, city):
        text = f"name: {name.strip() or 'n'}. city: {city.strip() or 'c'}"
        assert comparator.entity_similarity(text, text) == 1.0

    def test_monotone_in_agreement(self, comparator):
        base = "name: alpha beta. city: boston. phone: 4155550000"
        one_off = "name: alpha beta. city: denver. phone: 4155550000"
        two_off = "name: gamma delta. city: denver. phone: 4155550000"
        assert comparator.entity_similarity(base, base) >= \
            comparator.entity_similarity(base, one_off) >= \
            comparator.entity_similarity(base, two_off)
