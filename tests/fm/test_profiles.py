"""Tests for repro.fm.profiles."""

import pytest

from repro.fm.profiles import MODEL_PROFILES, ModelProfile, get_profile


class TestRegistry:
    def test_three_sizes(self):
        assert set(MODEL_PROFILES) == {"gpt3-1.3b", "gpt3-6.7b", "gpt3-175b"}

    def test_lookup_by_full_name(self):
        assert get_profile("gpt3-175b").name == "gpt3-175b"

    def test_lookup_by_suffix(self):
        assert get_profile("175b").name == "gpt3-175b"

    def test_lookup_case_insensitive(self):
        assert get_profile("GPT3-6.7B").name == "gpt3-6.7b"

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_profile("gpt3-13b")


class TestScaling:
    """Capabilities must scale monotonically with size — the entire
    simulation rests on this."""

    ORDER = ("gpt3-1.3b", "gpt3-6.7b", "gpt3-175b")

    @pytest.mark.parametrize("capability", [
        "semantic_depth", "instruction_following", "icl_strength",
    ])
    def test_monotone_increasing(self, capability):
        values = [getattr(get_profile(name), capability) for name in self.ORDER]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_knowledge_floor_decreases_with_size(self):
        floors = [get_profile(name).knowledge_floor for name in self.ORDER]
        assert floors == sorted(floors, reverse=True)

    def test_format_sensitivity_decreases_with_size(self):
        values = [get_profile(name).format_sensitivity for name in self.ORDER]
        assert values == sorted(values, reverse=True)

    def test_only_175b_spots_character_errors(self):
        assert get_profile("gpt3-175b").can_spot_character_errors
        assert not get_profile("gpt3-6.7b").can_spot_character_errors
        assert not get_profile("gpt3-1.3b").can_spot_character_errors

    def test_parameter_counts(self):
        assert get_profile("gpt3-175b").n_parameters == 175_000_000_000


class TestValidation:
    def test_capability_out_of_range(self):
        with pytest.raises(ValueError):
            ModelProfile(
                name="x", n_parameters=1, knowledge_floor=0,
                semantic_depth=1.5, instruction_following=0.5,
                icl_strength=0.5, format_sensitivity=0.5,
            )

    def test_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            ModelProfile(
                name="x", n_parameters=0, knowledge_floor=0,
                semantic_depth=0.5, instruction_following=0.5,
                icl_strength=0.5, format_sensitivity=0.5,
            )

    def test_negative_floor(self):
        with pytest.raises(ValueError):
            ModelProfile(
                name="x", n_parameters=1, knowledge_floor=-1,
                semantic_depth=0.5, instruction_following=0.5,
                icl_strength=0.5, format_sensitivity=0.5,
            )
