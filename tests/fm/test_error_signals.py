"""Tests for repro.fm.error_signals."""

import pytest

from repro.fm.error_signals import ErrorSignalModel
from repro.fm.lexicon import default_lexicon
from repro.fm.parsing import ErrorExampleParsed
from repro.fm.profiles import get_profile

P175 = get_profile("gpt3-175b")
P67 = get_profile("gpt3-6.7b")


def demo(attribute, value, label, context=""):
    return ErrorExampleParsed(
        context_text=context, attribute=attribute, value=value,
        question="", label=label,
    )


@pytest.fixture(scope="module")
def lexicon(request):
    return default_lexicon()


@pytest.fixture()
def hospital_signals(lexicon, kb):
    demos = [
        demo("city", "boston", False,
             "city: boston. state: ma. zip_code: 02101. provider_number: 10001"),
        demo("zip_code", "02105", False,
             "city: boston. state: ma. zip_code: 02105. provider_number: 10002"),
        demo("city", "bxston", True,
             "city: bxston. state: ma. zip_code: 02101. provider_number: 10003"),
    ]
    return ErrorSignalModel(demos, P175, lexicon, kb)


class TestTypoSignal:
    def test_near_miss_of_lexicon_word(self, hospital_signals):
        assert hospital_signals.typo_signal("city", "chicxgo")

    def test_clean_lexicon_word_passes(self, hospital_signals):
        assert not hospital_signals.typo_signal("city", "chicago")

    def test_digits_with_x(self, hospital_signals):
        assert hospital_signals.typo_signal("provider_number", "100x5")

    def test_clean_number_passes(self, hospital_signals):
        assert not hospital_signals.typo_signal("provider_number", "10455")

    def test_unanimous_pattern_deviation(self, hospital_signals):
        # zip_code pattern in demos is "9"; a letter inside deviates.
        assert hospital_signals.typo_signal("zip_code", "021x5")

    def test_known_dirty_values_not_absorbed(self, lexicon, kb):
        """A value labeled dirty must stay detectable even when it also
        appears in another demo's context row."""
        demos = [
            demo("city", "bxston", True, "city: bxston. state: ma"),
            demo("state", "ma", False, "city: bxston. state: ma"),
        ]
        signals = ErrorSignalModel(demos, P175, lexicon, kb)
        assert signals.typo_signal("city", "bxston")


class TestDomainSignal:
    @pytest.fixture()
    def adult_signals(self, lexicon, kb):
        demos = [
            demo("age", "47", False, "age: 47. workclass: private. sex: male"),
            demo("age", "31", False, "age: 31. workclass: state-gov. sex: female"),
        ]
        return ErrorSignalModel(demos, P175, lexicon, kb)

    def test_kb_domain_violation(self, adult_signals):
        # "sales" is occupation knowledge, wherever the demos are silent.
        assert adult_signals.domain_signal("race", "sales")

    def test_kb_domain_match_is_clean(self, adult_signals):
        assert not adult_signals.domain_signal("workclass", "federal-gov")

    def test_numeric_out_of_range(self, adult_signals):
        assert adult_signals.domain_signal("age", "999")

    def test_negative_number_flagged(self, adult_signals):
        assert adult_signals.domain_signal("age", "-5")

    def test_numeric_within_extended_range_clean(self, adult_signals):
        assert not adult_signals.domain_signal("age", "20")

    def test_numbers_never_cross_domain(self, lexicon, kb):
        demos = [
            demo("age", "47", False, "age: 47. hours_per_week: 19"),
            demo("age", "31", False, "age: 31. hours_per_week: 40"),
        ]
        signals = ErrorSignalModel(demos, P175, lexicon, kb)
        # 19 appears as an hours value in context; as an age it is fine.
        assert not signals.domain_signal("age", "19")


class TestDecision:
    def test_typo_gated_on_depth(self, lexicon, kb):
        demos = [demo("city", "boston", False, "city: boston")]
        large = ErrorSignalModel(demos, P175, lexicon, kb)
        small = ErrorSignalModel(demos, P67, lexicon, kb)
        assert large.is_error("city", "bxston")
        assert not small.is_error("city", "bxston")

    def test_domain_available_to_small_models(self, lexicon, kb):
        demos = [demo("age", "47", False, "age: 47. sex: male")]
        small = ErrorSignalModel(demos, P67, lexicon, kb)
        assert small.is_error("race", "sales")

    def test_empty_value_never_error(self, hospital_signals):
        assert not hospital_signals.is_error("city", "")
