"""Tests for repro.fm.lexicon."""

from repro.fm.lexicon import default_lexicon


class TestLexicon:
    def test_cached(self, world):
        assert default_lexicon(world) is default_lexicon(world)

    def test_contains_world_entities(self, world):
        lexicon = default_lexicon(world)
        assert "birmingham" in lexicon
        assert "pcanywhere" not in lexicon  # not in this world's catalogue
        restaurant = world.restaurants[0]
        for token in restaurant.name.split():
            assert token.casefold().strip("&") in lexicon or token == "&"

    def test_contains_domain_vocab(self, world):
        lexicon = default_lexicon(world)
        for token in ("aspirin", "antibiotic", "doctorate", "hs-grad",
                      "memorial", "boulevard"):
            assert token in lexicon, token

    def test_contains_core_english(self, world):
        lexicon = default_lexicon(world)
        assert {"the", "and", "hospital", "street"} <= lexicon

    def test_gibberish_absent(self, world):
        lexicon = default_lexicon(world)
        assert "bxston" not in lexicon
        assert "zqzzx" not in lexicon

    def test_reasonable_size(self, world):
        assert 1000 < len(default_lexicon(world)) < 50000
