"""Tests for repro.fm.semantic — the comparator's mechanisms."""

import pytest
from hypothesis import given, strategies as st

from repro.fm.profiles import get_profile
from repro.fm.semantic import SemanticComparator, stable_unit

value = st.text(alphabet="abcdef 0123", min_size=0, max_size=15)


@pytest.fixture(scope="module")
def comparator(request):
    from repro.knowledge import default_knowledge

    return SemanticComparator(get_profile("gpt3-175b"), default_knowledge())


@pytest.fixture(scope="module")
def shallow(request):
    from repro.knowledge import default_knowledge

    return SemanticComparator(get_profile("gpt3-1.3b"), default_knowledge())


class TestStableUnit:
    def test_deterministic(self):
        assert stable_unit("key") == stable_unit("key")

    def test_keys_differ(self):
        assert stable_unit("a") != stable_unit("b")

    @given(st.text(max_size=30))
    def test_unit_interval(self, key):
        assert 0.0 <= stable_unit(key) < 1.0


class TestValueSimilarity:
    def test_identical(self, comparator):
        assert comparator.value_similarity("sony camera", "sony camera") == 1.0

    def test_normalized_equal(self, comparator):
        assert comparator.value_similarity("Main St.", "main street") == 1.0

    def test_both_empty(self, comparator):
        assert comparator.value_similarity("", "") == 1.0
        assert comparator.value_similarity(None, None) == 1.0

    def test_one_empty(self, comparator):
        assert comparator.value_similarity("x", "") == 0.0

    def test_typo_tolerated_by_deep_model(self, comparator):
        score = comparator.value_similarity("golden lotus cafe", "golden lotuss cafe")
        assert score > 0.85

    def test_shallow_model_punishes_typos_more(self, comparator, shallow):
        a, b = "golden lotus cafe", "goldden lotsus caffe"
        assert shallow.value_similarity(a, b) < comparator.value_similarity(a, b)

    def test_alias_knowledge(self, comparator):
        assert comparator.value_similarity("hp", "Hewlett-Packard") > 0.9

    def test_alias_gated_by_floor(self, shallow, comparator):
        # Venue aliases (freq 80) are recallable by both; jargon synonyms
        # (freq < 1) only by the 175B model.
        assert comparator.value_similarity("ssn", "person source value") > 0.9
        assert shallow.value_similarity("ssn", "person source value") < 0.9

    def test_price_tolerance(self, comparator):
        close = comparator.value_similarity("199.99", "195.00")
        far = comparator.value_similarity("199.99", "89.00")
        assert close > 0.8 > far

    def test_integers_near_exact(self, comparator):
        assert comparator.value_similarity("1998", "2005") < 0.3
        assert comparator.value_similarity("2006", "2006") == 1.0

    def test_integer_typo_tolerated(self, comparator):
        assert comparator.value_similarity("2006", "20066") == pytest.approx(0.8)

    def test_version_mismatch_decisive(self, comparator):
        same = comparator.value_similarity("office suite 11.0", "office suite 11.0")
        different = comparator.value_similarity("office suite 11.0", "office suite 12.0")
        assert same > different

    def test_containment_boost(self, comparator):
        score = comparator.value_similarity(
            "hazy trail", "granite peak brewing hazy trail"
        )
        assert score > 0.9

    def test_single_token_containment_not_boosted(self, comparator):
        score = comparator.value_similarity("ghost", "ghost home anthem ride")
        assert score < 0.9

    @given(a=value, b=value)
    def test_bounded_and_symmetric_enough(self, a, b):
        from repro.knowledge import default_knowledge

        comparator = SemanticComparator(get_profile("gpt3-175b"), default_knowledge())
        score = comparator.value_similarity(a, b)
        assert 0.0 <= score <= 1.0


class TestEntitySimilarity:
    def test_identical_entities(self, comparator):
        text = "name: golden lotus. city: boston"
        assert comparator.entity_similarity(text, text) == 1.0

    def test_contradictory_attribute_drags_score(self, comparator):
        same_authors = comparator.entity_similarity(
            "title: adaptive joins. authors: ada chen, omar park",
            "title: adaptive joins. authors: ada chen, omar park",
        )
        different_authors = comparator.entity_similarity(
            "title: adaptive joins. authors: ada chen, omar park",
            "title: adaptive joins. authors: rosa weber, liam gupta",
        )
        assert same_authors - different_authors > 0.2

    def test_flat_text_falls_back(self, comparator):
        score = comparator.entity_similarity("golden lotus boston", "golden lotus boston")
        assert score > 0.8

    def test_cached(self, comparator):
        a = "name: a. city: b"
        b = "name: a. city: c"
        first = comparator.entity_similarity(a, b)
        assert comparator.entity_similarity(a, b) == first
        assert (a, b) in comparator._entity_cache

    def test_name_attributes_weighted_heavier(self, comparator):
        name_mismatch = comparator.entity_similarity(
            "name: alpha beta. style: ipa",
            "name: gamma delta. style: ipa",
        )
        style_mismatch = comparator.entity_similarity(
            "name: alpha beta. style: ipa",
            "name: alpha beta. style: porter",
        )
        assert style_mismatch > name_mismatch

    def test_brand_inference(self, comparator):
        assert comparator.infer_brand("sony digital camera dsc-w55") == "Sony"
        assert comparator.infer_brand("hp laser printer") == "Hewlett-Packard"
        assert comparator.infer_brand("generic thing") is None

    def test_brand_inference_gated_by_floor(self, shallow):
        # Kingston is rank 40 (freq 12.5), below the 1.3B floor of 80.
        assert shallow.infer_brand("kingston memory card") is None

    def test_entity_features_include_per_attribute(self, comparator):
        features = comparator.entity_features(
            "name: a. city: b", "name: a. city: c"
        )
        assert "sim_name" in features and "sim_city" in features
        assert "sim_overall" in features
