"""Adversarial prompt-parsing: values that mimic the template itself."""

from hypothesis import given, strategies as st

from repro.core.prompts import (
    build_entity_matching_prompt,
    build_imputation_prompt,
    build_transformation_prompt,
)
from repro.datasets.base import ImputationExample, MatchingPair
from repro.fm.parsing import parse_prompt


class TestTemplateMimicry:
    def test_value_containing_question_mark(self):
        pair = MatchingPair(
            left={"name": "what? yes!"}, right={"name": "really?"}, label=False
        )
        parsed = parse_prompt(build_entity_matching_prompt(pair, []))
        assert parsed.task == "match"

    def test_value_containing_product_a_is(self):
        pair = MatchingPair(
            left={"name": "Product A is great"}, right={"name": "b"}, label=False
        )
        parsed = parse_prompt(build_entity_matching_prompt(pair, []))
        assert parsed.task == "match"
        assert "great" in parsed.query.left_text

    def test_imputation_answer_with_spaces_and_digits(self):
        demo = ImputationExample(
            row={"name": "x", "zip": None}, attribute="zip", answer="94110-1234"
        )
        query = ImputationExample(
            row={"name": "y", "zip": None}, attribute="zip", answer=""
        )
        parsed = parse_prompt(build_imputation_prompt(query, [demo]))
        assert parsed.demonstrations[0].answer == "94110-1234"

    def test_transformation_values_with_colons(self):
        prompt = build_transformation_prompt(
            "12:30", [("09:15", "9.25"), ("18:45", "18.75")]
        )
        parsed = parse_prompt(prompt)
        assert parsed.task == "transform"
        assert parsed.query.source == "12:30"

    def test_transformation_output_like_input(self):
        prompt = build_transformation_prompt("x", [("Input: a", "Output: b")])
        parsed = parse_prompt(prompt)
        assert parsed.task == "transform"

    @given(st.text(alphabet=st.characters(blacklist_characters="\n"),
                   min_size=1, max_size=30))
    def test_any_single_line_value_keeps_match_shape(self, value):
        pair = MatchingPair(left={"v": value}, right={"v": value}, label=False)
        parsed = parse_prompt(build_entity_matching_prompt(pair, []))
        # Whatever the value, the prompt must still parse as a match task
        # (the template's line skeleton is load-bearing).
        assert parsed.task == "match"

    @given(st.text(max_size=200))
    def test_parser_never_raises(self, prompt):
        parse_prompt(prompt)

    def test_completion_never_raises_on_garbage(self, fm_175b):
        for prompt in ("", "\n\n\n", "Input:", "a: b?", ":::", "Yes"):
            assert isinstance(fm_175b.complete(prompt), str)
