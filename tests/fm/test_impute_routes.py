"""Tests for repro.fm.impute_routes."""

import pytest

from repro.fm.impute_routes import ImputationReasoner
from repro.fm.parsing import ImputeExampleParsed
from repro.fm.profiles import get_profile
from repro.fm.semantic import SemanticComparator


@pytest.fixture(scope="module")
def reasoner(request):
    from repro.knowledge import default_knowledge

    profile = get_profile("gpt3-175b")
    kb = default_knowledge()
    return ImputationReasoner(profile, kb, SemanticComparator(profile, kb))


@pytest.fixture(scope="module")
def small_reasoner(request):
    from repro.knowledge import default_knowledge

    profile = get_profile("gpt3-1.3b")
    kb = default_knowledge()
    return ImputationReasoner(profile, kb, SemanticComparator(profile, kb))


class TestRoutes:
    def test_phone_to_city(self, reasoner):
        candidate, route = reasoner.infer(
            {"name": "blue heron", "phone": "415-775-7036"}, "city"
        )
        assert candidate == "San Francisco"
        assert route == "phone_to_city"

    def test_zip_to_city(self, reasoner):
        candidate, _route = reasoner.infer({"zip_code": "35205"}, "city")
        assert candidate == "Birmingham"

    def test_zip_to_state(self, reasoner):
        candidate, _route = reasoner.infer({"zip": "94101"}, "state")
        assert candidate == "CA"

    def test_city_to_state(self, reasoner):
        candidate, _route = reasoner.infer({"city": "Seattle"}, "state")
        assert candidate == "WA"

    def test_state_to_zip(self, reasoner):
        candidate, route = reasoner.infer(
            {"address": "1720 university blvd", "state": "AL"}, "zipcode"
        )
        assert candidate is not None and candidate.startswith("35")
        assert route == "state_to_zip"

    def test_brand_in_name(self, reasoner):
        candidate, route = reasoner.infer(
            {"name": "Sony digital camera DSC-W55"}, "manufacturer"
        )
        assert candidate == "Sony"
        assert route == "brand_in_name"

    def test_product_line_lookup(self, reasoner, world):
        product = world.products[0]
        candidate, _route = reasoner.infer(
            {"name": product.short_name}, "manufacturer"
        )
        assert candidate == product.manufacturer

    def test_small_model_cannot_recall_tail(self, small_reasoner, world):
        tail = world.tail_cities[0]
        phone = f"{tail.primary_area_code}-555-0000"
        candidate, route = small_reasoner.infer({"phone": phone}, "city")
        assert candidate != tail.name

    def test_nothing_applicable_returns_none(self, reasoner):
        candidate, route = reasoner.infer({"note": "hello"}, "city")
        assert candidate is None
        assert route == "fallback"


class TestRouteVerification:
    def _demo(self, context, attribute, answer):
        return ImputeExampleParsed(
            context_text=context, attribute=attribute, answer=answer
        )

    def test_verified_route_ranked_first(self, reasoner):
        demos = [
            self._demo("name: x. phone: 415-775-7036", "city", "San Francisco"),
            self._demo("name: y. phone: 617-100-2000", "city", "Boston"),
        ]
        routes = reasoner.verified_routes(demos)
        assert routes and routes[0] == "phone_to_city"

    def test_contradicted_route_dropped(self, reasoner):
        demos = [
            self._demo("name: x. phone: 415-775-7036", "city", "Chicago"),
            self._demo("name: y. phone: 617-100-2000", "city", "Miami"),
        ]
        assert "phone_to_city" not in reasoner.verified_routes(demos)

    def test_demos_without_answers_ignored(self, reasoner):
        demos = [self._demo("phone: 415-000-0000", "city", None)]
        assert reasoner.verified_routes(demos) == []


class TestFallback:
    def test_type_consistent_guesses(self, reasoner):
        assert reasoner.fallback_guess("city", "k").lower() == "new york"
        assert reasoner.fallback_guess("state", "k") == "CA"
        zip_guess = reasoner.fallback_guess("zipcode", "k")
        assert len(zip_guess) == 5 and zip_guess.isdigit()
        assert reasoner.fallback_guess("manufacturer", "k") == "Sony"
        assert reasoner.fallback_guess("unknown_attr", "k") == ""

    def test_zip_guess_deterministic_per_context(self, reasoner):
        assert reasoner.fallback_guess("zip", "ctx") == reasoner.fallback_guess("zip", "ctx")
        assert reasoner.fallback_guess("zip", "a") != reasoner.fallback_guess("zip", "b")
