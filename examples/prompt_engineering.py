"""Prompt engineering playground: what Section 4.3 is about.

Interactively reproduces the three prompt-tuning levers on one dataset:

* attribute selection (serialize everything vs the informative subset),
* demonstration selection (random vs validation-guided curation),
* prompt wording ("the same?" vs alternatives).

Run:  python examples/prompt_engineering.py
"""

from repro.core.tasks import run_entity_matching
from repro.core.tasks.entity_matching import default_prompt_config
from repro.datasets import load_dataset
from repro.fm import SimulatedFoundationModel

DATASET = "walmart_amazon"
EVAL = 200


def f1(model, dataset, **kwargs) -> float:
    return 100 * run_entity_matching(
        model, dataset, k=10, max_examples=EVAL, **kwargs
    ).metric


def main() -> None:
    fm = SimulatedFoundationModel("gpt3-175b")
    dataset = load_dataset(DATASET)
    print(f"dataset: {DATASET}  (first {EVAL} test pairs)\n")

    default_config = default_prompt_config(dataset)
    baseline = f1(fm, dataset, selection="manual", config=default_config)
    print(f"default prompt (attr selection + manual demos):  F1 {baseline:5.1f}")

    # -- attribute selection ---------------------------------------------
    all_attrs = default_prompt_config(dataset, select_attributes=False)
    score = f1(fm, dataset, selection="manual", config=all_attrs)
    print(f"serializing ALL attributes:                      F1 {score:5.1f}"
          f"   (Δ {score - baseline:+.1f})")

    no_names = default_prompt_config(dataset, include_attribute_names=False)
    score = f1(fm, dataset, selection="manual", config=no_names)
    print(f"values only, no attribute names:                 F1 {score:5.1f}"
          f"   (Δ {score - baseline:+.1f})")

    # -- demonstration selection -------------------------------------------
    for seed in (0, 1, 2):
        score = f1(fm, dataset, selection="random", seed=seed,
                   config=default_config)
        print(f"random demonstrations (seed {seed}):                  "
              f"F1 {score:5.1f}   (Δ {score - baseline:+.1f})")

    # -- prompt wording ------------------------------------------------------
    for question in (
        "Are {noun} A and {noun} B equivalent?",
        "Do {noun} A and {noun} B refer to the same entity?",
        "Is {noun} A identical to {noun} B?",
    ):
        config = default_prompt_config(dataset, question=question)
        score = f1(fm, dataset, selection="manual", config=config)
        short = question.replace("{noun}", "X")[:42]
        print(f"wording {short!r:46s} F1 {score:5.1f}   (Δ {score - baseline:+.1f})")

    print("\ntakeaway: the same data, the same model — only the prompt "
          "changed.")


if __name__ == "__main__":
    main()
