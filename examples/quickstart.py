"""Quickstart: one foundation model, five data-wrangling tasks.

Reproduces the paper's Figure 1/2 interaction style: structured rows are
serialized to text, wrapped in a natural-language prompt (optionally with
demonstrations), and the model's generated string is the answer.

Run:  python examples/quickstart.py
"""

from repro.core import Wrangler
from repro.core.prompts import build_entity_matching_prompt
from repro.datasets.base import ErrorExample, ImputationExample, MatchingPair
from repro.knowledge.medical import OMOP_ATTRIBUTES, SYNTHEA_ATTRIBUTES


def show(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    wrangler = Wrangler(model="gpt3-175b")

    # ------------------------------------------------------------------
    show("The prompt a task becomes (Figure 1)")
    pair = MatchingPair(
        left={"name": "sony digital camera DSC-W55", "price": "199.99"},
        right={"name": "Sony DSC-W55 camera, black", "price": "189.00"},
        label=True,
    )
    demo = MatchingPair(
        left={"name": "canon inkjet printer IP-90", "price": "79.99"},
        right={"name": "Canon IP-90 printer", "price": "81.50"},
        label=True,
    )
    print(build_entity_matching_prompt(pair, [demo]))

    # ------------------------------------------------------------------
    show("Entity matching")
    verdict = wrangler.match(pair.left, pair.right, demonstrations=[demo])
    print(f"same product? -> {verdict}")
    verdict = wrangler.match(
        pair.left, {"name": "hp laser printer LJ-1020", "price": "149.00"},
        demonstrations=[demo],
    )
    print(f"camera vs printer -> {verdict}")

    # ------------------------------------------------------------------
    show("Data imputation (knowledge recall: Table 6)")
    row = {"name": "blue heron", "addr": "804 north point st",
           "phone": "415-775-7036"}
    print(f"row: {row}")
    print(f"imputed city -> {wrangler.impute(row, 'city')!r}")

    row = {"addr": "1720 university blvd", "state": "AL"}
    print(f"row: {row}")
    print(f"imputed zipcode -> {wrangler.impute(row, 'zipcode')!r}")

    # ------------------------------------------------------------------
    show("Error detection (few-shot: Figure 2)")
    demos = [
        ErrorExample(row={"city": "boston", "state": "ma"},
                     attribute="city", label=False),
        ErrorExample(row={"city": "chicxgo", "state": "il"},
                     attribute="city", label=True),
    ]
    for city in ("seattle", "seaxtle"):
        verdict = wrangler.detect_error(
            {"city": city, "state": "wa"}, "city", demonstrations=demos
        )
        print(f"is there an error in city: {city}? -> {verdict}")

    # ------------------------------------------------------------------
    show("Schema matching")
    birthdate = next(a for a in SYNTHEA_ATTRIBUTES if a.name == "birthdate")
    birth_dt = next(a for a in OMOP_ATTRIBUTES if a.name == "birth_datetime")
    ssn = next(a for a in SYNTHEA_ATTRIBUTES if a.name == "ssn")
    from repro.datasets.base import SchemaPair

    demos = [
        SchemaPair(
            left=next(a for a in SYNTHEA_ATTRIBUTES if a.name == "city"),
            right=next(a for a in OMOP_ATTRIBUTES if a.qualified == "location.city"),
            label=True,
        ),
        SchemaPair(left=ssn, right=birth_dt, label=False),
    ]
    verdict = wrangler.match_schema(birthdate, birth_dt, demonstrations=demos)
    print(f"patients.birthdate ~ person.birth_datetime? -> {verdict}")

    # ------------------------------------------------------------------
    show("Data transformation (by example)")
    examples = [("Seattle", "WA"), ("Boston", "MA"), ("Denver", "CO")]
    for city in ("Chicago", "Miami"):
        print(f"{city} -> {wrangler.transform(city, examples=examples)}")
    examples = [("report.pdf", "pdf"), ("notes.txt", "txt"), ("a.csv", "csv")]
    print(f"slides.key -> {wrangler.transform('slides.key', examples=examples)}")


if __name__ == "__main__":
    main()
