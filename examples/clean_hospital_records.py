"""Cleaning dirty hospital records: detect errors, then repair them.

A data-cleaning pipeline over the Hospital benchmark (single-character
corruptions, the classic data-cleaning workload):

1. few-shot error detection with the prompted 175B model,
2. repair of the flagged cells by imputation (mask the cell, ask the
   model to fill it from the row context),
3. side-by-side with the HoloClean and HoloDetect baselines.

Run:  python examples/clean_hospital_records.py
"""

from repro.baselines import HoloClean, HoloDetect
from repro.core import Wrangler
from repro.core.metrics import binary_metrics
from repro.core.tasks import run_error_detection
from repro.core.tasks.error_detection import select_demonstrations
from repro.core.prompts import ErrorDetectionPromptConfig
from repro.datasets import load_dataset
from repro.fm import SimulatedFoundationModel

N_EVAL = 600


def main() -> None:
    dataset = load_dataset("hospital")
    fm = SimulatedFoundationModel("gpt3-175b")
    wrangler = Wrangler(fm)

    print(f"dataset: {dataset.name} — {len(dataset.test)} labeled cells, "
          f"{sum(e.label for e in dataset.test)} dirty")

    # -- detection --------------------------------------------------------
    print(f"\nfew-shot error detection (k=10) on {N_EVAL} cells …")
    fm_run = run_error_detection(fm, dataset, k=10, selection="manual",
                                 max_examples=N_EVAL)
    print(f"  GPT3-175B  F1 = {100 * fm_run.metric:.1f}")

    holodetect = HoloDetect().fit(dataset)
    predictions = holodetect.predict_many(dataset.test[:N_EVAL])
    hd_f1 = binary_metrics(
        predictions, [e.label for e in dataset.test[:N_EVAL]]
    ).f1
    print(f"  HoloDetect F1 = {100 * hd_f1:.1f}")

    holoclean = HoloClean().fit(
        [e.row for e in dataset.train] + dataset.clean_rows[:100]
    )
    predictions = [holoclean.detect(e) for e in dataset.test[:N_EVAL]]
    hc_f1 = binary_metrics(
        predictions, [e.label for e in dataset.test[:N_EVAL]]
    ).f1
    print(f"  HoloClean  F1 = {100 * hc_f1:.1f}")

    # -- repair ------------------------------------------------------------
    print("\nrepairing the cells the FM flagged (Wrangler.repair_cell) …")
    demonstrations = select_demonstrations(
        fm, dataset, 10, ErrorDetectionPromptConfig(), "manual"
    )
    repaired = attempted = 0
    examples_shown = 0
    for example in dataset.test[:N_EVAL]:
        flagged = wrangler.detect_error(
            example.row, example.attribute, demonstrations=demonstrations
        )
        if not (flagged and example.label):
            continue
        attempted += 1
        suggestion = wrangler.repair_cell(example.row, example.attribute)
        ok = suggestion.casefold() == (example.clean_value or "").casefold()
        repaired += ok
        if examples_shown < 5:
            examples_shown += 1
            print(f"  {example.attribute}: {example.row[example.attribute]!r}"
                  f" -> {suggestion!r} "
                  f"(truth {example.clean_value!r}) {'✓' if ok else '✗'}")
    if attempted:
        print(f"\nrepair accuracy on correctly flagged cells: "
              f"{repaired}/{attempted} = {100 * repaired / attempted:.1f}%")


if __name__ == "__main__":
    main()
