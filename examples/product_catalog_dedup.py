"""Deduplicating a product catalog: blocking + few-shot FM matching.

The workload the paper's introduction motivates: two marketplaces list
overlapping products with different conventions.  This script runs the
full enterprise-style pipeline on the Walmart-Amazon benchmark:

1. curate 10 demonstrations against the validation split ("manual prompt
   tuning" — the paper's one-hour budget, automated),
2. classify every candidate test pair with the prompted 175B model through
   the caching API client (so re-runs are free),
3. compare against the fully supervised Ditto baseline,
4. report F1 and the simulated API bill.

Run:  python examples/product_catalog_dedup.py
"""

from repro.api import CompletionClient
from repro.baselines import DittoMatcher
from repro.core.metrics import binary_metrics
from repro.core.tasks import run_entity_matching
from repro.datasets import load_dataset


def main() -> None:
    dataset = load_dataset("walmart_amazon")
    print(f"dataset: {dataset.name}")
    print(f"  train/valid/test pairs: {len(dataset.train)}/"
          f"{len(dataset.valid)}/{len(dataset.test)}")
    print(f"  attributes: {dataset.attributes}")
    print(f"  key attributes used in prompts: {dataset.key_attributes}")

    sample = dataset.test[0]
    print("\nexample candidate pair:")
    print(f"  walmart: {sample.left}")
    print(f"  amazon:  {sample.right}")
    print(f"  match?   {sample.label}")

    # -- prompted foundation model, with caching and cost accounting -----
    client = CompletionClient("gpt3-175b")
    print("\nrunning GPT3-175B, k=10 manually curated demonstrations …")
    fm_run = run_entity_matching(client, dataset, k=10, selection="manual")
    print(f"  F1 = {100 * fm_run.metric:.1f} "
          f"(precision {100 * fm_run.details['precision']:.1f}, "
          f"recall {100 * fm_run.details['recall']:.1f})")

    print("\nsimulated API usage:")
    print("  " + client.usage.summary().replace("\n", "\n  "))

    # Re-running is free: every prompt is cached.
    before = client.stats["backend_calls"]
    run_entity_matching(client, dataset, k=10, selection="manual")
    print(f"  backend calls on re-run: "
          f"{client.stats['backend_calls'] - before} (cache hits instead)")

    # -- fully supervised baseline ---------------------------------------
    print(f"\ntraining Ditto on all {len(dataset.train)} labeled pairs …")
    ditto = DittoMatcher.for_dataset(dataset).fit(dataset.train)
    predictions = ditto.predict_many(dataset.test)
    ditto_f1 = binary_metrics(predictions, [p.label for p in dataset.test]).f1
    print(f"  Ditto F1 = {100 * ditto_f1:.1f}")

    print("\nsummary: 10 curated demonstrations vs "
          f"{len(dataset.train)} labels of full finetuning:")
    print(f"  GPT3-175B (k=10)  F1 {100 * fm_run.metric:5.1f}")
    print(f"  Ditto (supervised) F1 {100 * ditto_f1:5.1f}")


if __name__ == "__main__":
    main()
