"""Onboarding a new data source: schema matching + value transformation.

The data-integration workload: an EHR export (Synthea) must be loaded into
a warehouse on the OMOP common data model.  Two prompting tasks chain:

1. **Schema matching** — for each export attribute, find the OMOP
   attribute it corresponds to (few-shot, k=3).
2. **Data transformation** — a by-example converter reformats values into
   the warehouse's conventions (dates to ISO, cities to state codes).

Run:  python examples/schema_onboarding.py
"""

from repro.core import Wrangler
from repro.core.tasks import run_schema_matching
from repro.datasets import load_dataset
from repro.fm import SimulatedFoundationModel
from repro.knowledge.medical import OMOP_ATTRIBUTES


def main() -> None:
    fm = SimulatedFoundationModel("gpt3-175b")
    wrangler = Wrangler(fm)
    dataset = load_dataset("synthea")

    # -- 1. correspondence discovery over the benchmark's test tables ----
    print("schema matching Synthea → OMOP (k=3 curated demonstrations)")
    run = run_schema_matching(fm, dataset, k=3, selection="manual")
    print(f"  pairwise F1 on held-out tables = {100 * run.metric:.1f}\n")

    # Rank candidates for a few interesting source attributes.
    from repro.core.tasks.schema_matching import select_demonstrations
    from repro.core.prompts import SchemaMatchingPromptConfig

    demos = select_demonstrations(
        fm, dataset, 3, SchemaMatchingPromptConfig(), "manual"
    )
    interesting = ["medications.code", "conditions.description",
                   "observations.units"]
    source_attributes = {
        pair.left.qualified: pair.left for pair in dataset.test
    }
    for qualified in interesting:
        source = source_attributes.get(qualified)
        if source is None:
            continue
        matches = [
            target.qualified for target in OMOP_ATTRIBUTES
            if wrangler.match_schema(source, target, demonstrations=demos)
        ]
        print(f"  {qualified:26s} -> {matches or ['(no match proposed)']}")

    # -- 2. by-example value conversion -----------------------------------
    print("\nvalue transformations for the load job:")
    date_examples = [("Mar 14, 2011", "2011-03-14"), ("Jan 2, 1999", "1999-01-02"),
                     ("Dec 25, 2003", "2003-12-25")]
    for raw in ("Jul 4, 2010", "Feb 11, 2017"):
        print(f"  visit date {raw!r} -> "
              f"{wrangler.transform(raw, examples=date_examples)!r}")

    state_examples = [("Seattle", "WA"), ("Boston", "MA"), ("Denver", "CO")]
    for city in ("Chicago", "New Orleans", "Honolulu"):
        print(f"  residence {city!r} -> "
              f"{wrangler.transform(city, examples=state_examples)!r}")


if __name__ == "__main__":
    main()
