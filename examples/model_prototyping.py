"""From prototype to production: the paper's Section 5 workflow, end to end.

The discovery-and-design phase starts with ten curated demonstrations and
no labeled training data; the deployment phase wants a cheap supervised
model.  This script walks the bridge the paper sketches:

1. prototype a matcher with the prompted 175B model (§5.1 "rapid
   prototyping via prompting"),
2. inspect its *confidence* on individual verdicts and keep only the sure
   ones (§5.2 debuggability),
3. let the FM label the unlabeled pool and distill a supervised Ditto
   student from the machine labels (§5.1 "use the FM to label data"),
4. check what prompt ensembling buys the smaller open model you could run
   privately (§5.3).

Run:  python examples/model_prototyping.py
"""

from repro.baselines import DittoMatcher
from repro.core import ModelPrototyper, PromptEnsemble
from repro.core.metrics import binary_metrics
from repro.core.prompts import build_entity_matching_prompt
from repro.core.tasks import run_entity_matching
from repro.core.tasks.entity_matching import (
    default_prompt_config,
    select_demonstrations,
)
from repro.datasets import load_dataset
from repro.fm import SimulatedFoundationModel


def main() -> None:
    dataset = load_dataset("walmart_amazon")
    fm = SimulatedFoundationModel("gpt3-175b")
    config = default_prompt_config(dataset)
    labels = [pair.label for pair in dataset.test]

    # -- 1. prototype -----------------------------------------------------
    demos = select_demonstrations(fm, dataset, 10, config, "manual")
    teacher = run_entity_matching(fm, dataset, k=10, selection="manual")
    print(f"prototype (GPT3-175B, 10 demos): F1 {100 * teacher.metric:.1f}")

    # -- 2. confidence ------------------------------------------------------
    print("\nconfidence on three test pairs:")
    for pair in dataset.test[:3]:
        prompt = build_entity_matching_prompt(pair, demos, config)
        completion = fm.complete_verbose(prompt)
        print(f"  {completion.text:3s} (confidence {completion.confidence:.2f}) "
              f"gold={pair.label}  left={pair.left['title']!r:.45}")

    # -- 3. distill ----------------------------------------------------------
    prototyper = ModelPrototyper(fm, demonstrations=demos, config=config)
    student = prototyper.distill(
        dataset.train, student_factory=lambda: DittoMatcher.for_dataset(dataset)
    )
    report = prototyper.report
    student_f1 = binary_metrics(student.predict_many(dataset.test), labels).f1
    print(f"\ndistillation: FM labeled {report.n_labeled} pairs "
          f"({100 * report.agreement_with_gold:.1f}% agreement with gold)")
    print(f"  Ditto on FM labels:   F1 {100 * student_f1:.1f}   (zero gold labels)")
    gold = DittoMatcher.for_dataset(dataset).fit(dataset.train)
    gold_f1 = binary_metrics(gold.predict_many(dataset.test), labels).f1
    print(f"  Ditto on gold labels: F1 {100 * gold_f1:.1f}   "
          f"({len(dataset.train)} labels)")

    # -- 4. private deployment: small model + ensembling ----------------------
    print("\nsmall-model route (data never leaves the building):")
    small = SimulatedFoundationModel("gpt3-6.7b")
    single = run_entity_matching(small, dataset, k=10, selection="manual")
    ensembled = run_entity_matching(
        PromptEnsemble(small), dataset, k=10, selection="manual"
    )
    print(f"  GPT3-6.7B single prompt: F1 {100 * single.metric:.1f}")
    print(f"  GPT3-6.7B 5-way ensemble: F1 {100 * ensembled.metric:.1f}")


if __name__ == "__main__":
    main()
