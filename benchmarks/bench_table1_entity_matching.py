"""Table 1 — entity matching F1 on the seven Magellan datasets."""

from conftest import publish

from repro.bench import table1


def test_table1_entity_matching(benchmark):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    publish(result)

    for dataset in table1.DATASETS:
        zero_shot = result.cell(dataset, "fm_k0")
        few_shot = result.cell(dataset, "fm_k10")
        # Demonstrations matter on every dataset (Section 4.2).
        assert few_shot >= zero_shot, dataset

    # The FM ties the supervised SoTA on the easy restaurant benchmark…
    assert result.cell("fodors_zagats", "fm_k10") >= 99.0
    # …is competitive on product matching…
    assert result.cell("walmart_amazon", "fm_k10") >= 80.0
    # …and loses to Ditto on the jargon-dense Amazon-Google data, the
    # paper's central caveat.
    assert (
        result.cell("amazon_google", "fm_k10")
        <= result.cell("amazon_google", "ditto") + 5.0
    )
    # Amazon-Google stays the hardest dataset for the FM.
    fm_scores = {d: result.cell(d, "fm_k10") for d in table1.DATASETS}
    assert min(fm_scores, key=fm_scores.get) == "amazon_google"


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("table1_entity_matching", table1.run))
