"""Gateway traffic — sustained mixed interactive+backfill serving.

PR 8's claim: the multi-tenant gateway (bounded queue, tenant gates,
coalescing scheduler) serves a sustained mixed workload — interactive
singles from two tenants riding alongside backfill batches — at ≥ the
offline ``run_task`` serving throughput within 10%, while keeping
p50/p99 queue-to-answer latency pinned in the report and returning
predictions byte-identical to the offline path on the same examples.

Both paths answer from one warm :class:`PromptCache`, so the simulated
backend is out of the loop and the measured gap is pure gateway
overhead (queueing, tenant gates, coalescing, response fan-back) —
exactly what a shared serving deployment adds over a solo sweep.

Two drive modes:

* **in-process** (default) — constructs the Gateway directly; used by
  the tier-2 bench and the throughput bar.
* **``--gateway-url URL``** — drives a separately-started ``repro
  serve`` over HTTP (the CI ``gateway`` job): asserts byte-identical
  predictions, **zero** shed interactive requests, and a schema-valid
  ``/stats`` block (written to ``--stats-out`` when given).

``--smoke`` shrinks repeats and relaxes the throughput bar so the
assertion survives loaded CI runners.
"""

import json
import pathlib
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from conftest import publish

from repro.api import PromptCache, set_default_cache
from repro.bench.reporting import ExperimentResult
from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task
from repro.datasets import load_dataset
from repro.serve import (
    Gateway,
    GatewayConfig,
    ShedResponse,
    WrangleRequest,
)

WORKERS = 8
K_SHOT = 10
TASK, DATASET, SEED = "entity_matching", "itunes_amazon", 0

FULL_REPEATS = 4
SMOKE_REPEATS = 1

#: Gateway examples/s must reach this fraction of offline examples/s.
FULL_THROUGHPUT_BAR = 0.9
SMOKE_THROUGHPUT_BAR = 0.5

TRIALS = 3

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "schemas" / "gateway_stats.schema.json"
)


def _mixed_requests(n_examples: int):
    """Deterministic mixed traffic over indices ``0..n_examples-1``.

    Per 8-index stride: one 4-example backfill batch from tenant
    ``bulk``, then four interactive singles alternating tenants
    ``alice``/``bob`` — every index covered exactly once, so the
    concatenated predictions line up against the offline run.
    """
    plan = []  # (tenant, priority, indices)
    index = 0
    while index < n_examples:
        batch = list(range(index, min(index + 4, n_examples)))
        plan.append(("bulk", "backfill", batch))
        index += len(batch)
        for _ in range(4):
            if index >= n_examples:
                break
            tenant = "alice" if index % 2 else "bob"
            plan.append((tenant, "interactive", [index]))
            index += 1
    return plan


def _request_payload(tenant, priority, indices) -> dict:
    return dict(
        tenant=tenant, task=TASK, dataset=DATASET, indices=indices,
        priority=priority, k=K_SHOT, selection="random", seed=SEED,
    )


def _offline_run():
    return run_task(
        TASK, "gpt3-175b", load_dataset(DATASET), k=K_SHOT,
        selection="random", seed=SEED, executor="async", workers=WORKERS,
    )


def _time_offline(repeats: int) -> tuple[float, list]:
    started = time.perf_counter()
    predictions = None
    for _ in range(repeats):
        run = _offline_run()
        if predictions is None:
            predictions = run.predictions
        else:
            assert run.predictions == predictions
    return time.perf_counter() - started, predictions


def _time_gateway(plan, repeats: int) -> tuple[float, dict, dict]:
    """Drive ``plan`` through an in-process gateway ``repeats`` times."""
    config = GatewayConfig(
        queue_capacity=max(64, len(plan) * repeats),
        max_batch=32,
        workers=WORKERS,
        executor="async",
    )
    gateway = Gateway(config)
    predictions: dict[int, object] = {}
    with gateway:
        started = time.perf_counter()
        futures = []
        for _ in range(repeats):
            for tenant, priority, indices in plan:
                futures.append((indices, gateway.submit(WrangleRequest(
                    **_request_payload(tenant, priority, indices)
                ))))
        for indices, future in futures:
            response = future.result(timeout=300)
            assert not isinstance(response, ShedResponse), (
                f"request shed: {response.reason}"
            )
            assert response.ok
            for offset, result in enumerate(response.results):
                value = result["prediction"]
                seen = predictions.setdefault(indices[offset], value)
                assert seen == value  # repeats agree with each other
        elapsed = time.perf_counter() - started
        stats = gateway.stats()
    return elapsed, predictions, stats


def _drive_http(url: str, plan, repeats: int):
    """The CI shape: same workload over HTTP against `repro serve`."""
    def post(payload: dict):
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url.rstrip("/") + "/v1/wrangle", data=body,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=300) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    started = time.perf_counter()
    outcomes = []
    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        for _ in range(repeats):
            for tenant, priority, indices in plan:
                outcomes.append((
                    (tenant, priority, indices),
                    pool.submit(post, _request_payload(
                        tenant, priority, indices
                    )),
                ))
        outcomes = [(meta, future.result()) for meta, future in outcomes]
    elapsed = time.perf_counter() - started

    predictions: dict[int, object] = {}
    shed_interactive = 0
    for (tenant, priority, indices), (status, payload) in outcomes:
        if status != 200:
            if priority == "interactive":
                shed_interactive += 1
            continue
        for offset, result in enumerate(payload["results"]):
            predictions.setdefault(indices[offset], result["prediction"])
    with urllib.request.urlopen(
        url.rstrip("/") + "/stats", timeout=30
    ) as response:
        stats = json.loads(response.read())
    return elapsed, predictions, stats, shed_interactive


def run(repeats: int = FULL_REPEATS, gateway_url: str | None = None,
        bar: float = FULL_THROUGHPUT_BAR) -> ExperimentResult:
    pool = load_dataset(DATASET).test
    n_examples = len(pool)
    plan = _mixed_requests(n_examples)
    n_interactive = sum(1 for _, p, _ in plan if p == "interactive")
    n_backfill = len(plan) - n_interactive

    if gateway_url is None:
        # One process-wide warm cache shared by the offline path and
        # every gateway context: the simulator is out of the loop.
        set_default_cache(PromptCache(":memory:"))
    try:
        warm = _offline_run()  # warms cache + pins the baseline outputs

        offline_s, offline_predictions = _time_offline(repeats)
        for _ in range(TRIALS - 1):
            elapsed, again = _time_offline(repeats)
            assert again == offline_predictions
            offline_s = min(offline_s, elapsed)
        assert offline_predictions == warm.predictions

        if gateway_url is not None:
            gateway_s, predictions, stats, shed_interactive = _drive_http(
                gateway_url, plan, repeats
            )
            assert shed_interactive == 0, (
                f"{shed_interactive} interactive requests shed"
            )
        else:
            gateway_s, predictions, stats = _time_gateway(plan, repeats)
            for _ in range(TRIALS - 1):
                elapsed, again, stats = _time_gateway(plan, repeats)
                assert again == predictions
                gateway_s = min(gateway_s, elapsed)
            assert stats["shed"]["by_reason"]["queue_full"] == 0
            assert stats["shed"]["by_reason"]["queue_evicted"] == 0
    finally:
        if gateway_url is None:
            set_default_cache(None)

    flat = [predictions[i] for i in range(n_examples)]
    identical = flat == offline_predictions
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    schema_problems = validate_manifest(stats, schema)

    volume = n_examples * repeats
    offline_eps = volume / offline_s
    gateway_eps = volume / gateway_s
    ratio = gateway_eps / offline_eps
    latency = stats["latency"]

    result = ExperimentResult(
        experiment="gateway_traffic",
        title=(
            f"Gateway traffic ({volume} warm-cache EM examples over "
            f"{len(plan) * repeats} requests: {n_interactive * repeats} "
            f"interactive singles / {n_backfill * repeats} backfill "
            f"batches, {K_SHOT}-shot shared prefix, workers={WORKERS})"
        ),
        headers=["mode", "seconds", "examples_per_s", "req_per_s",
                 "p50_s", "p99_s", "identical"],
        notes=(
            "identical = gateway predictions byte-equal to offline "
            "run_task on the same examples; p50/p99 are queue-to-answer "
            "latency from the gateway stats block "
            "(interactive class). Stats block schema-valid: "
            + ("yes" if not schema_problems else f"NO: {schema_problems}")
            + f". Interactive shed: "
            + str(stats["shed"]["by_reason"].get("tenant_rate", 0)
                  + stats["shed"]["by_reason"].get("queue_full", 0))
            + "."
        ),
    )
    result.add_row(
        f"offline run_task x{repeats} (async)", offline_s, offline_eps,
        (len(plan) * repeats) / offline_s, 0.0, 0.0, "yes",
    )
    result.add_row(
        "gateway mixed traffic", gateway_s, gateway_eps,
        (len(plan) * repeats) / gateway_s,
        latency["interactive"]["p50_s"], latency["interactive"]["p99_s"],
        "yes" if identical else "NO",
    )
    result._identical = identical
    result._ratio = ratio
    result._schema_problems = schema_problems
    result._served_interactive = stats["served_by_priority"]["interactive"]
    result._expected_interactive = n_interactive * repeats
    return result


def _assert_claims(result, bar: float, check_throughput: bool = True) -> None:
    assert result._identical, "gateway predictions diverged from offline"
    assert result._schema_problems == [], result._schema_problems
    assert result._served_interactive == result._expected_interactive, (
        f"served {result._served_interactive} of "
        f"{result._expected_interactive} interactive requests"
    )
    if check_throughput:
        assert result._ratio >= bar, (
            f"gateway at {result._ratio:.2f}x offline throughput, "
            f"bar is {bar}x"
        )


def test_gateway_traffic(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    # The PR 8 acceptance bar: mixed gateway traffic sustains offline
    # serving throughput within 10%, byte-identical predictions.
    _assert_claims(result, FULL_THROUGHPUT_BAR)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    gateway_url = None
    stats_out = None
    json_out = None
    if "--gateway-url" in argv:
        gateway_url = argv[argv.index("--gateway-url") + 1]
    if "--stats-out" in argv:
        stats_out = argv[argv.index("--stats-out") + 1]
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    repeats = SMOKE_REPEATS if smoke else FULL_REPEATS
    bar = SMOKE_THROUGHPUT_BAR if smoke else FULL_THROUGHPUT_BAR
    result = run(repeats=repeats, gateway_url=gateway_url, bar=bar)
    print(result.render())
    if json_out:
        from repro.bench.reporting import bench_metrics, write_bench_json

        write_bench_json(json_out, "gateway_traffic", bench_metrics(result))
        print(f"json summary written to {json_out}")
    # Over HTTP the gateway sits in another process with a cold cache,
    # so the throughput bar applies to the in-process drive only; the
    # identity, zero-interactive-shed, and schema claims always hold.
    _assert_claims(result, bar, check_throughput=gateway_url is None)
    if stats_out:
        stats_url = gateway_url.rstrip("/") + "/stats" if gateway_url else None
        if stats_url is not None:
            with urllib.request.urlopen(stats_url, timeout=30) as response:
                pathlib.Path(stats_out).write_bytes(response.read())
            print(f"stats written to {stats_out}")
    bar_label = f"≥{bar}x offline" if gateway_url is None else "identity+shed"
    print(f"gateway traffic claims ({bar_label}): PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
