"""Transport chaos — Byzantine wire faults, failover, durable intake.

PR 10's claim, pinned end to end: a run whose *primary* backend sits
behind a hostile wire (429s with ``Retry-After``, 5xx, resets, stalls,
truncated/malformed JSON, schema-violating JSON — the ``wire-heavy``
profile, where 35% of faulted prompts never recover) still finishes
with **coverage 1.0 and predictions byte-identical to the fault-free
run**, at workers 1 and 8, because the health-gated
:class:`~repro.api.backends.FailoverBackend` serves every
primary-poisoned prompt from a clean equivalence-group replica.  Since
failover sits *below* :class:`~repro.api.client.CompletionClient`, the
budget is charged exactly once per logical completion no matter how
many members a serve touched — proven here with an exact-fit
:class:`~repro.api.batch.SharedBudget` that would raise on the first
duplicate charge.

The second half drills the durable intake journal: a gateway accepts a
batch of requests (each journaled with fsync before the caller sees
acceptance), then "crashes" — abandoned without ``stop()``, so nothing
is shed and only the journal file survives.  A fresh gateway opened on
the same journal with ``resume=True`` replays every accepted-but-
unserved request under its original id and completes each exactly once,
audited from the journal records themselves (one ``accepted`` line, one
``terminal`` line, no id served twice).

The real SIGKILL variant of the drill (``repro serve --journal`` killed
mid-traffic, restarted with ``--resume``) runs in CI's
``transport-chaos-drill`` job; this bench keeps the in-process
deterministic version so the exactly-once audit runs everywhere.
"""

import json
import os
import pathlib
import sys
import tempfile
import time

from conftest import bench_main, publish

from repro.api import CompletionClient, PromptCache, SharedBudget
from repro.api.backends import (
    DirectOpenAIBackend,
    InProcessFakeTransport,
    register_backend,
    register_failover,
    unregister_backend,
)
from repro.api.batch import BatchExecutor
from repro.api.faults import ChaosTransport
from repro.bench.reporting import ExperimentResult
from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task
from repro.serve.gateway import Gateway, GatewayConfig
from repro.serve.journal import IntakeJournal
from repro.serve.request import WrangleRequest

#: Deterministic wire chaos: every fault decision is a BLAKE2 function
#: of (seed, kind, prompt), so the same prompts draw the same faults at
#: any worker count and on every platform.
CHAOS_SEED = 0
CHAOS_PROFILE = "wire-heavy"

GROUP = "wire-failover-group"
PRIMARY = "wire-chaos-primary"
REPLICAS = ("wire-replica-a", "wire-replica-b")
CLEAN = "wire-clean-baseline"

#: Table 1's EM task, smoke-scale (CI runs the same shape).
TASK = dict(
    task="entity_matching", dataset="beer", k=2,
    selection="random", seed=0,
)
FULL_EXAMPLES = 48
SMOKE_EXAMPLES = 16

FULL_BUDGET_PROBES = 160
SMOKE_BUDGET_PROBES = 40

FULL_DRILL_REQUESTS = 12
SMOKE_DRILL_REQUESTS = 6

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "schemas" / "run_manifest.schema.json"
)


def _register_group() -> None:
    """One equivalence group: chaos-wrapped primary + clean replicas.

    Every member answers through :class:`InProcessFakeTransport` (the
    simulated 175B model behind an OpenAI-shaped wire), so members
    return byte-identical text for the same prompt — the equivalence
    failover's determinism guarantee rests on.  Only the primary's wire
    is hostile.
    """

    def chaotic_primary():
        return DirectOpenAIBackend(
            "gpt3-175b",
            transport=ChaosTransport(
                InProcessFakeTransport(),
                profile=CHAOS_PROFILE,
                seed=CHAOS_SEED,
            ),
        )

    def clean_member():
        return DirectOpenAIBackend("gpt3-175b", transport=InProcessFakeTransport())

    register_backend(
        PRIMARY, chaotic_primary, kind="custom",
        description="simulated 175B behind a wire-heavy chaotic transport",
    )
    for replica in REPLICAS:
        register_backend(
            replica, clean_member, kind="custom",
            description="clean equivalence-group replica of the primary",
        )
    register_backend(
        CLEAN, clean_member, kind="custom",
        description="fault-free baseline (identical completer, clean wire)",
    )
    register_failover(
        GROUP, [PRIMARY, *REPLICAS],
        description="chaos-wrapped primary failing over to clean replicas",
    )


def _unregister_group() -> None:
    for name in (GROUP, PRIMARY, *REPLICAS, CLEAN):
        try:
            unregister_backend(name)
        except KeyError:
            pass


def _chaos_run(workers: int, max_examples: int):
    return run_task(
        model=GROUP, workers=workers, max_examples=max_examples, **TASK
    )


def _budget_probe(n: int, workers: int = 8) -> int:
    """Exactly-once charging: an exact-fit budget survives the chaos.

    ``SharedBudget(max_requests=n)`` admits precisely one charge per
    logical completion; if failover double-charged even one multi-member
    serve, the executor would raise ``BudgetExhaustedError`` here.
    Responses are also checked byte-identical to a clean client's.
    """
    from repro.api.backends import get_backend

    prompts = [f"wire budget probe {i}" for i in range(n)]
    budget = SharedBudget(max_requests=n)
    client = CompletionClient(get_backend(GROUP), cache=PromptCache(":memory:"))
    executor = BatchExecutor(workers=workers, budget=budget)
    responses = executor.map(client.complete, prompts)
    clean = CompletionClient(get_backend(CLEAN), cache=PromptCache(":memory:"))
    assert responses == [clean.complete(prompt) for prompt in prompts]
    assert budget.n_requests == n, (
        f"expected exactly {n} budget charges, saw {budget.n_requests}"
    )
    return budget.n_requests


def _drill_requests(n: int) -> list[WrangleRequest]:
    return [
        WrangleRequest(
            tenant="crash-drill", task="entity_matching", dataset="beer",
            indices=[i % 20], model="gpt3-175b", k=2, selection="random",
            seed=0,
        )
        for i in range(n)
    ]


def _crash_drill(n: int) -> dict:
    """Accept n requests, crash before serving, resume, audit exactly-once."""
    tmp = tempfile.mkdtemp(prefix="transport-chaos-drill-")
    path = os.path.join(tmp, "intake.jsonl")
    config = GatewayConfig(queue_capacity=max(64, 2 * n))

    journal = IntakeJournal(path)
    crashed = Gateway(config, journal=journal)
    crashed.start()
    crashed.pause()  # accept + journal, but never dispatch
    for request in _drill_requests(n):
        crashed.submit(request)
    # Simulated crash: no stop() (stop would shed the queue as
    # "shutdown" terminals) — the paused dispatcher thread is simply
    # abandoned, exactly as SIGKILL leaves it, and only the fsync'd
    # journal survives.
    journal.close()

    resumed_journal = IntakeJournal(path)
    resumed = Gateway(config, journal=resumed_journal, resume=True)
    resumed.start()
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        stats = resumed.stats()
        if stats["journal"]["pending"] == 0:
            break
        time.sleep(0.05)
    stats = resumed.stats()
    resumed.stop()
    resumed_journal.close()

    accepted: dict[int, int] = {}
    terminals: dict[int, list[str]] = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("type") == "accepted":
                rid = record["request_id"]
                accepted[rid] = accepted.get(rid, 0) + 1
            elif record.get("type") == "terminal":
                terminals.setdefault(record["request_id"], []).append(
                    record["outcome"]
                )
    return {
        "n": n,
        "replayed": stats["journal"]["replayed"],
        "pending_after": stats["journal"]["pending"],
        "accepted": accepted,
        "terminals": terminals,
    }


def run(
    max_examples: int = FULL_EXAMPLES,
    budget_probes: int = FULL_BUDGET_PROBES,
    drill_requests: int = FULL_DRILL_REQUESTS,
) -> ExperimentResult:
    _register_group()
    try:
        baseline = run_task(
            model=CLEAN, workers=1, max_examples=max_examples, **TASK
        )
        chaos_1 = _chaos_run(workers=1, max_examples=max_examples)
        chaos_8 = _chaos_run(workers=8, max_examples=max_examples)
        charges = _budget_probe(budget_probes)
    finally:
        _unregister_group()
    drill = _crash_drill(drill_requests)

    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    for label, chaos_run in (("workers=1", chaos_1), ("workers=8", chaos_8)):
        manifest = chaos_run.manifest.to_dict()
        errors = validate_manifest(manifest, schema)
        assert not errors, f"chaos {label} manifest violates schema: {errors}"
        block = manifest.get("failover")
        assert block is not None, f"chaos {label}: no failover manifest block"
        assert block["group"] == GROUP
        assert tuple(block["members"]) == (PRIMARY, *REPLICAS)
        # The wire-heavy profile makes ~a third of faulted prompts
        # unrecoverable on the primary; with failover they MUST have
        # been served elsewhere for coverage to reach 1.0.
        rescued = sum(
            count for name, count in block["served_by_backend"].items()
            if name != PRIMARY
        )
        assert rescued > 0, f"chaos {label}: chaos never forced a failover"

    drill_ok = (
        drill["pending_after"] == 0
        and drill["replayed"] == drill["n"]
        and len(drill["accepted"]) == drill["n"]
        and all(count == 1 for count in drill["accepted"].values())
        and sorted(drill["terminals"]) == sorted(drill["accepted"])
        and all(
            outcomes == ["served"]
            for outcomes in drill["terminals"].values()
        )
    )

    result = ExperimentResult(
        experiment="transport_chaos",
        title=(
            f"Byzantine wire chaos ({CHAOS_PROFILE}, seed {CHAOS_SEED}) — "
            f"EM smoke on beer ({max_examples} examples), "
            f"{len(REPLICAS) + 1}-member failover group"
        ),
        headers=["scenario", "coverage", "em", "identical", "count"],
        notes=(
            "identical = predictions byte-equal to the fault-free clean-wire "
            "baseline; count = budget charges (exact-fit probe), non-primary "
            "serves (chaos rows), or exactly-once-served requests (drill). "
            "Failover sits below the client, so budget charging is "
            "exactly-once by construction; the drill audits the intake "
            "journal records directly."
        ),
    )
    chaos_rows = (
        ("chaos+failover workers=1", chaos_1),
        ("chaos+failover workers=8", chaos_8),
    )
    for label, chaos_run in chaos_rows:
        block = chaos_run.manifest.failover
        rescued = sum(
            count for name, count in block["served_by_backend"].items()
            if name != PRIMARY
        )
        result.add_row(
            label, chaos_run.coverage, chaos_run.metric,
            "yes" if chaos_run.predictions == baseline.predictions else "NO",
            rescued,
        )
    result.add_row(
        "fault-free baseline", baseline.coverage, baseline.metric, "yes", 0,
    )
    result.add_row("exact-fit budget probe", None, None, "yes", charges)
    result.add_row(
        "journal crash drill", None, None,
        "yes" if drill_ok else "NO",
        sum(1 for outcomes in drill["terminals"].values()
            if outcomes == ["served"]),
    )
    result._baseline_predictions = baseline.predictions
    result._chaos_predictions = (chaos_1.predictions, chaos_8.predictions)
    result._drill = drill
    return result


def _assert_claims(result: ExperimentResult) -> None:
    for label in ("chaos+failover workers=1", "chaos+failover workers=8"):
        assert result.cell(label, "coverage") == 1.0, f"{label}: coverage < 1"
        assert result.cell(label, "identical") == "yes", (
            f"{label}: predictions diverged from the fault-free baseline"
        )
        assert result.cell(label, "count") > 0
    chaos_1, chaos_8 = result._chaos_predictions
    assert chaos_1 == chaos_8 == result._baseline_predictions
    assert result.cell("journal crash drill", "identical") == "yes", (
        f"crash drill violated exactly-once: {result._drill}"
    )
    drill = result._drill
    assert result.cell("journal crash drill", "count") == drill["n"]


def run_asserted() -> ExperimentResult:
    result = run()
    _assert_claims(result)
    return result


def test_transport_chaos(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    # The PR 10 acceptance bar: under wire-heavy chaos, failover +
    # contract validation give coverage 1.0 with predictions
    # byte-identical to fault-free at workers 1 and 8, zero duplicate
    # budget charges, and the journal drill serves every accepted
    # request exactly once.
    _assert_claims(result)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    if smoke:
        run_fn = lambda: run(  # noqa: E731 - mirrors the full-scale thunk
            max_examples=SMOKE_EXAMPLES,
            budget_probes=SMOKE_BUDGET_PROBES,
            drill_requests=SMOKE_DRILL_REQUESTS,
        )
        argv = [arg for arg in argv if arg != "--smoke"]
    else:
        run_fn = run

    def run_checked():
        result = run_fn()
        _assert_claims(result)
        return result

    code = bench_main("transport_chaos", run_checked, argv)
    print("transport chaos acceptance: PASS")
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
