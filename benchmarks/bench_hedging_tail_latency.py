"""Hedged requests — tail latency under the ``latency`` fault profile.

The tail-at-scale scenario: the ``latency`` profile injects a
deterministic 30ms spike into ~50% of first attempts, so an unhedged run
has a fat p99 while its median stays healthy.  With ``hedge`` enabled, a
straggler gets one backup attempt after ~5ms; the backup (attempt 2 by
construction) skips the spike, so the per-example p99 should collapse to
roughly the hedge delay — while predictions stay byte-identical, because
at temperature 0 both attempts complete to the same text and the hedge
path never double-charges budget or usage.

Asserted: p99 improves at least 2x with hedging, predictions unchanged,
and every fired hedge is accounted (``hedge_calls`` tallied separately
from ``backend_calls``).
"""

import time

from conftest import publish

from repro.api import CompletionClient, FaultPlan
from repro.api.resilience import HedgePolicy
from repro.bench.reporting import ExperimentResult
from repro.core.tasks import run_task
from repro.datasets import load_dataset

MAX_EXAMPLES = 60
WORKERS = 4
HEDGE_DELAY_S = 0.005


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def _run(dataset, hedge):
    client = CompletionClient(fault_plan=FaultPlan("latency", seed=0))
    started = time.perf_counter()
    run = run_task(
        "em", client, dataset, k=0, max_examples=MAX_EXAMPLES,
        workers=WORKERS, trace=True, hedge=hedge,
    )
    elapsed = time.perf_counter() - started
    latencies = [
        record.latency_s for record in run.records
        if record.latency_s is not None
    ]
    return elapsed, run, client, latencies


def run() -> ExperimentResult:
    dataset = load_dataset("fodors_zagats")

    plain_s, plain, plain_client, plain_lat = _run(dataset, hedge=None)
    hedged_s, hedged, hedged_client, hedged_lat = _run(
        dataset, hedge=HedgePolicy(delay_s=HEDGE_DELAY_S)
    )

    identical = plain.predictions == hedged.predictions
    p99_plain = _percentile(plain_lat, 0.99)
    p99_hedged = _percentile(hedged_lat, 0.99)
    speedup = p99_plain / p99_hedged if p99_hedged else float("inf")
    fired = hedged_client.hedge_policy.stats()["fired"]
    hedge_calls = hedged_client.stats["hedge_calls"]

    result = ExperimentResult(
        experiment="hedging_tail_latency",
        title=f"Hedged requests vs tail latency (fodors_zagats k=0, "
              f"{MAX_EXAMPLES} examples, {WORKERS} workers, "
              f"latency profile)",
        headers=["scenario", "seconds", "p50_ms", "p99_ms", "hedges_fired",
                 "backend_calls", "identical"],
        notes=f"latency profile: ~50% of first attempts pay a 30ms spike; "
              f"hedge delay {1000 * HEDGE_DELAY_S:.0f}ms (backup attempts "
              f"skip the spike).  identical = predictions byte-equal to "
              f"the unhedged run.",
    )
    result.add_row(
        "unhedged", plain_s, 1000 * _percentile(plain_lat, 0.5),
        1000 * p99_plain, 0, plain_client.stats["backend_calls"], "yes",
    )
    result.add_row(
        "hedged", hedged_s, 1000 * _percentile(hedged_lat, 0.5),
        1000 * p99_hedged, fired, hedged_client.stats["backend_calls"],
        "yes" if identical else "NO",
    )
    result.add_row(
        "p99 speedup", None, None, None, None, None,
        f"{speedup:.1f}x",
    )
    # Stash the raw invariants for the test below.
    result.speedup = speedup
    result.hedge_calls = hedge_calls
    result.fired = fired
    return result


def test_hedging_tail_latency(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    # Hedging must cut p99 at least 2x under the latency profile ...
    assert result.speedup >= 2.0, f"p99 speedup only {result.speedup:.2f}x"
    # ... without changing a single prediction ...
    assert result.cell("hedged", "identical") == "yes"
    # ... while charging budget once per logical request: hedge attempts
    # are tallied separately, never in backend_calls.
    assert result.cell("hedged", "backend_calls") == MAX_EXAMPLES
    assert result.hedge_calls == result.fired >= 1


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("hedging_tail_latency", run))
