"""Section 5 research-agenda studies."""

from conftest import publish

from repro.bench import research_agenda


def test_prototyping(benchmark):
    result = benchmark.pedantic(research_agenda.run_prototyping, rounds=1,
                                iterations=1)
    publish(result)
    rows = {row[0]: row for row in result.rows}
    teacher = rows["GPT3-175B teacher (k=10)"][2]
    student = rows["Ditto on FM labels"][2]
    gold = rows["Ditto on gold labels"][2]
    # Distillation lands near the teacher with zero gold labels…
    assert student >= teacher - 5.0
    # …and cannot beat fully gold-supervised training by much.
    assert student <= gold + 2.0


def test_selective_prediction(benchmark):
    result = benchmark.pedantic(research_agenda.run_selective_prediction,
                                rounds=1, iterations=1)
    publish(result)
    accuracy = {row[0]: row[2] for row in result.rows}
    # Trusting only the model's confident half beats taking everything.
    assert accuracy["50%"] >= accuracy["100%"] + 1.0


def test_prompt_ensembling(benchmark):
    result = benchmark.pedantic(research_agenda.run_ensembling, rounds=1,
                                iterations=1)
    publish(result)
    f1 = {row[0]: row[1] for row in result.rows}
    # Voting over rewordings never hurts and usually helps the small model.
    assert f1["gpt3-6.7b ensemble"] >= f1["gpt3-6.7b single prompt"] - 0.5
    assert f1["gpt3-175b ensemble"] >= f1["gpt3-175b single prompt"] - 0.5


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("research_agenda", [research_agenda.run_prototyping,
                    research_agenda.run_selective_prediction,
                    research_agenda.run_ensembling]))
