"""Extension: sampling-temperature variance."""

from conftest import publish

from repro.bench import variance_study


def test_variance_study(benchmark):
    result = benchmark.pedantic(variance_study.run, rounds=1, iterations=1)
    publish(result)

    rows = {row[0]: row for row in result.rows}
    std_col = result.headers.index("std")
    mean_col = result.headers.index("mean_f1")

    # Temperature 0 is exactly reproducible.
    assert rows[0.0][std_col] == 0.0
    # Sampling introduces run-to-run variance…
    assert rows[0.7][std_col] > 0.0
    # …and hotter sampling does not beat greedy decoding on average.
    assert rows[0.7][mean_col] <= rows[0.0][mean_col] + 1.0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("variance_study", variance_study.run))
