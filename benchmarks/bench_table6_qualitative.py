"""Table 6 — qualitative functional-dependency probes."""

from conftest import publish

from repro.bench import table6


def test_table6_qualitative(benchmark):
    result = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    publish(result)

    rows = {row[0]: row for row in result.rows}
    zip_row = next(row for key, row in rows.items() if "1720" in key)
    malibu_row = next(row for key, row in rows.items() if "26025" in key)
    sf_row = next(row for key, row in rows.items() if "804 north point" in key)

    # 175B recalls the exact dependencies.
    assert zip_row[2].startswith("35")            # an Alabama zip
    assert "malibu" in malibu_row[2].casefold()
    assert "san francisco" in sf_row[2].casefold()

    # 1.3B answers have the right semantic *type* but the wrong identity.
    small_zip = zip_row[4]
    assert any(ch.isdigit() for ch in small_zip)
    assert not small_zip.startswith("352")
    assert "san francisco" not in sf_row[4].casefold()


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("table6_qualitative", table6.run))
