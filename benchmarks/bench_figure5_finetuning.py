"""Figure 5 — finetuning curves for the small FMs."""

from conftest import publish

from repro.bench import figure5


def _series(result, dataset: str, label: str) -> list[float]:
    for row in result.rows:
        if row[0] == dataset and row[1] == label:
            return row[2:]
    raise KeyError((dataset, label))


def test_figure5_finetuning(benchmark):
    result = benchmark.pedantic(figure5.run, rounds=1, iterations=1)
    publish(result)

    # Restaurant's test split deliberately contains a held-out-city slice
    # that no finetuned model can answer (Table 5), so its closable gap is
    # structurally wider.
    tolerances = {"walmart_amazon": 12.0, "hospital": 12.0, "restaurant": 18.0}
    for dataset, _task, _metric in figure5.EXPERIMENTS:
        reference = _series(result, dataset, "175b few-shot")[0]
        full_67 = _series(result, dataset, "gpt3-6.7b full")
        # Claim 1: full finetuning of 6.7B approaches the 175B few-shot
        # score by the full-data end of the curve.
        assert max(full_67) >= reference - tolerances[dataset], dataset
        # Curves are learning curves: full-data ≥ low-data (within noise).
        assert full_67[-1] >= full_67[0] - 5.0, dataset

    # Claim 2: the adapter closes the gap on Walmart-Amazon and Restaurant
    # but NOT on Hospital (frozen base = no character-level features).
    hospital_reference = _series(result, "hospital", "175b few-shot")[0]
    hospital_adapter = _series(result, "hospital", "gpt3-6.7b adapter")
    assert max(hospital_adapter) < hospital_reference - 25.0
    walmart_reference = _series(result, "walmart_amazon", "175b few-shot")[0]
    walmart_adapter = _series(result, "walmart_amazon", "gpt3-6.7b adapter")
    assert max(walmart_adapter) >= walmart_reference - 12.0

    # Claim 3: 1.3B is no more sample-efficient than 6.7B — compare the
    # low-data halves of the curves (single points are noisy).
    curve_13 = _series(result, "walmart_amazon", "gpt3-1.3b full")[:3]
    curve_67 = _series(result, "walmart_amazon", "gpt3-6.7b full")[:3]
    assert sum(curve_67) / 3 >= sum(curve_13) / 3 - 3.0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("figure5_finetuning", figure5.run))
