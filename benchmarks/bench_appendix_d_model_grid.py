"""Appendix D: the model-size grid across all five tasks."""

from conftest import publish

from repro.bench import appendix_d


def test_model_grid(benchmark):
    result = benchmark.pedantic(appendix_d.run, rounds=1, iterations=1)
    publish(result)

    small = result.headers.index("gpt3-1.3b")
    large = result.headers.index("gpt3-175b")
    for row in result.rows:
        # Scale never hurts by much, and the 175B model tops every task
        # family within a small tolerance.
        assert row[large] >= row[small] - 3.0, row[0]
    # Hospital error detection is the scale cliff: only 175B solves it.
    hospital = next(row for row in result.rows if "hospital" in row[0])
    assert hospital[small] < 10.0 <= hospital[large]


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("appendix_d_model_grid", appendix_d.run))
