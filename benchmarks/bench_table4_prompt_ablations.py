"""Table 4 — entity-matching prompt ablations."""

from conftest import publish

from repro.bench import table4


def _mean(result, row_label: str, datasets=table4.DATASETS) -> float:
    """Mean measured F1 across datasets for one configuration row."""
    values = []
    column = 1
    for row in result.rows:
        if row[0] != row_label:
            continue
        for i, name in enumerate(datasets):
            value = row[column + 2 * i]
            if isinstance(value, str):  # "mean±std" cells
                value = float(value.split("±")[0])
            values.append(value)
    return sum(values) / len(values)


def test_table4_prompt_ablations(benchmark):
    result = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    publish(result)

    default = _mean(result, "P1 + attr + manual")
    random_demos = _mean(result, "P1 + attr, random demos")
    no_attr_select = _mean(result, "P1, all attributes")
    no_attr_names = _mean(result, "P1 + attr, no attr names")
    prompt2 = _mean(result, "P2 + attr + manual")

    # The paper's three ablation findings, checked on dataset-mean F1:
    # (1) manually curated demonstrations beat random selection,
    assert default > random_demos + 2.0
    # (2) attribute sub-selection helps,
    assert default > no_attr_select + 2.0
    # (3) dropping attribute names hurts (mildly, on average).
    assert default > no_attr_names + 0.25
    # Prompt wording moves the numbers (brittleness), without a universal
    # winner: Prompt 2 differs from Prompt 1 on every dataset-mean.
    assert abs(default - prompt2) > 0.5


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("table4_prompt_ablations", table4.run))
