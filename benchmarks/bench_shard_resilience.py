"""Shard resilience — exactly-once under process violence.

Four scenarios over the same EM configuration (fodors_zagats, k=3,
random selection), each judged against the single-process ``run_task``
oracle.  The headline guarantee being pinned: whatever gets SIGKILLed —
workers, the supervisor, or both — a (possibly resumed) sharded run
produces **byte-identical predictions** with **zero duplicate backend
calls**.

* **single-process** — the ``run_task`` oracle everything is judged
  against.
* **shard-clean** — 4 shards / 2 workers, no faults: the multi-process
  distribution itself must be invisible in the output.
* **shard-chaos** — the ``shard-heavy`` profile self-SIGKILLs workers at
  journal boundaries and injects transient API faults; the supervisor's
  restart/lease-reclaim machinery must absorb all of it.
* **kill-supervisor** — the whole run driver is SIGKILLed mid-flight,
  then the run is finished with ``--resume`` in a fresh supervisor.
"""

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from conftest import publish

from repro.bench.reporting import ExperimentResult
from repro.core.tasks import run_task
from repro.datasets import load_dataset
from repro.shard import ShardSupervisor, build_shard_plan

TASK, DATASET, MODEL = "em", "fodors_zagats", "gpt3-175b"
K, SEED, MAX_EXAMPLES = 3, 0, 48
N_SHARDS, N_WORKERS = 6, 2

REPO = pathlib.Path(__file__).resolve().parents[1]


def _plan():
    return build_shard_plan(
        TASK, DATASET, model=MODEL, n_shards=N_SHARDS, k=K,
        selection="random", seed=SEED, max_examples=MAX_EXAMPLES,
    )


def _drive(run_dir, **kwargs):
    started = time.perf_counter()
    merged = ShardSupervisor(
        run_dir, _plan(), n_workers=N_WORKERS, lease_ttl_s=2.0, **kwargs
    ).run()
    return time.perf_counter() - started, merged


def _spawn_and_sigkill(run_dir):
    """Start ``repro shard-run`` as a real process, SIGKILL it mid-run."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-run", TASK, DATASET,
         "--run-dir", str(run_dir), "--shards", str(N_SHARDS),
         "--workers", str(N_WORKERS), "--k", str(K), "--seed", str(SEED),
         "--max-examples", str(MAX_EXAMPLES), "--lease-ttl-s", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    journals = pathlib.Path(run_dir) / "journals"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and process.poll() is None:
        if journals.is_dir() and any(journals.iterdir()):
            break
        time.sleep(0.05)
    if process.poll() is None:
        os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=30)
    time.sleep(1.0)  # orphaned workers notice re-parenting and drain


def _row(scenario, seconds, merged, oracle):
    shards = merged.manifest.shards
    identical = merged.predictions == oracle
    return (
        scenario, seconds, 100 * merged.metric,
        shards["chaos_kills"], shards["restarts"],
        shards["duplicate_backend_calls"],
        "yes" if identical and shards["duplicate_backend_calls"] == 0
        else "NO",
    )


def run() -> ExperimentResult:
    dataset = load_dataset(DATASET)

    oracle_started = time.perf_counter()
    oracle_run = run_task(
        TASK, MODEL, dataset, k=K, selection="random", seed=SEED,
        max_examples=MAX_EXAMPLES,
    )
    oracle_s = time.perf_counter() - oracle_started
    oracle = list(oracle_run.predictions)

    result = ExperimentResult(
        experiment="shard_resilience",
        title=f"Shard resilience (fodors_zagats k={K}, {MAX_EXAMPLES} "
              f"examples, {N_SHARDS} shards, {N_WORKERS} workers)",
        headers=["scenario", "seconds", "f1", "chaos_kills", "restarts",
                 "duplicates", "identical"],
        notes="identical = predictions byte-identical to the "
              "single-process run_task oracle AND zero duplicate backend "
              "calls; shard-chaos = shard-heavy profile (18% worker "
              "SIGKILL at journal boundaries + transient faults); "
              "kill-supervisor = whole driver SIGKILLed, then --resume",
    )
    result.add_row(
        "single-process", oracle_s, 100 * oracle_run.metric, 0, 0, 0, "yes"
    )

    with tempfile.TemporaryDirectory() as tmp:
        clean_s, clean = _drive(os.path.join(tmp, "clean"))
        result.add_row(*_row("shard-clean", clean_s, clean, oracle))

        chaos_s, chaos = _drive(
            os.path.join(tmp, "chaos"),
            chaos_profile="shard-heavy", chaos_seed=0,
        )
        row = _row("shard-chaos", chaos_s, chaos, oracle)
        if chaos.manifest.shards["chaos_kills"] < 1:
            row = row[:-1] + ("NO(kills=0)",)
        result.add_row(*row)

        kill_dir = os.path.join(tmp, "killed")
        kill_started = time.perf_counter()
        _spawn_and_sigkill(kill_dir)
        resume_s, resumed = _drive(kill_dir, resume=True)
        total_s = time.perf_counter() - kill_started
        row = _row("kill-supervisor", total_s, resumed, oracle)
        if not resumed.manifest.shards["resumed"]:
            row = row[:-1] + ("NO(not-resumed)",)
        result.add_row(*row)

    return result


def test_shard_resilience(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    assert result.cell("shard-clean", "identical") == "yes"
    assert result.cell("shard-chaos", "identical") == "yes"
    assert result.cell("shard-chaos", "chaos_kills") >= 1
    assert result.cell("kill-supervisor", "identical") == "yes"
    assert result.cell("shard-clean", "duplicates") == 0
    assert result.cell("shard-chaos", "duplicates") == 0
    assert result.cell("kill-supervisor", "duplicates") == 0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("shard_resilience", run))
