"""Extension: blocking effectiveness + cost study."""

from conftest import publish

from repro.bench import blocking_study


def test_blocking_study(benchmark):
    result = benchmark.pedantic(blocking_study.run, rounds=1, iterations=1)
    publish(result)

    completeness_col = result.headers.index("completeness")
    reduction_col = result.headers.index("reduction")
    blocked_col = result.headers.index("cost_blocked_usd")
    full_col = result.headers.index("cost_crossproduct_usd")

    for row in result.rows:
        # Blocking must keep the bulk of the true matches…
        assert row[completeness_col] >= 75.0, row[0]
        # …while pruning most of the cross product…
        assert row[reduction_col] >= 70.0, row[0]
        # …which is where the simulated API bill shrinks.
        assert row[blocked_col] < row[full_col] / 3, row[0]


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("blocking_study", blocking_study.run))
