"""Figure 4 — sample/training-efficiency trade-off."""

from conftest import publish

from repro.bench import figure4


def test_figure4_tradeoff(benchmark):
    result = benchmark.pedantic(figure4.run, rounds=1, iterations=1)
    publish(result)

    rows = {(row[0], row[1]): row for row in result.rows}
    params_column = result.headers.index("trainable_params")
    labels_column = result.headers.index("labels_to_90pct_of_175b")

    # The 175B model needs no parameter updates and only its demonstrations.
    few_shot = rows[("gpt3-175b", "few-shot (k=10)")]
    assert few_shot[params_column] == 0
    assert few_shot[labels_column] == 10

    # Adapters train ~5% of the parameters full finetuning trains.
    full = rows[("gpt3-6.7b", "full")]
    adapter = rows[("gpt3-6.7b", "adapter")]
    assert adapter[params_column] * 15 < full[params_column]

    # Full finetuning of the 6.7B model reaches the target with some
    # fraction of the labels (sample efficiency of the finetuned regime).
    assert isinstance(full[labels_column], int)


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("figure4_tradeoff", figure4.run))
