"""Confidence-routed cascade — serving cost vs the 175B-only baseline.

The paper runs every Table 1 entity-matching task through the largest
GPT-3 tier; the cascade serves each example from the cheapest simulated
tier whose self-reported confidence clears a per-task calibrated
threshold, escalating only the uncertain tail (the primary model stays
the final authority).  With the published per-1k-token rates
(1.3B $0.0008 / 6.7B $0.002 / 175B $0.02) most examples are cheap and
only escalations pay the 175B rate.

Asserted: over the Table 1 EM datasets the cascade cuts estimated
serving cost by at least 50% versus a 175B-only run of the same
prompts, loses no more than 1 point of F1 on any dataset, produces
byte-identical results at workers=1 and workers=8, and emits a
schema-valid ``cascade`` manifest block.
"""

import json
import pathlib

from conftest import publish

from repro.api import CascadePolicy, CompletionClient
from repro.bench.reporting import ExperimentResult
from repro.core.manifest import validate_manifest
from repro.core.tasks import run_task
from repro.datasets import load_dataset

TABLE1_DATASETS = (
    "fodors_zagats",
    "beer",
    "itunes_amazon",
    "walmart_amazon",
    "dblp_acm",
    "dblp_scholar",
    "amazon_google",
)
MAX_EXAMPLES = None  # the full Table 1 test splits
WORKERS = 4
K = 4

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "schemas"
    / "run_manifest.schema.json"
)


def _cascade_run(dataset, workers=WORKERS):
    return run_task(
        "em", CompletionClient("gpt3-175b"), dataset, k=K,
        selection="random", max_examples=MAX_EXAMPLES, workers=workers,
        cascade=CascadePolicy(),  # threshold calibrated per task
    )


def run() -> ExperimentResult:
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))

    result = ExperimentResult(
        experiment="cascade_cost",
        title=f"Confidence-routed cascade vs 175B-only serving cost "
              f"(Table 1 EM, k={K}, random selection, "
              f"full test splits, {WORKERS} workers)",
        headers=["dataset", "f1_175b", "f1_cascade", "thresholds",
                 "escalation_%", "cost_175b_usd", "cost_cascade_usd",
                 "saved_%"],
        notes="per-tier thresholds calibrated per task on the validation "
              "split (quality budget 1 point; 2.0 = tier pruned); cost "
              "columns are the manifest's serving-window estimates at the "
              "published per-1k rates.  saved_% total must be >= 50 with "
              "<= 1 point F1 loss per dataset.",
    )

    total_baseline = 0.0
    total_cascade = 0.0
    max_loss = 0.0
    schema_problems: list[str] = []

    for name in TABLE1_DATASETS:
        dataset = load_dataset(name)
        baseline = run_task(
            "em", CompletionClient("gpt3-175b"), dataset, k=K,
            selection="random", max_examples=MAX_EXAMPLES, workers=WORKERS,
        )
        cascade_run = _cascade_run(dataset)
        cascade = cascade_run.manifest.cascade
        schema_problems.extend(
            validate_manifest(cascade_run.manifest.to_dict(), schema)
        )
        loss = baseline.metric - cascade_run.metric
        max_loss = max(max_loss, loss)
        total_baseline += cascade["est_baseline_cost_usd"]
        total_cascade += cascade["est_cost_usd"]
        result.add_row(
            name, 100 * baseline.metric, 100 * cascade_run.metric,
            "/".join(f"{value:.2f}" for value in cascade["thresholds"]),
            100 * cascade["escalation_rate"],
            cascade["est_baseline_cost_usd"], cascade["est_cost_usd"],
            100 * cascade["est_savings_rate"],
        )

    savings_rate = (
        1.0 - total_cascade / total_baseline if total_baseline else 0.0
    )
    result.add_row(
        "TOTAL", None, None, None, None,
        total_baseline, total_cascade, 100 * savings_rate,
    )

    # Determinism: the cascade's decisions must not depend on the fan-out.
    walmart = load_dataset("walmart_amazon")
    serial = _cascade_run(walmart, workers=1)
    fanned = _cascade_run(walmart, workers=8)
    identical = (
        serial.predictions == fanned.predictions
        and serial.manifest.cascade["served_by_tier"]
        == fanned.manifest.cascade["served_by_tier"]
        and serial.manifest.cascade["escalated"]
        == fanned.manifest.cascade["escalated"]
    )

    result.savings_rate = savings_rate
    result.max_loss = max_loss
    result.identical = identical
    result.schema_problems = schema_problems
    return result


def test_cascade_cost(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    # The cascade must cut estimated serving cost at least in half ...
    assert result.savings_rate >= 0.50, (
        f"savings only {100 * result.savings_rate:.1f}%"
    )
    # ... while losing at most 1 point of F1 on any Table 1 dataset ...
    assert result.max_loss <= 0.01 + 1e-9, (
        f"worst F1 loss {100 * result.max_loss:.2f} points"
    )
    # ... with decisions independent of the worker count ...
    assert result.identical, "cascade results differ at workers=1 vs 8"
    # ... and a schema-valid cascade manifest block.
    assert result.schema_problems == []


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("cascade_cost", run))
