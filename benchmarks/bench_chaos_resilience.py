"""Chaos resilience — graceful degradation and checkpointed resume.

Three scenarios over the same zero-shot EM configuration (fodors_zagats,
k=0), asserting the resilience properties the chaos harness promises:

* **fault-free** — the clean baseline every other row is judged against.
* **chaos (ci profile)** — 10% transient / 2% malformed injection: the
  run must complete *degraded but scored* (coverage ≥ 0.95), and every
  non-quarantined prediction must be identical to the fault-free run —
  fault injection may remove examples, never corrupt survivors.
* **resume** — a checkpointed run is killed mid-flight (request budget
  exhausted), then re-invoked with the same resolved config and journal:
  the second invocation must finish the run with **zero duplicate
  backend calls** for already-journaled examples.
"""

import os
import tempfile
import time

from conftest import publish

from repro.api import CompletionClient, FaultPlan
from repro.api.retry import BudgetExhaustedError
from repro.bench.reporting import ExperimentResult
from repro.core.tasks import run_task
from repro.datasets import load_dataset

MAX_EXAMPLES = 60
WORKERS = 4
#: Kill the checkpointed run after this many backend calls (< MAX_EXAMPLES).
KILL_BUDGET = 25


def _run(dataset, model, **kwargs):
    started = time.perf_counter()
    run = run_task(
        "em", model, dataset, k=0, max_examples=MAX_EXAMPLES,
        workers=WORKERS, **kwargs,
    )
    return time.perf_counter() - started, run


def _journaled_examples(path: str) -> int:
    import json

    count = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("type") == "example":
                count += 1
    return count


def run() -> ExperimentResult:
    dataset = load_dataset("fodors_zagats")

    baseline_s, baseline = _run(dataset, CompletionClient())

    chaos_s, chaos = _run(
        dataset,
        CompletionClient(fault_plan=FaultPlan("ci", seed=0)),
        on_error="quarantine",
    )
    quarantined = {record.index for record in chaos.quarantine}
    survivors_identical = all(
        chaos.predictions[index] == baseline.predictions[index]
        for index in range(chaos.n_examples)
        if index not in quarantined
    )

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "resume.jsonl")
        killed_client = CompletionClient(requests_per_run=KILL_BUDGET)
        kill_started = time.perf_counter()
        try:
            _run(dataset, killed_client, checkpoint=journal)
            raise AssertionError("budget never exhausted — raise KILL_BUDGET")
        except BudgetExhaustedError:
            pass
        killed_s = time.perf_counter() - kill_started
        journaled = _journaled_examples(journal)
        resume_client = CompletionClient()
        resume_s, resumed = _run(dataset, resume_client, checkpoint=journal)
        resume_calls = resume_client.stats["backend_calls"]

    result = ExperimentResult(
        experiment="chaos_resilience",
        title=f"Chaos resilience (fodors_zagats k=0, "
              f"{MAX_EXAMPLES} examples, {WORKERS} workers)",
        headers=["scenario", "seconds", "f1", "coverage_pct", "quarantined",
                 "backend_calls", "ok"],
        notes="chaos = ci profile (10% transient / 2% malformed, seed 0); "
              "resume = run killed after a 25-request budget, then "
              "re-invoked against the same journal (ok means zero "
              "duplicate backend calls for journaled examples)",
    )
    result.add_row(
        "fault-free", baseline_s, 100 * baseline.metric, 100.0, 0,
        MAX_EXAMPLES, "yes",
    )
    result.add_row(
        "chaos(ci)", chaos_s, 100 * chaos.metric, 100 * chaos.coverage,
        len(chaos.quarantine), None,
        "yes" if chaos.degraded and survivors_identical else "NO",
    )
    result.add_row(
        "resume-killed", killed_s, None, 100 * journaled / MAX_EXAMPLES,
        0, journaled, "yes" if 0 < journaled < MAX_EXAMPLES else "NO",
    )
    result.add_row(
        "resume-finish", resume_s, 100 * resumed.metric, 100 * resumed.coverage,
        len(resumed.quarantine), resume_calls,
        "yes" if resume_calls == MAX_EXAMPLES - journaled else "NO",
    )
    return result


def test_chaos_resilience(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    # Degraded-but-scored under the canned ci profile.
    assert result.cell("chaos(ci)", "ok") == "yes"
    assert result.cell("chaos(ci)", "coverage_pct") >= 95.0
    assert result.cell("chaos(ci)", "quarantined") >= 1
    # The kill landed mid-run (otherwise resume proves nothing) ...
    assert result.cell("resume-killed", "ok") == "yes"
    # ... and the re-invocation finished it without re-paying for any
    # journaled example: second-run backend calls == remaining examples.
    assert result.cell("resume-finish", "ok") == "yes"
    assert result.cell("resume-finish", "coverage_pct") == 100.0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("chaos_resilience", run))
