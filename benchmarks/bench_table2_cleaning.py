"""Table 2 — imputation accuracy and error-detection F1."""

from conftest import publish

from repro.bench import table2


def test_table2a_imputation(benchmark):
    result = benchmark.pedantic(table2.run_imputation_table, rounds=1, iterations=1)
    publish(result)

    for dataset in ("restaurant", "buy"):
        holoclean = result.cell(dataset, "holoclean")
        imp = result.cell(dataset, "imp")
        few_shot = result.cell(dataset, "fm175_k10")
        zero_shot = result.cell(dataset, "fm175_k0")
        # FM few-shot beats both baselines (the headline of Table 2)…
        assert few_shot > imp > holoclean, dataset
        # …and zero-shot already beats the statistical repair engine.
        assert zero_shot > holoclean, dataset
        assert few_shot >= zero_shot, dataset


def test_table2b_error_detection(benchmark):
    result = benchmark.pedantic(
        table2.run_error_detection_table, rounds=1, iterations=1
    )
    publish(result)

    for dataset in ("hospital", "adult"):
        # Zero-shot error detection collapses (the model defaults to "No").
        assert result.cell(dataset, "fm175_k0") <= 25.0, dataset
        # Few-shot 175B rivals HoloDetect.
        assert result.cell(dataset, "fm175_k10") >= (
            result.cell(dataset, "holodetect") - 5.0
        ), dataset
    # The 6.7B model solves Adult but not Hospital: character-level typo
    # detection needs scale (subword tokenization), domain violations don't.
    assert result.cell("hospital", "fm6.7_k10") <= 10.0
    assert result.cell("adult", "fm6.7_k10") >= 80.0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("table2_cleaning", [table2.run_imputation_table,
                    table2.run_error_detection_table]))
