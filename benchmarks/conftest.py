"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper,
prints it (so ``pytest benchmarks/ --benchmark-only -s`` shows the same
rows the paper reports), writes it under ``results/``, and asserts the
qualitative claims the paper makes about that experiment.

Experiment bodies run exactly once (``pedantic(rounds=1)``): these are
end-to-end evaluations, not microbenchmarks.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def publish(result) -> None:
    """Print a rendered experiment and persist it under results/."""
    rendered = result.render()
    print("\n" + rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment}.txt"
    path.write_text(rendered + "\n", encoding="utf-8")


def publish_many(results) -> None:
    for result in results:
        publish(result)
