"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper,
prints it (so ``pytest benchmarks/ --benchmark-only -s`` shows the same
rows the paper reports), writes it under ``results/``, and asserts the
qualitative claims the paper makes about that experiment.

Experiment bodies run exactly once (``pedantic(rounds=1)``): these are
end-to-end evaluations, not microbenchmarks.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def publish(result) -> None:
    """Print a rendered experiment and persist it under results/."""
    rendered = result.render()
    print("\n" + rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment}.txt"
    path.write_text(rendered + "\n", encoding="utf-8")


def publish_many(results) -> None:
    for result in results:
        publish(result)


def bench_main(name: str, run_fns, argv=None) -> int:
    """Uniform CLI shim for bench modules.

    Runs each callable in ``run_fns`` once, publishes the rendered
    tables, and honors ``--json-out PATH`` by writing a combined
    ``{"bench": name, "metrics": {...}}`` summary (multi-experiment
    benches prefix metric keys with the experiment name).
    """
    import sys

    from repro.bench.reporting import bench_metrics, write_bench_json

    argv = list(sys.argv[1:] if argv is None else argv)
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    if callable(run_fns):
        run_fns = [run_fns]
    results = [run_fn() for run_fn in run_fns]
    for result in results:
        publish(result)
    if json_out:
        metrics: dict = {}
        for result in results:
            flat = bench_metrics(result)
            if len(results) > 1:
                flat = {
                    f"{result.experiment}/{key}": value
                    for key, value in flat.items()
                }
            metrics.update(flat)
        write_bench_json(json_out, name, metrics)
        print(f"json summary written to {json_out}")
    return 0
