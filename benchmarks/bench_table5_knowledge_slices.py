"""Table 5 — Restaurant imputation slices by training-set frequency."""

from conftest import publish

from repro.bench import table5


def test_table5_knowledge_slices(benchmark):
    result = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    publish(result)

    few_shot = "GPT3-175B (few-shot)"
    # Only the prompted 175B solves never-in-train entities: that slice is
    # pretraining knowledge, unreachable by any finetuned head.
    assert result.cell(few_shot, "freq=0") >= 80.0
    for percent in (100, 50, 10):
        for mode in ("adapter", "finetune"):
            row = f"GPT3-6.7B ({mode}, {percent}%)"
            assert result.cell(row, "freq=0") == 0.0, row

    # Rare entities (1-10 train occurrences) are learned by finetuning on
    # the full data, not by few-shot prompting.
    assert result.cell("GPT3-6.7B (finetune, 100%)", "0<freq<=10") > \
        result.cell(few_shot, "0<freq<=10")
    # Frequent entities: everyone does well with full data.
    assert result.cell(few_shot, "freq>10") >= 85.0
    assert result.cell("GPT3-6.7B (finetune, 100%)", "freq>10") >= 85.0
    # Less training data ⇒ no better on rare entities.
    assert result.cell("GPT3-6.7B (adapter, 10%)", "0<freq<=10") <= \
        result.cell("GPT3-6.7B (adapter, 100%)", "0<freq<=10")


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("table5_knowledge_slices", table5.run))
