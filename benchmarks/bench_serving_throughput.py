"""Serving throughput — thread-pool barrier vs. async core with cached prefixes.

PR 6's claim: on the workload the paper's sweeps actually generate —
many prompts sharing one k-shot demonstration prefix, answers already in
the persistent cache — the serving core (continuous batching on the
asyncio loop + the demonstration prefix built and token-counted once)
sustains ≥5× the single-process requests/sec of the PR 1 thread
executor, with byte-identical responses at any concurrency.

The baseline is the legacy pipeline shape: build the full prompt per
example, fan out through ``BatchExecutor``, and let the shared budget
re-count the full prompt's tokens on every request.  The serving core
builds the prefix once, maps only the per-example suffixes, and charges
the budget for suffix tokens only (the prefix is charged once per run).
Both paths answer from the same warm :class:`PromptCache`, so the
simulated backend is out of the loop and the measured gap is pure
orchestration + accounting overhead — exactly what separates the two
cores in a real sweep re-run.

A final scenario runs the full pipeline end-to-end (``run_task`` with
``executor="async"``) and validates the manifest, including the new
``prefix_cache`` block, against ``schemas/run_manifest.schema.json``.

``--smoke`` (or ``SMOKE=1`` via the CI gate) shrinks the request count
and relaxes the bar to ≥2× so the assertion survives loaded runners.
"""

import json
import pathlib
import sys
import time

from conftest import publish

from repro.bench.reporting import ExperimentResult
from repro.api import (
    AsyncBatchExecutor,
    BatchExecutor,
    CompletionClient,
    PromptCache,
    SharedBudget,
)
from repro.api.usage import count_tokens
from repro.core.manifest import validate_manifest
from repro.core.prompts import (
    EntityMatchingPromptConfig,
    build_entity_matching_prefix,
    entity_matching_block,
)
from repro.core.tasks import run_task
from repro.datasets import load_dataset
from repro.api.backends import get_backend

WORKERS = 8
#: Table 1's EM runs are 10-shot; that is also the regime where prefix
#: caching pays most — the shared prefix dwarfs each query suffix.
K_SHOT = 10

#: Repetitions of the test split at full scale.  The per-request work is
#: tens to hundreds of microseconds, so a few thousand requests give
#: stable wall-clocks without making the benchmark slow.
FULL_REPEATS = 8
SMOKE_REPEATS = 2

FULL_SPEEDUP_BAR = 5.0
SMOKE_SPEEDUP_BAR = 2.0

#: Each mode is timed this many times and reports its *minimum* — the
#: standard low-noise estimator for sub-second CPU-bound runs, since the
#: OS scheduler only ever adds time.  Responses are checked every trial.
TRIALS = 3

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "schemas" / "run_manifest.schema.json"
)


def _workload(repeats: int):
    """(config, demonstrations, query pairs) for a shared-prefix EM sweep.

    iTunes-Amazon has the longest serialized rows of the Magellan suite,
    so its 10-shot prefix is the largest — the workload where recounting
    the full prompt per request hurts the baseline most.
    """
    dataset = load_dataset("itunes_amazon")
    config = EntityMatchingPromptConfig(entity_noun=dataset.entity_noun)
    demonstrations = list(dataset.train[:K_SHOT])
    pairs = list(dataset.test) * repeats
    return config, demonstrations, pairs


def _warm_client(prompts: list[str]) -> CompletionClient:
    """A client whose cache already holds every prompt's completion."""
    client = CompletionClient(
        get_backend("gpt3-175b"), cache=PromptCache(":memory:")
    )
    for prompt in sorted(set(prompts)):
        client.complete(prompt)
    return client


def _baseline_run(
    client: CompletionClient, config, demonstrations, pairs
) -> tuple[float, list[str]]:
    """Legacy shape: full prompt per example, thread fan-out, full recount."""
    budget = SharedBudget(max_tokens=10**9)
    executor = BatchExecutor(workers=WORKERS, budget=budget)
    started = time.perf_counter()
    prompts = [
        build_entity_matching_prefix(demonstrations, config)
        + entity_matching_block(pair, config, include_answer=False)
        for pair in pairs
    ]
    responses = executor.map(client.complete, prompts)
    elapsed = time.perf_counter() - started
    assert budget.n_tokens == sum(count_tokens(prompt) for prompt in prompts)
    return elapsed, responses


def _serving_run(
    client: CompletionClient, config, demonstrations, pairs, workers: int
) -> tuple[float, list[str]]:
    """PR 6 shape: prefix built/counted once, async core maps suffixes."""
    budget = SharedBudget(max_tokens=10**9)
    executor = AsyncBatchExecutor(
        workers=workers, budget=budget, token_cost=count_tokens
    )
    started = time.perf_counter()
    prefix = build_entity_matching_prefix(demonstrations, config)
    prefix_tokens = count_tokens(prefix)
    budget.charge(requests=0, tokens=prefix_tokens)  # prefix charged once per run
    suffixes = [
        entity_matching_block(pair, config, include_answer=False)
        for pair in pairs
    ]
    responses = executor.map(
        lambda suffix: client.complete(prefix + suffix), suffixes
    )
    elapsed = time.perf_counter() - started
    assert budget.n_tokens == prefix_tokens + sum(
        count_tokens(suffix) for suffix in suffixes
    )
    return elapsed, responses


def _manifest_scenario() -> tuple[dict, list, list]:
    """End-to-end run_task through the async core; schema-validated manifest."""
    shared = dict(
        task="entity_matching", model="gpt3-175b", dataset="beer",
        k=K_SHOT, selection="random", seed=0, max_examples=24,
    )
    async_run = run_task(executor="async", workers=WORKERS, **shared)
    thread_run = run_task(executor="thread", workers=1, **shared)
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    errors = validate_manifest(async_run.manifest.to_dict(), schema)
    assert not errors, f"async manifest violates schema: {errors}"
    block = async_run.manifest.prefix_cache
    assert block is not None and block["tokens_saved"] > 0
    return block, async_run.predictions, thread_run.predictions


def run(repeats: int = FULL_REPEATS) -> ExperimentResult:
    config, demonstrations, pairs = _workload(repeats)
    prefix = build_entity_matching_prefix(demonstrations, config)
    prompts = [
        prefix + entity_matching_block(pair, config, include_answer=False)
        for pair in pairs
    ]
    client = _warm_client(prompts)

    def best_of(timed_run) -> tuple[float, list[str]]:
        best_s, responses = timed_run()
        for _ in range(TRIALS - 1):
            elapsed, again = timed_run()
            assert again == responses  # determinism holds on every trial
            best_s = min(best_s, elapsed)
        return best_s, responses

    baseline_s, baseline_responses = best_of(
        lambda: _baseline_run(client, config, demonstrations, pairs)
    )
    serving_s, serving_responses = best_of(
        lambda: _serving_run(client, config, demonstrations, pairs, WORKERS)
    )
    serial_s, serial_responses = best_of(
        lambda: _serving_run(client, config, demonstrations, pairs, 1)
    )
    identical = serving_responses == baseline_responses
    serial_identical = serial_responses == baseline_responses
    speedup = baseline_s / serving_s

    prefix_block, async_predictions, thread_predictions = _manifest_scenario()

    result = ExperimentResult(
        experiment="serving_throughput",
        title=(
            f"Serving throughput ({len(pairs)} warm-cache EM requests, "
            f"{K_SHOT}-shot shared prefix, {count_tokens(prefix)} prefix tokens)"
        ),
        headers=["mode", "seconds", "req_per_s", "speedup", "identical"],
        notes=(
            "identical = responses byte-equal to the thread-executor baseline; "
            "baseline re-counts the full prompt per request, the serving core "
            "charges the cached prefix once and suffixes per request. "
            f"End-to-end async run_task manifest: prefix_cache={prefix_block}, "
            "schema-valid, predictions "
            + ("identical" if async_predictions == thread_predictions else "DIVERGED")
            + " to the thread path."
        ),
    )
    result.add_row(
        f"thread workers={WORKERS} (baseline)", baseline_s,
        len(pairs) / baseline_s, 1.0, "yes",
    )
    result.add_row(
        f"async workers={WORKERS} + prefix cache", serving_s,
        len(pairs) / serving_s, speedup, "yes" if identical else "NO",
    )
    result.add_row(
        "async workers=1 + prefix cache", serial_s,
        len(pairs) / serial_s, baseline_s / serial_s,
        "yes" if serial_identical else "NO",
    )
    result._async_predictions_identical = async_predictions == thread_predictions
    return result


def _assert_claims(result, bar: float) -> None:
    assert result.cell(f"async workers={WORKERS} + prefix cache", "identical") == "yes"
    assert result.cell("async workers=1 + prefix cache", "identical") == "yes"
    assert result._async_predictions_identical
    assert result.cell(f"async workers={WORKERS} + prefix cache", "speedup") >= bar


def test_serving_throughput(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    # The PR 6 acceptance bar: ≥5× requests/sec over the PR 1 executor on
    # cached-prefix workloads, responses byte-identical at any concurrency.
    _assert_claims(result, FULL_SPEEDUP_BAR)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    result = run(repeats=SMOKE_REPEATS if smoke else FULL_REPEATS)
    print(result.render())
    _assert_claims(result, SMOKE_SPEEDUP_BAR if smoke else FULL_SPEEDUP_BAR)
    if "--json-out" in argv:
        from repro.bench.reporting import bench_metrics, write_bench_json

        json_out = argv[argv.index("--json-out") + 1]
        write_bench_json(
            json_out, "serving_throughput", bench_metrics(result)
        )
        print(f"json summary written to {json_out}")
    print(f"speedup bar {'≥2× (smoke)' if smoke else '≥5×'}: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
