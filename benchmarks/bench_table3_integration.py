"""Table 3 — data transformation accuracy and schema-matching F1."""

from conftest import publish

from repro.bench import table3


def test_table3a_transformation(benchmark):
    result = benchmark.pedantic(table3.run_transformation_table, rounds=1, iterations=1)
    publish(result)

    for dataset in ("stackoverflow", "bing_querylogs"):
        # Few-shot beats both the synthesizer and zero-shot.
        assert result.cell(dataset, "fm175_k3") > result.cell(dataset, "tde"), dataset
        assert result.cell(dataset, "fm175_k3") > result.cell(dataset, "fm175_k0"), dataset
    # TDE handles syntactic StackOverflow far better than semantic Bing.
    assert result.cell("stackoverflow", "tde") > result.cell("bing_querylogs", "tde") + 20
    # On Bing, TDE's syntactic search cannot compete with the FM's
    # knowledge: the gap is the crossover Table 3 reports.
    assert (
        result.cell("bing_querylogs", "fm175_k3")
        - result.cell("bing_querylogs", "tde")
        > 20
    )


def test_table3b_schema_matching(benchmark):
    result = benchmark.pedantic(table3.run_schema_table, rounds=1, iterations=1)
    publish(result)

    zero_shot = result.cell("synthea", "fm175_k0")
    few_shot = result.cell("synthea", "fm175_k3")
    smat = result.cell("synthea", "smat")
    # Zero-shot schema matching collapses; three demonstrations make the
    # FM competitive with (here: at least as good as) the supervised SoTA.
    assert zero_shot <= 5.0
    assert few_shot >= smat - 2.0
    assert few_shot > zero_shot


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("table3_integration", [table3.run_transformation_table,
                    table3.run_schema_table]))
