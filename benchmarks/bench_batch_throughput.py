"""Batch-execution throughput — serial vs. 8-worker fan-out vs. warm cache.

The BatchExecutor exists to hide per-request API latency; the simulated
model answers in microseconds, so this benchmark reintroduces a small
deterministic per-request latency (a stand-in for the network round trip
every real completion pays) and measures a Table-1-sized cold-cache run
both ways.  The acceptance bar: ≥2× speedup at 8 workers, with
predictions identical to the serial run.

A third scenario measures the persistent cache behind the CLI's
``--cache PATH``: the same prompts against a file-backed PromptCache,
cold then warm.  The warm run must hit the cache ≥99% of the time and
beat the cold run's wall-clock — that is what makes sweep re-runs
near-free.
"""

import os
import tempfile
import time

from conftest import publish

from repro.api import CompletionClient, PromptCache
from repro.bench.reporting import ExperimentResult
from repro.core.prompts import EntityMatchingPromptConfig, build_entity_matching_prompt
from repro.core.tasks.common import parse_yes_no
from repro.datasets import load_dataset
from repro.api.backends import get_backend

#: Simulated network round trip per backend call.  Real GPT-3 calls ran
#: hundreds of milliseconds; 10 ms keeps the benchmark fast while leaving
#: the serial/parallel contrast unmistakable even on a loaded machine
#: (the fan-out hides sleep latency, not GIL-bound compute).
REQUEST_LATENCY_S = 0.010

WORKERS = 8


class LatencyBackend:
    """A simulated FM that pays a fixed per-request round-trip latency."""

    def __init__(self, model: str = "gpt3-175b"):
        self._fm = get_backend(model)
        self.name = self._fm.name

    def complete(self, prompt: str, temperature: float = 0.0, **kwargs) -> str:
        time.sleep(REQUEST_LATENCY_S)
        return self._fm.complete(prompt, temperature=temperature)


def _table1_prompts() -> list[str]:
    """Zero-shot EM prompts for the full fodors_zagats test split."""
    dataset = load_dataset("fodors_zagats")
    config = EntityMatchingPromptConfig(entity_noun=dataset.entity_noun)
    return [
        build_entity_matching_prompt(pair, [], config)
        for pair in dataset.test
    ]


def _timed_run(prompts: list[str], workers: int) -> tuple[float, list[bool]]:
    """Cold-cache completion of every prompt; (seconds, predictions)."""
    client = CompletionClient(LatencyBackend(), cache=PromptCache(":memory:"))
    started = time.perf_counter()
    responses = client.complete_many(prompts, workers=workers)
    elapsed = time.perf_counter() - started
    assert client.stats["backend_calls"] == len(prompts)  # truly cold
    return elapsed, [parse_yes_no(response) for response in responses]


def _timed_file_cache_run(
    prompts: list[str], workers: int, path: str
) -> tuple[float, list[bool], float]:
    """Completion against a file-backed cache; (s, predictions, hit rate)."""
    client = CompletionClient(LatencyBackend(), cache=PromptCache(path))
    started = time.perf_counter()
    responses = client.complete_many(prompts, workers=workers)
    elapsed = time.perf_counter() - started
    usage = client.usage.per_model[client.name]
    hit_rate = usage.n_cache_hits / usage.n_requests
    client.cache.close()
    return elapsed, [parse_yes_no(response) for response in responses], hit_rate


def run() -> ExperimentResult:
    prompts = _table1_prompts()
    serial_s, serial_predictions = _timed_run(prompts, workers=1)
    parallel_s, parallel_predictions = _timed_run(prompts, workers=WORKERS)
    speedup = serial_s / parallel_s
    identical = serial_predictions == parallel_predictions
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cache.db")
        cold_s, _cold_predictions, cold_hits = _timed_file_cache_run(
            prompts, WORKERS, path
        )
        warm_s, warm_predictions, warm_hits = _timed_file_cache_run(
            prompts, WORKERS, path
        )
    warm_identical = warm_predictions == serial_predictions
    result = ExperimentResult(
        experiment="batch_throughput",
        title=f"Batch throughput ({len(prompts)} cold-cache EM prompts, "
              f"{1000 * REQUEST_LATENCY_S:.0f}ms simulated latency)",
        headers=["mode", "seconds", "req_per_s", "speedup", "hit_rate",
                 "identical"],
        notes="identical = predictions match the serial run (determinism); "
              "warm-cache = same prompts re-run against a file-backed "
              "PromptCache (the CLI's --cache)",
    )
    result.add_row("serial", serial_s, len(prompts) / serial_s, 1.0, 0.0,
                   "yes")
    result.add_row(
        f"workers={WORKERS}", parallel_s, len(prompts) / parallel_s,
        speedup, 0.0, "yes" if identical else "NO",
    )
    result.add_row(
        "file-cache cold", cold_s, len(prompts) / cold_s,
        serial_s / cold_s, cold_hits, "yes",
    )
    result.add_row(
        "file-cache warm", warm_s, len(prompts) / warm_s,
        serial_s / warm_s, warm_hits, "yes" if warm_identical else "NO",
    )
    return result


def test_batch_throughput(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(result)
    assert result.cell(f"workers={WORKERS}", "identical") == "yes"
    # The whole point of the batch layer: ≥2× at 8 workers.  (In practice
    # latency-bound fan-out lands near 8×; 2 leaves headroom for noisy CI.)
    assert result.cell(f"workers={WORKERS}", "speedup") >= 2.0
    # The persistent cache: a warm re-run hits ≥99% and is measurably
    # faster than its cold counterpart (it skips every simulated round
    # trip, so in practice the gap is an order of magnitude).
    assert result.cell("file-cache warm", "hit_rate") >= 0.99
    assert result.cell("file-cache warm", "identical") == "yes"
    warm_s = result.cell("file-cache warm", "seconds")
    cold_s = result.cell("file-cache cold", "seconds")
    assert warm_s < cold_s


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("batch_throughput", run))
