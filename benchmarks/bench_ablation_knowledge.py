"""Extension: knowledge-knockout ablation."""

from conftest import publish

from repro.bench import ablation_knowledge


def test_knowledge_knockout(benchmark):
    result = benchmark.pedantic(ablation_knowledge.run, rounds=1, iterations=1)
    publish(result)

    rows = {(row[0], row[1], row[2]): row for row in result.rows}
    stock_col = result.headers.index("stock")
    ablated_col = result.headers.index("no_knowledge")

    # Imputation collapses without encoded knowledge (Section 4.2.2's
    # conjecture, quantified).
    for key in (("imputation", "restaurant", 10), ("imputation", "buy", 10)):
        row = rows[key]
        assert row[ablated_col] < row[stock_col] - 40.0

    # Semantic transformations collapse; syntactic ones barely move.
    bing = rows[("transformation", "bing_querylogs", 3)]
    stackoverflow = rows[("transformation", "stackoverflow", 3)]
    assert bing[stock_col] - bing[ablated_col] > 30.0
    assert stackoverflow[stock_col] - stackoverflow[ablated_col] < 15.0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("ablation_knowledge", ablation_knowledge.run))
