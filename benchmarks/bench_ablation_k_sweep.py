"""Extension: demonstration-count sweep."""

from conftest import publish

from repro.bench import ablation_k_sweep


def test_k_sweep(benchmark):
    result = benchmark.pedantic(ablation_k_sweep.run, rounds=1, iterations=1)
    publish(result)

    for row in result.rows:
        scores = row[2:]
        # The first demonstrations carry most of the value…
        assert scores[1] >= scores[0]
        # …and k=10 sits well above zero-shot everywhere.
        assert scores[4] > scores[0]
        # Saturation: doubling k from 10 to 20 moves little.
        assert abs(scores[5] - scores[4]) < 10.0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main("ablation_k_sweep", ablation_k_sweep.run))
