"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets`` — list the 14 benchmark datasets and their split sizes.
* ``tasks`` — list the registered wrangling tasks (the TaskSpec registry).
* ``run <task> <dataset>`` — evaluate any registered task on any dataset
  through the generic engine (``--k``, ``--selection``, ``--workers``, …).
* ``bench <experiment>`` — regenerate one table/figure (table1 … figure5).
* ``match --left k=v,... --right k=v,...`` — one entity-matching verdict.
* ``impute --row k=v,... --attribute a`` — fill one missing value.
* ``repair --row k=v,... --attribute a`` — propose a corrected value.
* ``transform --value v --examples in=out;in=out`` — one transformation.
* ``probe`` — the Table 6 functional-dependency probes across model sizes.
* ``chaos <task> <dataset>`` — run an evaluation under a named fault
  profile and print a resilience report (faults injected, retries,
  quarantined examples, degradation vs. the fault-free run).

Resilience flags: ``run``/``bench`` accept ``--chaos PROFILE`` (inject
deterministic faults; implies quarantine mode unless ``--on-error`` says
otherwise; ``run`` also spells it ``--fault-profile``), ``run
--checkpoint PATH`` / ``bench --checkpoint-dir DIR`` (journal
per-example completions and resume a killed run), and ``run --on-error
quarantine`` (degrade gracefully instead of aborting).

Service-level flags (``run`` and ``chaos``): ``--deadline-s`` bounds the
run by a wall budget (expiry fails fast), ``--hedge`` (+
``--hedge-delay-s``) races backup completions against stragglers,
``--budget-requests`` + ``--priority`` engage admission control (shed
before spending), and ``--fallback TIER[,TIER...]`` serves would-be
quarantined or shed examples from cheaper model tiers so coverage stays
1.0 with an explicit ``served_by_tier`` breakdown.
"""

from __future__ import annotations

import argparse
import sys


def _parse_row(text: str) -> dict[str, str]:
    """``"name=blue heron,phone=415-775-7036"`` → row dict."""
    row: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise SystemExit(f"bad row field {part!r} (expected key=value)")
        key, _sep, value = part.partition("=")
        row[key.strip()] = value.strip()
    return row


def _parse_examples(text: str) -> list[tuple[str, str]]:
    """``"Seattle=WA;Boston=MA"`` → example pairs."""
    pairs: list[tuple[str, str]] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise SystemExit(f"bad example {part!r} (expected in=out)")
        source, _sep, target = part.partition("=")
        pairs.append((source.strip(), target.strip()))
    return pairs


def _cmd_datasets(_args) -> int:
    from repro.datasets import available_datasets, load_dataset

    for name in available_datasets():
        dataset = load_dataset(name)
        if hasattr(dataset, "train"):
            print(f"{name:16s} {dataset.task:16s} "
                  f"train={len(dataset.train):4d} valid={len(dataset.valid):4d} "
                  f"test={len(dataset.test):4d}")
        else:
            print(f"{name:16s} {dataset.task:16s} "
                  f"cases={len(dataset.cases):2d} tests={dataset.n_tests:4d}")
    return 0


def _cmd_tasks(_args) -> int:
    from repro.core.tasks import available_tasks, get_task

    for name in available_tasks():
        spec = get_task(name)
        aliases = f" ({', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"{name:18s}{aliases:6s} {spec.metric_name:9s} "
              f"k={spec.default_k:<3d} {spec.description}")
    return 0


def _cmd_backends(_args) -> int:
    from repro.api import available_backends, backend_info

    for name in available_backends():
        info = backend_info(name)
        aliases = f" ({', '.join(info.aliases)})" if info.aliases else ""
        price = (
            f"${info.price_per_1k_tokens:.4f}/1k"
            if info.price_per_1k_tokens is not None
            else "unpriced"
        )
        print(f"{name:12s}{aliases:9s} {info.kind:10s} "
              f"{info.params_label:>6s} {price:>12s}  {info.description}")
    return 0


def _install_default_cache(path: str | None):
    """Point every client built underneath at one persistent cache."""
    if not path:
        return None
    from repro.api import PromptCache, set_default_cache

    cache = PromptCache(path)
    set_default_cache(cache)
    return cache


def _install_executor(kind: str | None) -> None:
    """Route every fan-out underneath through the chosen executor core.

    ``--executor async`` serves requests from the continuous-batching
    asyncio loop; ``thread`` is the PR 1 pool.  Results are byte-identical
    either way — the flag trades orchestration overhead, nothing else.
    """
    if not kind:
        return
    from repro.api import set_default_executor_kind

    try:
        set_default_executor_kind(kind)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _install_backend_timeout(timeout_s: float | None) -> None:
    """Pin the ambient per-call HTTP transport timeout for this command."""
    if timeout_s is None:
        return
    from repro.api import set_default_backend_timeout

    try:
        set_default_backend_timeout(timeout_s)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _install_failover(model: str, spec: str | None) -> str:
    """Register ``model`` + the ``--failover`` replica list as an
    equivalence group; returns the backend name the run should use."""
    if not spec:
        return model
    from repro.api import register_failover

    members = [part.strip() for part in spec.split(",") if part.strip()]
    if not members:
        raise SystemExit(f"--failover needs at least one backend, got {spec!r}")
    name = f"{model}+failover"
    try:
        register_failover(name, [model, *members])
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    return name


def _install_chaos(profile: str | None, seed: int, on_error: str | None):
    """Install the process-wide fault plan + error mode for this command.

    ``--chaos PROFILE`` makes every client built underneath inject the
    profile's deterministic fault schedule; unless ``--on-error raise``
    was explicitly requested, it also flips the engine default to
    quarantine mode — injecting unrecoverable faults into a run that
    aborts on first failure would be pointless.
    """
    from repro.core.tasks import set_default_on_error

    plan = None
    if profile:
        from repro.api import FaultPlan, get_fault_profile, set_default_fault_plan

        try:
            plan = FaultPlan(get_fault_profile(profile), seed=seed)
        except KeyError as exc:
            raise SystemExit(str(exc)) from None
        set_default_fault_plan(plan)
        if on_error is None:
            on_error = "quarantine"
    if on_error is not None:
        set_default_on_error(on_error)
    return plan


def _resilience_kwargs(args) -> dict:
    """``run_task`` service-level kwargs from the parsed CLI flags."""
    kwargs: dict = {"priority": args.priority}
    if args.deadline_s is not None:
        if args.deadline_s <= 0:
            raise SystemExit(f"--deadline-s must be > 0, got {args.deadline_s}")
        kwargs["deadline"] = args.deadline_s
    if args.hedge:
        kwargs["hedge"] = args.hedge_delay_s
    if args.fallback:
        kwargs["fallback"] = args.fallback
    if args.budget_requests is not None:
        from repro.api import SharedBudget

        kwargs["budget"] = SharedBudget(max_requests=args.budget_requests)
    return kwargs


def _print_degradation(result) -> None:
    if result.served_by_tier:
        tiers = ", ".join(
            f"{name}={count}"
            for name, count in result.served_by_tier.items()
        )
        print(f"  served_by_tier: {tiers}")


def _cmd_run(args) -> int:
    from repro.core.tasks import get_task, run_task
    from repro.datasets import available_datasets, load_dataset

    try:
        spec = get_task(args.task)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    try:
        dataset = load_dataset(args.dataset, scale=args.scale)
    except KeyError:
        raise SystemExit(f"unknown dataset {args.dataset!r}; "
                         f"choose from {available_datasets()}") from None
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if dataset.task != spec.name:
        raise SystemExit(f"dataset {args.dataset!r} is a {dataset.task} "
                         f"benchmark, not {spec.name}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.cascade_threshold is not None and args.cascade is None:
        raise SystemExit("--cascade-threshold requires --cascade")
    cascade = None
    if args.cascade is not None:
        from repro.api import CascadePolicy

        try:
            if args.cascade is True:
                cascade = CascadePolicy(threshold=args.cascade_threshold)
            else:
                cascade = CascadePolicy.parse(
                    args.cascade, threshold=args.cascade_threshold
                )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    _install_default_cache(args.cache)
    _install_executor(args.executor)
    _install_backend_timeout(args.backend_timeout_s)
    _install_chaos(args.chaos, args.chaos_seed, args.on_error)
    model = _install_failover(args.model, args.failover)
    result = run_task(
        spec, model, dataset, k=args.k, selection=args.selection,
        max_examples=args.max_examples, split=args.split, seed=args.seed,
        workers=args.workers, trace=args.trace, checkpoint=args.checkpoint,
        prefix_cache=False if args.no_prefix_cache else None,
        cascade=cascade,
        **_resilience_kwargs(args),
    )
    if args.manifest and result.manifest is not None:
        from repro.bench.reporting import render_manifest

        result.manifest.write(args.manifest)
        print(render_manifest(result.manifest))
    print(result.describe())
    _print_degradation(result)
    casc = result.manifest.cascade if result.manifest else None
    if casc:
        calibrated = " (calibrated)" if casc["calibrated"] else ""
        if casc["threshold"] is not None:
            threshold_text = f"threshold={casc['threshold']:.3f}"
        else:
            threshold_text = "thresholds=[{}]".format(
                ", ".join(f"{value:.3f}" for value in casc["thresholds"])
            )
        print(
            f"  cascade: {threshold_text}{calibrated}, "
            f"escalated {casc['escalated']} "
            f"({100 * casc['escalation_rate']:.1f}%), "
            f"est ${casc['est_cost_usd']:.4f} vs "
            f"${casc['est_baseline_cost_usd']:.4f} primary-only "
            f"({100 * casc['est_savings_rate']:.0f}% saved)"
        )
    prefix = result.manifest.prefix_cache if result.manifest else None
    if prefix:
        print(
            f"  prefix cache: {prefix['hits']}/"
            f"{prefix['hits'] + prefix['misses']} hits, "
            f"{prefix['tokens_saved']} prompt tokens saved"
        )
    for key, value in result.details.items():
        if isinstance(value, float):
            print(f"  {key}: {100 * value:.1f}")
        elif isinstance(value, dict):
            for sub_key, sub_value in value.items():
                print(f"  {key}/{sub_key}: {100 * sub_value:.1f}")
    if args.trace and result.records:
        timed = [r.latency_s for r in result.records if r.latency_s is not None]
        total = sum(timed)
        print(f"  trace: {len(result.records)} examples, "
              f"{1000 * total:.1f} ms total completion latency")
    return 0


def _cmd_bench(args) -> int:
    import time

    from repro.bench import available_experiments, run_experiment

    if args.experiment not in available_experiments():
        raise SystemExit(f"unknown experiment {args.experiment!r}; "
                         f"choose from {available_experiments()}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1:
        # One switch parallelizes every per-example loop underneath
        # (task runners, baseline helpers, Wrangler verbs); predictions
        # are identical to a serial run.
        from repro.api.batch import set_default_workers

        set_default_workers(args.workers)
    _install_default_cache(args.cache)
    _install_executor(args.executor)
    _install_chaos(args.chaos, args.chaos_seed, args.on_error)
    if args.checkpoint_dir:
        from repro.core.tasks import set_default_checkpoint_dir

        set_default_checkpoint_dir(args.checkpoint_dir)
    if not args.manifest:
        for result in run_experiment(args.experiment):
            print(result.render())
            print()
        return 0

    import json
    import os

    from repro.bench.reporting import summarize_manifests
    from repro.bench.runners import collect_manifests

    os.makedirs(args.manifest, exist_ok=True)
    started = time.perf_counter()
    with collect_manifests() as sink:
        for result in run_experiment(args.experiment):
            print(result.render())
            print()
    summary = summarize_manifests(
        args.experiment, sink, time.perf_counter() - started, args.workers
    )
    path = os.path.join(args.manifest, f"{args.experiment}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    totals = summary["totals"]
    print(f"manifest: {path} ({summary['n_runs']} runs, "
          f"{totals['requests']} requests, "
          f"{100 * totals['cache_hit_rate']:.1f}% cache hits, "
          f"${totals['cost_usd']:.4f})")
    if totals.get("degraded"):
        print(f"degraded: {totals['quarantined']} examples quarantined "
              f"(coverage {100 * totals['coverage']:.1f}%)")
    return 0


def _cmd_chaos(args) -> int:
    from repro.api import FaultPlan, get_fault_profile
    from repro.bench.reporting import render_chaos_report
    from repro.core.tasks import get_task, run_task
    from repro.datasets import available_datasets, load_dataset

    try:
        spec = get_task(args.task)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    try:
        dataset = load_dataset(args.dataset)
    except KeyError:
        raise SystemExit(f"unknown dataset {args.dataset!r}; "
                         f"choose from {available_datasets()}") from None
    if dataset.task != spec.name:
        raise SystemExit(f"dataset {args.dataset!r} is a {dataset.task} "
                         f"benchmark, not {spec.name}")
    try:
        profile = get_fault_profile(args.profile)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")

    # No --cache here on purpose: corrupted completions are cached like
    # any wire response would be, so chaos runs always use private
    # in-memory caches — a shared persistent cache would be poisoned.
    common = dict(
        k=args.k, max_examples=args.max_examples, split=args.split,
        seed=args.seed, workers=args.workers,
    )
    baseline = None
    if not args.no_baseline:
        baseline = run_task(spec, args.model, dataset, **common)
    plan = FaultPlan(profile, seed=args.chaos_seed)
    # The service-level knobs apply to the faulted run only: the
    # baseline shows what a healthy, unconstrained run produces.
    faulted = run_task(
        spec, args.model, dataset, on_error="quarantine",
        fault_plan=plan, checkpoint=args.checkpoint,
        **common, **_resilience_kwargs(args),
    )
    if args.manifest and faulted.manifest is not None:
        faulted.manifest.write(args.manifest)
    print(render_chaos_report(faulted, baseline=baseline))
    return 0


def _wrangler(args):
    from repro.core import Wrangler

    return Wrangler(model=args.model)


def _cmd_match(args) -> int:
    wrangler = _wrangler(args)
    verdict = wrangler.match(_parse_row(args.left), _parse_row(args.right))
    print("Yes" if verdict else "No")
    return 0


def _cmd_impute(args) -> int:
    wrangler = _wrangler(args)
    print(wrangler.impute(_parse_row(args.row), args.attribute))
    return 0


def _cmd_repair(args) -> int:
    wrangler = _wrangler(args)
    print(wrangler.repair_cell(_parse_row(args.row), args.attribute))
    return 0


def _cmd_transform(args) -> int:
    wrangler = _wrangler(args)
    examples = _parse_examples(args.examples) if args.examples else None
    print(wrangler.transform(args.value, examples=examples,
                             instruction=args.instruction))
    return 0


def _cmd_probe(args) -> int:
    from repro.bench import table6

    print(table6.run().render())
    return 0


def _add_resilience_flags(p) -> None:
    """Service-level knobs shared by ``run`` and ``chaos``."""
    p.add_argument("--deadline-s", type=float, default=None,
                   help="wall budget for the whole run in seconds; expiry "
                        "fails fast with DeadlineExceededError")
    p.add_argument("--hedge", action="store_true",
                   help="race a backup completion against stragglers; first "
                        "success wins, budgets charged once")
    p.add_argument("--hedge-delay-s", type=float, default=0.005,
                   help="wait before hedging a straggler (pick ~p95 of "
                        "healthy latency)")
    p.add_argument("--fallback", metavar="TIER[,TIER...]", default=None,
                   help="serve would-be quarantined/shed examples from "
                        "cheaper model tiers, e.g. gpt3-6.7b,gpt3-1.3b")
    p.add_argument("--priority", default="bench",
                   choices=("interactive", "bench", "backfill"),
                   help="admission-control priority class of this run")
    p.add_argument("--budget-requests", type=int, default=None,
                   help="shared request ceiling; admission control sheds "
                        "work that cannot fit it (keeping the priority "
                        "class's headroom in reserve)")


def _parse_tenant_flag(value: str):
    """``NAME:rate=R,burst=B,budget=N`` → (name, TenantPolicy)."""
    from repro.serve import TenantPolicy

    name, _, spec = value.partition(":")
    if not name:
        raise SystemExit(f"--tenant needs a name, got {value!r}")
    rate = burst = budget = None
    for part in filter(None, spec.split(",")):
        key, _, raw = part.partition("=")
        try:
            if key == "rate":
                rate = float(raw)
            elif key == "burst":
                burst = float(raw)
            elif key == "budget":
                budget = int(raw)
            else:
                raise SystemExit(
                    f"--tenant key must be rate/burst/budget, got {key!r}"
                )
        except ValueError:
            raise SystemExit(f"bad --tenant value {part!r}") from None
    return name, TenantPolicy(max_requests=budget, rate=rate, burst=burst)


def _make_terminate_handler():
    """SIGTERM handler that converts the *first* signal into a clean
    KeyboardInterrupt shutdown and swallows any repeats.

    A second SIGTERM used to land while the ``finally`` cleanup was
    already tearing the gateway down, raising a second KeyboardInterrupt
    from inside the handler and crashing with a traceback instead of
    exiting 0.  Idempotence alone is not enough: a repeat can also
    arrive after cleanup, during interpreter finalization, when Python
    has already restored the default disposition — so the first signal
    flips the OS-level disposition to SIG_IGN, making every later
    SIGTERM inert no matter where the process is in its shutdown.
    """
    import signal

    fired = False

    def _terminate(signum, frame):
        nonlocal fired
        if fired:
            return
        fired = True
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        raise KeyboardInterrupt

    return _terminate


def _cmd_serve(args) -> int:
    """Run the long-lived wrangling gateway until interrupted.

    The serve command owns the serving-loop lifecycle explicitly: the
    asyncio loop starts with the gateway and is shut down on exit, so
    Ctrl-C terminates cleanly with no daemon-thread warnings.
    """
    import signal

    from repro.api.abatch import shutdown_serving_loop
    from repro.serve import Gateway, GatewayConfig, GatewayHTTPServer, TenantPolicy

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    _install_default_cache(args.cache)
    _install_backend_timeout(args.backend_timeout_s)
    journal = None
    if args.journal:
        import os

        from repro.serve.journal import IntakeJournal

        journal = IntakeJournal(os.path.join(args.journal, "intake.jsonl"))
    tenants = dict(
        _parse_tenant_flag(value) for value in (args.tenant or [])
    )
    default_tenant = TenantPolicy(
        max_requests=args.default_budget,
        rate=args.default_rate,
    )
    config = GatewayConfig(
        queue_capacity=args.queue_capacity,
        max_batch=args.max_batch,
        workers=args.workers,
        executor=args.executor or "async",
        max_request_log=args.request_log_cap,
        tenants=tenants,
        default_tenant=default_tenant,
        deadline_default_s=args.deadline_default_s,
    )
    gateway = Gateway(config, journal=journal, resume=args.resume)
    server = GatewayHTTPServer(gateway, host=args.host, port=args.port,
                               timeout_s=args.request_timeout_s)

    signal.signal(signal.SIGTERM, _make_terminate_handler())
    gateway.start()
    try:
        host, port = server.address
        journal_note = (
            f", journal={args.journal}"
            f"{' resumed' if args.resume else ''}" if args.journal else ""
        )
        print(f"repro serve listening on http://{host}:{port} "
              f"(queue={config.queue_capacity}, batch={config.max_batch}, "
              f"workers={config.workers}, executor={config.executor}"
              f"{journal_note})",
              flush=True)
        server.httpd.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down gateway...", flush=True)
    finally:
        # No httpd.shutdown() here: serve_forever runs in *this* thread,
        # so by the time we get here it has already returned (or never
        # started — a SIGTERM can land before it enters its loop, and
        # shutdown() would then wait forever on an event only
        # serve_forever sets).  Closing the socket is all that's left.
        server.httpd.server_close()
        gateway.stop()
        shutdown_serving_loop()
        if journal is not None:
            journal.close()
    print("gateway stopped cleanly", flush=True)
    return 0


def _cmd_shard_run(args) -> int:
    """Drive a crash-safe multi-process sharded run to a merged manifest."""
    import json as _json
    import os

    from repro.shard import (
        IncompleteRunError,
        ShardRunIncompleteError,
        ShardSupervisor,
        build_shard_plan,
    )

    try:
        plan = build_shard_plan(
            args.task,
            args.dataset,
            model=args.model,
            n_shards=args.shards,
            k=args.k,
            selection=args.selection,
            split=args.split,
            seed=args.seed,
            max_examples=args.max_examples,
            scale=args.scale,
        )
        supervisor = ShardSupervisor(
            args.run_dir,
            plan,
            n_workers=args.workers,
            executor_kind=args.executor or "thread",
            intra_workers=args.intra_workers,
            lease_ttl_s=args.lease_ttl_s,
            max_restarts=args.max_restarts,
            chaos_profile=args.chaos,
            chaos_seed=args.chaos_seed,
            resume=args.resume,
        )
        merged = supervisor.run()
    except (ShardRunIncompleteError, IncompleteRunError) as exc:
        raise SystemExit(str(exc)) from None
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from None

    manifest_path = args.manifest or os.path.join(args.run_dir, "manifest.json")
    merged.manifest.write(manifest_path)
    predictions_path = os.path.join(args.run_dir, "predictions.json")
    with open(predictions_path, "w", encoding="utf-8") as handle:
        _json.dump(merged.predictions, handle, indent=2)
        handle.write("\n")
    print(merged.describe())
    print(f"manifest -> {manifest_path}")
    return 0


def _cmd_shard_worker(args) -> int:
    """(internal) one worker process of a sharded run; see shard-run."""
    from repro.shard import run_worker

    return run_worker(
        args.run_dir,
        args.worker_id,
        executor_kind=args.executor or "thread",
        intra_workers=args.intra_workers,
        lease_ttl_s=args.lease_ttl_s,
        chaos_profile=args.chaos,
        chaos_seed=args.chaos_seed,
        supervisor_pid=args.supervisor_pid,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Foundation models for data wrangling (VLDB 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list benchmark datasets").set_defaults(
        fn=_cmd_datasets
    )

    sub.add_parser("tasks", help="list registered wrangling tasks").set_defaults(
        fn=_cmd_tasks
    )

    sub.add_parser(
        "backends", help="list registered completion backends"
    ).set_defaults(fn=_cmd_backends)

    run = sub.add_parser("run", help="evaluate a task on a dataset")
    run.add_argument("task", help="task name or alias (em, ed, di, sm, dt)")
    run.add_argument("dataset", help="benchmark dataset name")
    run.add_argument("--k", type=int, default=None,
                     help="demonstration count (default: the task's default)")
    run.add_argument("--selection", default="manual",
                     choices=("manual", "random"),
                     help="demonstration selection strategy")
    run.add_argument("--model", default="gpt3-175b",
                     help="gpt3-1.3b | gpt3-6.7b | gpt3-175b")
    run.add_argument("--max-examples", type=int, default=None,
                     help="cap on evaluated test examples")
    run.add_argument("--split", default="test", help="evaluation split")
    run.add_argument("--seed", type=int, default=0,
                     help="seed for subsampling/random selection")
    run.add_argument("--workers", type=int, default=1,
                     help="fan prompt completion across N threads")
    run.add_argument("--trace", action="store_true",
                     help="record per-example prompt/response/latency")
    run.add_argument("--manifest", metavar="PATH", default=None,
                     help="write run telemetry (phase timings, cache hit "
                          "rate, cost) as JSON to PATH")
    run.add_argument("--cache", metavar="PATH", default=None,
                     help="file-backed prompt cache shared across runs "
                          "(re-runs become near-free)")
    run.add_argument("--checkpoint", metavar="PATH", default=None,
                     help="append-only JSONL journal; re-running with the "
                          "same config resumes instead of restarting")
    run.add_argument("--on-error", default=None,
                     choices=("raise", "quarantine"),
                     help="quarantine: set failed examples aside and score "
                          "the survivors instead of aborting")
    run.add_argument("--chaos", "--fault-profile", metavar="PROFILE",
                     dest="chaos", default=None,
                     help="inject deterministic faults from a named profile "
                          "(implies --on-error quarantine)")
    run.add_argument("--executor", choices=("thread", "async"), default=None,
                     help="fan-out core: the PR 1 thread pool or the "
                          "continuous-batching asyncio loop (identical "
                          "predictions either way)")
    run.add_argument("--no-prefix-cache", action="store_true",
                     help="rebuild and recount the k-shot demonstration "
                          "prefix per example instead of once per run")
    run.add_argument("--cascade", nargs="?", const=True, default=None,
                     metavar="TIER[,TIER...]",
                     help="serve cheapest-tier-first, escalating only "
                          "low-confidence predictions; optional explicit "
                          "tier ladder (default gpt3-1.3b,gpt3-6.7b, the "
                          "--model tier is always the final authority)")
    run.add_argument("--cascade-threshold", type=float, default=None,
                     metavar="CONF",
                     help="fixed escalation threshold in [0, 2]; omit to "
                          "calibrate per task on the validation split")
    run.add_argument("--chaos-seed", type=int, default=0,
                     help="seed of the injected fault schedule")
    run.add_argument("--backend-timeout-s", type=float, default=None,
                     metavar="S",
                     help="per-call HTTP transport timeout for every "
                          "backend built under this command")
    run.add_argument("--failover", metavar="BACKEND[,BACKEND...]",
                     default=None,
                     help="equivalence-group replicas tried in order when "
                          "--model fails at the wire (health-gated; the "
                          "last member is tried even when unhealthy)")
    run.add_argument("--scale", type=int, default=None, metavar="N",
                     help="scale the dataset's eval split to N rows with "
                          "deterministic perturbed variants (stress knob)")
    _add_resilience_flags(run)
    run.set_defaults(fn=_cmd_run)

    bench = sub.add_parser("bench", help="regenerate a table/figure")
    bench.add_argument("experiment",
                       help="table1..table6, figure4/5, or an extension study")
    bench.add_argument("--workers", type=int, default=1,
                       help="fan per-example prompt loops across N threads")
    bench.add_argument("--manifest", metavar="DIR", default=None,
                       help="write per-evaluation manifests + totals to "
                            "DIR/<experiment>.json")
    bench.add_argument("--cache", metavar="PATH", default=None,
                       help="file-backed prompt cache shared by every "
                            "evaluation in the experiment")
    bench.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="journal every evaluation to auto-named JSONL "
                            "files under DIR; a killed sweep resumes")
    bench.add_argument("--on-error", default=None,
                       choices=("raise", "quarantine"),
                       help="quarantine: degrade gracefully instead of "
                            "aborting on a failed example")
    bench.add_argument("--executor", choices=("thread", "async"), default=None,
                       help="fan-out core for every run underneath")
    bench.add_argument("--chaos", metavar="PROFILE", default=None,
                       help="inject deterministic faults from a named "
                            "profile (implies --on-error quarantine)")
    bench.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the injected fault schedule")
    bench.set_defaults(fn=_cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="run a task under fault injection, report resilience"
    )
    chaos.add_argument("task", help="task name or alias (em, ed, di, sm, dt)")
    chaos.add_argument("dataset", help="benchmark dataset name")
    chaos.add_argument("--profile", default="ci",
                       help="fault profile: none|ci|mild|heavy|garbage|latency")
    chaos.add_argument("--chaos-seed", "--seed-faults", dest="chaos_seed",
                       type=int, default=0,
                       help="seed of the injected fault schedule")
    chaos.add_argument("--model", default="gpt3-175b",
                       help="gpt3-1.3b | gpt3-6.7b | gpt3-175b")
    chaos.add_argument("--k", type=int, default=None,
                       help="demonstration count (default: the task's default)")
    chaos.add_argument("--max-examples", type=int, default=None,
                       help="cap on evaluated test examples")
    chaos.add_argument("--split", default="test", help="evaluation split")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for subsampling/random selection")
    chaos.add_argument("--workers", type=int, default=1,
                       help="fan prompt completion across N threads")
    chaos.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="journal the faulted run for resume")
    chaos.add_argument("--manifest", metavar="PATH", default=None,
                       help="write the faulted run's manifest JSON to PATH")
    chaos.add_argument("--no-baseline", action="store_true",
                       help="skip the fault-free comparison run")
    _add_resilience_flags(chaos)
    chaos.set_defaults(fn=_cmd_chaos)

    def with_model(command, help_text):
        p = sub.add_parser(command, help=help_text)
        p.add_argument("--model", default="gpt3-175b",
                       help="gpt3-1.3b | gpt3-6.7b | gpt3-175b")
        return p

    match = with_model("match", "entity-matching verdict for two rows")
    match.add_argument("--left", required=True, help="k=v,k=v row")
    match.add_argument("--right", required=True, help="k=v,k=v row")
    match.set_defaults(fn=_cmd_match)

    impute = with_model("impute", "fill one missing attribute")
    impute.add_argument("--row", required=True, help="k=v,k=v row (without the target)")
    impute.add_argument("--attribute", required=True)
    impute.set_defaults(fn=_cmd_impute)

    repair = with_model("repair", "propose a corrected value for a dirty cell")
    repair.add_argument("--row", required=True, help="k=v,k=v row (with the dirty value)")
    repair.add_argument("--attribute", required=True)
    repair.set_defaults(fn=_cmd_repair)

    transform = with_model("transform", "transform one value")
    transform.add_argument("--value", required=True)
    transform.add_argument("--examples", help="in=out;in=out demonstration pairs")
    transform.add_argument("--instruction", help="zero-shot task description")
    transform.set_defaults(fn=_cmd_transform)

    probe = sub.add_parser("probe", help="Table 6 knowledge probes")
    probe.set_defaults(fn=_cmd_probe)

    serve = sub.add_parser(
        "serve", help="run the persistent multi-tenant wrangling gateway"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks a free one")
    serve.add_argument("--workers", type=int, default=4,
                       help="completion fan-out width per micro-batch")
    serve.add_argument("--executor", choices=("thread", "async"),
                       default="async",
                       help="fan-out core (default: async continuous batching)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="bounded request queue size")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="max examples coalesced into one micro-batch")
    serve.add_argument("--cache", metavar="PATH", default=None,
                       help="persistent completion cache shared by all tenants")
    serve.add_argument("--request-log-cap", type=int, default=2048,
                       help="ring-buffer cap on the request latency log")
    serve.add_argument("--tenant", action="append", metavar="NAME:K=V,...",
                       help="per-tenant policy, e.g. "
                            "acme:rate=50,burst=100,budget=10000 (repeatable)")
    serve.add_argument("--default-rate", type=float, default=None,
                       help="examples/s token-bucket rate for unlisted tenants")
    serve.add_argument("--default-budget", type=int, default=None,
                       help="lifetime request budget for unlisted tenants")
    serve.add_argument("--deadline-default-s", type=float, default=None,
                       help="queueing deadline applied when a request sets none")
    serve.add_argument("--backend-timeout-s", type=float, default=None,
                       metavar="S",
                       help="per-call HTTP transport timeout for every "
                            "backend the gateway builds")
    serve.add_argument("--request-timeout-s", type=float, default=120.0,
                       metavar="S",
                       help="how long one HTTP handler waits for its "
                            "response before cancelling the request "
                            "(typed client_timeout shed) and answering 504")
    serve.add_argument("--journal", metavar="DIR", default=None,
                       help="durable intake journal under DIR: accepted "
                            "requests survive a gateway crash")
    serve.add_argument("--resume", action="store_true",
                       help="replay accepted-but-unserved requests from "
                            "--journal DIR on startup (exactly once)")
    serve.set_defaults(fn=_cmd_serve)

    shard_run = sub.add_parser(
        "shard-run",
        help="crash-safe multi-process run: shards, leases, journals, merge",
    )
    shard_run.add_argument("task", help="task name or alias (em, ed, di, sm, dt)")
    shard_run.add_argument("dataset", help="benchmark dataset name")
    shard_run.add_argument("--run-dir", required=True, metavar="DIR",
                           help="run directory (plan, journals, leases, "
                                "manifest); survives crashes and resumes")
    shard_run.add_argument("--shards", type=int, default=4,
                           help="number of contiguous example shards")
    shard_run.add_argument("--workers", type=int, default=2,
                           help="number of worker processes")
    shard_run.add_argument("--intra-workers", type=int, default=1,
                           help="completion fan-out width inside each worker")
    shard_run.add_argument("--executor", choices=("thread", "async"),
                           default=None,
                           help="per-worker fan-out core (default thread)")
    shard_run.add_argument("--model", default="gpt3-175b",
                           help="gpt3-1.3b | gpt3-6.7b | gpt3-175b")
    shard_run.add_argument("--k", type=int, default=0,
                           help="demonstration count (random selection only)")
    shard_run.add_argument("--selection", default="random",
                           choices=("random",),
                           help="demonstration selection (sharded runs only "
                                "support model-free random selection)")
    shard_run.add_argument("--seed", type=int, default=0,
                           help="seed for subsampling/random selection")
    shard_run.add_argument("--split", default="test", help="evaluation split")
    shard_run.add_argument("--max-examples", type=int, default=None,
                           help="cap on evaluated test examples")
    shard_run.add_argument("--scale", type=int, default=None, metavar="N",
                           help="scale the eval split to N rows")
    shard_run.add_argument("--resume", action="store_true",
                           help="continue an interrupted run in --run-dir "
                                "(journaled work is never redone)")
    shard_run.add_argument("--chaos", metavar="PROFILE", default=None,
                           help="deterministic process+transient chaos "
                                "(fully-recoverable profiles only, e.g. "
                                "shard-heavy)")
    shard_run.add_argument("--chaos-seed", type=int, default=0,
                           help="seed of the chaos schedule")
    shard_run.add_argument("--lease-ttl-s", type=float, default=10.0,
                           help="shard lease TTL (heartbeat interval = ttl/3)")
    shard_run.add_argument("--max-restarts", type=int, default=8,
                           help="global crashed-worker restart budget")
    shard_run.add_argument("--manifest", metavar="PATH", default=None,
                           help="merged manifest path (default "
                                "RUN_DIR/manifest.json)")
    shard_run.set_defaults(fn=_cmd_shard_run)

    shard_worker = sub.add_parser(
        "shard-worker",
        help="(internal) one worker process spawned by shard-run",
    )
    shard_worker.add_argument("--run-dir", required=True)
    shard_worker.add_argument("--worker-id", required=True)
    shard_worker.add_argument("--executor", choices=("thread", "async"),
                              default=None)
    shard_worker.add_argument("--intra-workers", type=int, default=1)
    shard_worker.add_argument("--lease-ttl-s", type=float, default=10.0)
    shard_worker.add_argument("--supervisor-pid", type=int, default=None)
    shard_worker.add_argument("--chaos", default=None)
    shard_worker.add_argument("--chaos-seed", type=int, default=0)
    shard_worker.set_defaults(fn=_cmd_shard_worker)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
