"""Medical schema vocabulary: the Synthea → OMOP schema-matching world.

The OMAP benchmark's Synthea task asks whether an attribute of the Synthea
EHR schema corresponds to an attribute of the OMOP common data model.  We
reproduce that structure: two schemas of (table, attribute, description)
triples and a ground-truth correspondence list.  Generic synonym pairs
("birthdate" ↔ "date of birth") get head corpus frequency; domain jargon
("rxnorm code" ↔ "drug_concept_id") gets tail frequency — which is why the
paper's zero-shot schema matching collapses (0.5 F1) while few-shot recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.knowledge.base import KnowledgeBase


# Hospital-benchmark vocabulary: conditions and the quality measures
# reported for each.  Shared by the Hospital dataset generator and the
# FM's lexicon (these are ordinary medical English).
CONDITIONS_MEASURES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("heart attack", (
        "aspirin at arrival", "aspirin at discharge",
        "beta blocker at discharge", "fibrinolytic within 30 minutes",
    )),
    ("heart failure", (
        "evaluation of lvs function", "ace inhibitor for lvsd",
        "discharge instructions",
    )),
    ("pneumonia", (
        "initial antibiotic timing", "blood culture before antibiotic",
        "pneumococcal vaccination",
    )),
    ("surgical infection prevention", (
        "prophylactic antibiotic within 1 hour", "antibiotic selection",
        "antibiotics stopped within 24 hours",
    )),
)

HOSPITAL_NAME_PARTS: tuple[str, ...] = (
    "general", "memorial", "regional", "community", "saint mary",
    "university", "baptist", "mercy", "county", "sacred heart",
)


@dataclass(frozen=True)
class SchemaAttribute:
    """One attribute of a schema."""

    table: str
    name: str
    description: str
    sample_values: tuple[str, ...] = ()

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}"


# Source schema: Synthea-style EHR export.
SYNTHEA_ATTRIBUTES: tuple[SchemaAttribute, ...] = (
    SchemaAttribute("patients", "id", "unique patient identifier", ("a3f1", "b772")),
    SchemaAttribute("patients", "birthdate", "date the patient was born", ("1974-03-02",)),
    SchemaAttribute("patients", "deathdate", "date the patient died", ("2011-07-19",)),
    SchemaAttribute("patients", "ssn", "social security number", ("999-54-1200",)),
    SchemaAttribute("patients", "first", "patient given name", ("Mei", "Omar")),
    SchemaAttribute("patients", "last", "patient family name", ("Chen", "Vargas")),
    SchemaAttribute("patients", "gender", "administrative sex of the patient", ("M", "F")),
    SchemaAttribute("patients", "race", "patient race", ("white", "asian")),
    SchemaAttribute("patients", "ethnicity", "patient ethnicity", ("hispanic",)),
    SchemaAttribute("patients", "address", "street address of residence", ("12 oak ave",)),
    SchemaAttribute("patients", "city", "city of residence", ("Boston",)),
    SchemaAttribute("patients", "state", "state of residence", ("MA",)),
    SchemaAttribute("patients", "zip", "postal code of residence", ("02101",)),
    SchemaAttribute("encounters", "id", "unique encounter identifier", ("e1",)),
    SchemaAttribute("encounters", "start", "encounter start timestamp", ("2019-01-03T09:00",)),
    SchemaAttribute("encounters", "stop", "encounter end timestamp", ("2019-01-03T09:40",)),
    SchemaAttribute("encounters", "patient", "patient the encounter belongs to", ("a3f1",)),
    SchemaAttribute("encounters", "provider", "clinician for the encounter", ("p9",)),
    SchemaAttribute("encounters", "encounterclass", "visit category", ("ambulatory",)),
    SchemaAttribute("encounters", "code", "snomed code of the visit type", ("185349003",)),
    SchemaAttribute("encounters", "reasoncode", "snomed code for the visit reason", ("44054006",)),
    SchemaAttribute("medications", "start", "date the prescription began", ("2018-05-01",)),
    SchemaAttribute("medications", "stop", "date the prescription ended", ("2018-06-01",)),
    SchemaAttribute("medications", "patient", "patient taking the medication", ("b772",)),
    SchemaAttribute("medications", "code", "rxnorm code of the drug", ("860975",)),
    SchemaAttribute("medications", "description", "drug name", ("metformin 500 mg",)),
    SchemaAttribute("conditions", "start", "date the condition was diagnosed", ("2017-02-11",)),
    SchemaAttribute("conditions", "stop", "date the condition resolved", ("2017-03-11",)),
    SchemaAttribute("conditions", "patient", "patient with the condition", ("a3f1",)),
    SchemaAttribute("conditions", "code", "snomed code of the condition", ("44054006",)),
    SchemaAttribute("conditions", "description", "condition name", ("type 2 diabetes",)),
    SchemaAttribute("observations", "date", "date of the measurement", ("2020-10-01",)),
    SchemaAttribute("observations", "patient", "patient measured", ("b772",)),
    SchemaAttribute("observations", "code", "loinc code of the measurement", ("8302-2",)),
    SchemaAttribute("observations", "value", "measured value", ("172",)),
    SchemaAttribute("observations", "units", "unit of measure", ("cm",)),
    SchemaAttribute("providers", "id", "unique provider identifier", ("p9",)),
    SchemaAttribute("providers", "name", "provider full name", ("Dr. Rosa Jensen",)),
    SchemaAttribute("providers", "speciality", "provider speciality", ("general practice",)),
)

# Target schema: OMOP common data model.
OMOP_ATTRIBUTES: tuple[SchemaAttribute, ...] = (
    SchemaAttribute("person", "person_id", "unique identifier of the person", ("1001",)),
    SchemaAttribute("person", "birth_datetime", "date and time of birth", ("1988-10-23",)),
    SchemaAttribute("person", "death_datetime", "date and time of death", ("2003-04-30",)),
    SchemaAttribute("person", "person_source_value", "source identifier such as ssn", ("999-12-7755",)),
    SchemaAttribute("person", "gender_concept_id", "standard concept for sex", ("8507",)),
    SchemaAttribute("person", "race_concept_id", "standard concept for race", ("8527",)),
    SchemaAttribute("person", "ethnicity_concept_id", "standard concept for ethnicity", ("38003563",)),
    SchemaAttribute("location", "address_1", "street address line", ("87 canal st",)),
    SchemaAttribute("location", "city", "city name", ("Denver",)),
    SchemaAttribute("location", "state", "state code", ("CO",)),
    SchemaAttribute("location", "zip", "postal zip code", ("80201",)),
    SchemaAttribute("visit_occurrence", "visit_occurrence_id", "unique visit identifier", ("v1",)),
    SchemaAttribute("visit_occurrence", "visit_start_datetime", "visit start date and time", ("2021-06-12T14:30",)),
    SchemaAttribute("visit_occurrence", "visit_end_datetime", "visit end date and time", ("2021-06-12T15:05",)),
    SchemaAttribute("visit_occurrence", "person_id", "person who had the visit", ("1001",)),
    SchemaAttribute("visit_occurrence", "provider_id", "provider for the visit", ("77",)),
    SchemaAttribute("visit_occurrence", "visit_concept_id", "standard concept of visit type", ("9202",)),
    SchemaAttribute("visit_occurrence", "visit_source_value", "source visit category", ("inpatient",)),
    SchemaAttribute("drug_exposure", "drug_exposure_start_date", "begin of the exposure interval", ("2020-09-14",)),
    SchemaAttribute("drug_exposure", "drug_exposure_end_date", "end of the exposure interval", ("2020-10-14",)),
    SchemaAttribute("drug_exposure", "person_id", "fk to person", ("1002",)),
    SchemaAttribute("drug_exposure", "drug_concept_id", "fk to standard concept, drug domain", ("1503297",)),
    SchemaAttribute("drug_exposure", "drug_source_value", "verbatim source code", ("lisinopril 10 mg",)),
    SchemaAttribute("condition_occurrence", "condition_start_date", "begin of the era", ("2015-08-19",)),
    SchemaAttribute("condition_occurrence", "condition_end_date", "end of the era", ("2015-09-02",)),
    SchemaAttribute("condition_occurrence", "person_id", "fk to person", ("1001",)),
    SchemaAttribute("condition_occurrence", "condition_concept_id", "fk to standard concept, condition domain", ("201826",)),
    SchemaAttribute("condition_occurrence", "condition_source_value", "verbatim source code", ("essential hypertension",)),
    SchemaAttribute("measurement", "measurement_date", "when the result was obtained", ("2022-02-07",)),
    SchemaAttribute("measurement", "person_id", "fk to person", ("1002",)),
    SchemaAttribute("measurement", "measurement_concept_id", "fk to standard concept, measurement domain", ("3036277",)),
    SchemaAttribute("measurement", "value_as_number", "numeric result", ("94",)),
    SchemaAttribute("measurement", "unit_source_value", "verbatim unit code", ("kg",)),
    SchemaAttribute("provider", "provider_id", "unique provider identifier", ("77",)),
    SchemaAttribute("provider", "provider_name", "full name of the provider", ("Dr. Rosa Jensen",)),
    SchemaAttribute("provider", "specialty_concept_id", "standard specialty concept", ("38004446",)),
)

# Ground-truth correspondences: (synthea qualified name, omop qualified name).
CORRESPONDENCES: tuple[tuple[str, str], ...] = (
    ("patients.id", "person.person_id"),
    ("patients.birthdate", "person.birth_datetime"),
    ("patients.deathdate", "person.death_datetime"),
    ("patients.ssn", "person.person_source_value"),
    ("patients.gender", "person.gender_concept_id"),
    ("patients.race", "person.race_concept_id"),
    ("patients.ethnicity", "person.ethnicity_concept_id"),
    ("patients.address", "location.address_1"),
    ("patients.city", "location.city"),
    ("patients.state", "location.state"),
    ("patients.zip", "location.zip"),
    ("encounters.id", "visit_occurrence.visit_occurrence_id"),
    ("encounters.start", "visit_occurrence.visit_start_datetime"),
    ("encounters.stop", "visit_occurrence.visit_end_datetime"),
    ("encounters.patient", "visit_occurrence.person_id"),
    ("encounters.provider", "visit_occurrence.provider_id"),
    ("encounters.encounterclass", "visit_occurrence.visit_source_value"),
    ("encounters.code", "visit_occurrence.visit_concept_id"),
    ("medications.start", "drug_exposure.drug_exposure_start_date"),
    ("medications.stop", "drug_exposure.drug_exposure_end_date"),
    ("medications.patient", "drug_exposure.person_id"),
    ("medications.code", "drug_exposure.drug_concept_id"),
    ("medications.description", "drug_exposure.drug_source_value"),
    ("conditions.start", "condition_occurrence.condition_start_date"),
    ("conditions.stop", "condition_occurrence.condition_end_date"),
    ("conditions.patient", "condition_occurrence.person_id"),
    ("conditions.code", "condition_occurrence.condition_concept_id"),
    ("conditions.description", "condition_occurrence.condition_source_value"),
    ("observations.date", "measurement.measurement_date"),
    ("observations.patient", "measurement.person_id"),
    ("observations.code", "measurement.measurement_concept_id"),
    ("observations.value", "measurement.value_as_number"),
    ("observations.units", "measurement.unit_source_value"),
    ("providers.id", "provider.provider_id"),
    ("providers.name", "provider.provider_name"),
    ("providers.speciality", "provider.specialty_concept_id"),
)

# Attribute-name synonymy with corpus frequency: generic English synonyms
# are head knowledge; clinical-informatics jargon is tail knowledge.
_SYNONYMS: tuple[tuple[str, str, float], ...] = (
    ("birthdate", "birth datetime", 90.0),
    ("birthdate", "date of birth", 120.0),
    ("deathdate", "death datetime", 60.0),
    ("first", "given name", 80.0),
    ("last", "family name", 80.0),
    ("provider", "clinician", 70.0),
    ("speciality", "specialty", 110.0),
    ("start", "start date", 100.0),
    ("stop", "end date", 90.0),
    ("patient", "person", 100.0),
    ("encounter", "visit", 40.0),
    ("ssn", "person source value", 0.5),
    ("gender", "gender concept id", 0.8),
    ("race", "race concept id", 0.8),
    ("ethnicity", "ethnicity concept id", 0.8),
    ("medication", "drug exposure", 0.9),
    ("condition", "condition occurrence", 0.9),
    ("observation", "measurement", 6.0),
    ("code", "concept id", 0.6),
    ("description", "source value", 0.4),
    ("units", "unit source value", 0.5),
)


def add_medical_facts(kb: KnowledgeBase) -> None:
    """Register schema synonymy facts (relation ``attr_synonym``)."""
    for a, b, freq in _SYNONYMS:
        kb.add_symmetric("attr_synonym", a, b, freq)
