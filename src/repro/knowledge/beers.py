"""Beer and brewery vocabulary for the Beer entity-matching dataset."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.knowledge.base import KnowledgeBase

_BREWERIES: tuple[str, ...] = (
    "Granite Peak Brewing", "Foggy Harbor Ales", "Ironwood Brewery",
    "Sun Dog Brewing Co.", "Riverbend Craft Works", "Old Cellar Brewing",
    "Timberline Ales", "Copper Canyon Brewery", "Wandering Bison Beer Co.",
    "Lighthouse Point Brewing", "Prairie Sky Brewing", "Black Spruce Ales",
    "Hollow Tree Brewing", "Salt Flat Brewing Co.", "Juniper Ridge Brewery",
    "Red Barn Brewing", "Cascade Hollow Ales", "Fiddlehead Fermentations",
    "Stonewheel Brewing", "Driftwood Coast Beer Co.",
)

_BEER_ADJECTIVES: tuple[str, ...] = (
    "Hazy", "Imperial", "Rustic", "Smoked", "Barrel-Aged", "Dry-Hopped",
    "Midnight", "Golden", "Velvet", "Wild", "Nitro", "Double",
)

_BEER_NOUNS: tuple[str, ...] = (
    "Trail", "Harvest", "Anchor", "Lantern", "Raven", "Meadow", "Summit",
    "Ember", "Orchard", "Fjord", "Badger", "Comet",
)

STYLES: tuple[str, ...] = (
    "American IPA", "Imperial Stout", "Pale Ale", "Hefeweizen", "Pilsner",
    "Porter", "Saison", "Amber Ale", "Sour Ale", "Brown Ale", "Witbier",
    "Barleywine",
)


@dataclass(frozen=True)
class Beer:
    """One beer entity."""

    name: str
    brewery: str
    style: str
    abv: str          # "6.5%"
    frequency: float


def build_beer_corpus(n_beers: int = 180, seed: int = 19) -> list[Beer]:
    """Mint beers with unique (name, brewery) pairs."""
    rng = random.Random(seed)
    beers: list[Beer] = []
    seen: set[tuple[str, str]] = set()
    attempts = 0
    while len(beers) < n_beers and attempts < n_beers * 20:
        attempts += 1
        name = f"{rng.choice(_BEER_ADJECTIVES)} {rng.choice(_BEER_NOUNS)}"
        brewery_rank = rng.randrange(len(_BREWERIES))
        brewery = _BREWERIES[brewery_rank]
        if (name, brewery) in seen:
            continue
        seen.add((name, brewery))
        beers.append(
            Beer(
                name=name,
                brewery=brewery,
                style=rng.choice(STYLES),
                abv=f"{rng.uniform(3.8, 12.5):.1f}%",
                frequency=60.0 / (brewery_rank + 1),
            )
        )
    return beers


def add_beer_facts(kb: KnowledgeBase, beers: list[Beer]) -> None:
    """Relation: ``beer_to_brewery``."""
    for beer in beers:
        kb.add("beer_to_brewery", beer.name, beer.brewery, beer.frequency)
