"""Restaurant vocabulary for Fodors-Zagats EM and the Restaurant DI dataset."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.knowledge.base import KnowledgeBase
from repro.knowledge.geography import CUISINES, STREET_NAMES, City

_NAME_HEADS: tuple[str, ...] = (
    "Blue Heron", "Golden Lotus", "Casa Verde", "The Brass Lantern",
    "Harbor Lights", "La Petite Maison", "Sakura Garden", "El Toro Rojo",
    "The Copper Kettle", "Magnolia Table", "The Oak Room", "Bella Notte",
    "Dragon Palace", "The Salty Anchor", "Maple Street Diner",
    "The Velvet Fig", "Chez Olivier", "Taverna Mykonos", "The Iron Skillet",
    "Lotus & Vine", "Smokehouse 52", "The Painted Door", "Trattoria Luna",
    "Bayou Belle", "The Whistling Duck", "Cedar & Salt", "Mision Azul",
    "The Lazy Oyster", "Pho Saigon Star", "Curry Leaf House",
    "The Marble Rooster", "Alpine Hearth", "The Crooked Fork",
    "Jade Fountain", "Rosemary's Kitchen", "The Tin Cup", "Villa Fiorita",
    "The Grackle", "Saffron & Smoke", "Old Mill Chophouse",
)

_NAME_SUFFIXES: tuple[str, ...] = (
    "", "", "", " cafe", " grill", " bistro", " kitchen", " restaurant",
    " bar & grill", " eatery",
)


@dataclass(frozen=True)
class Restaurant:
    """One restaurant entity with a geography-consistent address."""

    name: str
    address: str
    city: str
    state: str
    phone: str
    cuisine: str
    zip_code: str
    frequency: float


def _restaurants_per_city(rank: int, is_tail: bool) -> int:
    """Restaurant density follows city prominence.

    Major metros (rank ≤ 6) host many restaurants, mid-tier cities a
    handful, small cities a couple; tail neighborhoods get a few each so
    that dataset builders can place them in both train and test splits.
    """
    if is_tail:
        return 5
    if rank <= 6:
        return 20
    return 2


def build_restaurant_corpus(
    cities: list[City], n_restaurants: int = 300, seed: int = 17
) -> list[Restaurant]:
    """Mint restaurants whose phone area codes and zips match their city.

    Each restaurant's (address, phone, city, zip) tuple satisfies the
    geographic FDs, so "impute city from phone" is genuinely answerable
    from the knowledge base.  ``n_restaurants`` is a soft target: the
    prominence-tiered per-city allocation takes precedence (see
    :func:`_restaurants_per_city`).
    """
    del n_restaurants  # superseded by the tiered allocation
    rng = random.Random(seed)
    restaurants: list[Restaurant] = []
    seen_names: set[str] = set()
    head_rank = 0
    for city in cities:
        if not city.is_tail:
            head_rank += 1
        quota = _restaurants_per_city(head_rank, city.is_tail)
        made = 0
        attempts = 0
        while made < quota and attempts < quota * 40:
            attempts += 1
            head = rng.choice(_NAME_HEADS)
            suffix = rng.choice(_NAME_SUFFIXES)
            name = f"{head}{suffix}".lower()
            if name in seen_names:
                # Chains exist, but keep names unique so the
                # restaurant→city relation stays functional.
                name = f"{name} {made + 1}"
                if name in seen_names:
                    continue
            seen_names.add(name)
            street = rng.choice(STREET_NAMES)
            number = rng.randint(1, 9999)
            phone = (
                f"{city.primary_area_code}-{rng.randint(200, 999)}"
                f"-{rng.randint(1000, 9999)}"
            )
            restaurants.append(
                Restaurant(
                    name=name,
                    address=f"{number} {street}",
                    city=city.name,
                    state=city.state_abbr,
                    phone=phone,
                    cuisine=rng.choice(CUISINES),
                    zip_code=rng.choice(city.zip_codes),
                    frequency=city.frequency,
                )
            )
            made += 1
    rng.shuffle(restaurants)
    return restaurants


def add_restaurant_facts(kb: KnowledgeBase, restaurants: list[Restaurant]) -> None:
    """Relation: ``restaurant_to_city`` (restaurant name → city).

    Frequency mirrors the host city's prominence: a famous-city restaurant
    is "written about" proportionally more.
    """
    for restaurant in restaurants:
        kb.add(
            "restaurant_to_city", restaurant.name, restaurant.city,
            restaurant.frequency,
        )
