"""Census vocabulary (the Adult dataset's categorical domains).

Lives in the knowledge package because these category names are common
English that any foundation model has seen; the Adult dataset generator
and the FM's lexicon both import from here.
"""

from __future__ import annotations

from repro.knowledge.base import KnowledgeBase

#: Census category names are extremely common text; any model recalls them.
CENSUS_FREQUENCY = 300.0

ADULT_DOMAINS: dict[str, tuple[str, ...]] = {
    "workclass": ("private", "self-emp", "federal-gov", "state-gov", "local-gov"),
    "education": ("bachelors", "hs-grad", "masters", "some-college", "doctorate", "11th"),
    "marital_status": ("married", "never-married", "divorced", "widowed", "separated"),
    "occupation": (
        "tech-support", "craft-repair", "sales", "exec-managerial",
        "prof-specialty", "handlers-cleaners", "adm-clerical", "farming-fishing",
    ),
    "race": ("white", "black", "asian-pac-islander", "amer-indian-eskimo", "other"),
    "sex": ("male", "female"),
    "country": ("united-states", "mexico", "philippines", "germany", "canada", "india"),
    "income": ("<=50k", ">50k"),
}


def add_census_facts(kb: KnowledgeBase) -> None:
    """Relation ``census_domain``: category value → the attribute it belongs to.

    This is the pretraining knowledge that lets a prompted FM recognise
    "sales" as an occupation and "doctorate" as an education level even
    when the demonstrations never showed those particular values.
    """
    for attribute, values in ADULT_DOMAINS.items():
        for value in values:
            kb.add("census_domain", value, attribute, CENSUS_FREQUENCY)
