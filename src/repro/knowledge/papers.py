"""Bibliographic corpus for the DBLP-ACM / DBLP-GoogleScholar generators."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.knowledge.base import KnowledgeBase

_SURNAMES: tuple[str, ...] = (
    "Chen", "Garcia", "Kowalski", "Nakamura", "Okafor", "Petrov", "Silva",
    "Hoffmann", "Lindqvist", "Marino", "Novak", "O'Brien", "Park", "Rossi",
    "Sanders", "Tanaka", "Ullman-Ray", "Vargas", "Weber", "Yilmaz",
    "Andersen", "Banerjee", "Costa", "Dimitrov", "Eriksson", "Fontaine",
    "Gupta", "Haddad", "Ivanova", "Jensen",
)

_GIVEN: tuple[str, ...] = (
    "Ada", "Boris", "Clara", "Dmitri", "Elena", "Farid", "Grace", "Hiro",
    "Ingrid", "Jonas", "Katya", "Liam", "Mei", "Nadia", "Omar", "Priya",
    "Quentin", "Rosa", "Stefan", "Tara", "Uma", "Viktor", "Wen", "Yara",
)

_TOPIC_HEADS: tuple[str, ...] = (
    "query optimization", "entity resolution", "data cleaning",
    "stream processing", "transaction management", "index structures",
    "approximate query answering", "schema evolution", "view maintenance",
    "graph analytics", "columnar storage", "join algorithms",
    "concurrency control", "data provenance", "workload forecasting",
    "sketch synopses", "federated search", "cardinality estimation",
)

_TOPIC_MODIFIERS: tuple[str, ...] = (
    "adaptive", "scalable", "distributed", "incremental", "learned",
    "probabilistic", "robust", "interactive", "parallel", "self-tuning",
    "secure", "energy-aware",
)

_TITLE_TEMPLATES: tuple[str, ...] = (
    "{Mod} {head} for large-scale data systems",
    "Towards {mod} {head}",
    "{Mod} {head}: a practical approach",
    "On the complexity of {mod} {head}",
    "{Mod} {head} in the cloud",
    "Rethinking {mod} {head}",
)

VENUES: tuple[str, ...] = (
    "SIGMOD Conference", "VLDB", "ICDE", "EDBT", "CIKM", "PODS",
    "SIGMOD Record", "VLDB J.", "TKDE", "Inf. Syst.",
)

# GoogleScholar-style sloppy venue renderings keyed by the clean name.
VENUE_ALIASES: dict[str, str] = {
    "SIGMOD Conference": "Proc. ACM SIGMOD Int. Conf. on Management of Data",
    "VLDB": "Proceedings of the VLDB Endowment",
    "ICDE": "IEEE Int. Conf. on Data Engineering",
    "EDBT": "Int. Conf. on Extending Database Technology",
    "CIKM": "ACM Conf. on Information and Knowledge Management",
    "PODS": "Symposium on Principles of Database Systems",
    "SIGMOD Record": "ACM SIGMOD Record",
    "VLDB J.": "The VLDB Journal",
    "TKDE": "IEEE Trans. Knowl. Data Eng.",
    "Inf. Syst.": "Information Systems",
}


@dataclass(frozen=True)
class Paper:
    """One bibliographic record."""

    title: str
    authors: tuple[str, ...]
    venue: str
    year: int
    frequency: float


def build_paper_corpus(n_papers: int = 260, seed: int = 13) -> list[Paper]:
    """Mint a deterministic citation corpus with unique titles."""
    rng = random.Random(seed)
    papers: list[Paper] = []
    seen_titles: set[str] = set()
    attempts = 0
    while len(papers) < n_papers and attempts < n_papers * 20:
        attempts += 1
        modifier = rng.choice(_TOPIC_MODIFIERS)
        head = rng.choice(_TOPIC_HEADS)
        template = rng.choice(_TITLE_TEMPLATES)
        title = template.format(Mod=modifier.capitalize(), mod=modifier, head=head)
        if title in seen_titles:
            continue
        seen_titles.add(title)
        n_authors = rng.randint(1, 4)
        authors = tuple(
            f"{rng.choice(_GIVEN)} {rng.choice(_SURNAMES)}" for _ in range(n_authors)
        )
        papers.append(
            Paper(
                title=title,
                authors=authors,
                venue=rng.choice(VENUES),
                year=rng.randint(1995, 2012),
                frequency=50.0 / (1 + len(papers) % 25),
            )
        )
    return papers


def add_paper_facts(kb: KnowledgeBase, papers: list[Paper]) -> None:
    """Relations: ``venue_alias`` (symmetric), ``paper_to_venue``."""
    for clean, alias in VENUE_ALIASES.items():
        kb.add_symmetric("venue_alias", clean, alias, 80.0)
    for paper in papers:
        kb.add("paper_to_venue", paper.title, paper.venue, paper.frequency)
