"""Assembly of the default world: corpora + knowledge base.

``default_knowledge()`` is the single source of truth shared by the dataset
generators (which sample entities from the corpora) and the simulated
foundation model (which recalls facts from the knowledge base, subject to
its size-dependent frequency floor).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.knowledge.base import KnowledgeBase
from repro.knowledge.beers import Beer, add_beer_facts, build_beer_corpus
from repro.knowledge.calendar import add_calendar_facts
from repro.knowledge.census import add_census_facts
from repro.knowledge.geography import City, add_geography_facts, build_geography
from repro.knowledge.medical import add_medical_facts
from repro.knowledge.music import Track, add_music_facts, build_music_catalog
from repro.knowledge.papers import Paper, add_paper_facts, build_paper_corpus
from repro.knowledge.products import (
    Product,
    add_product_facts,
    build_product_catalog,
)
from repro.knowledge.restaurants import (
    Restaurant,
    add_restaurant_facts,
    build_restaurant_corpus,
)


@dataclass(frozen=True)
class World:
    """The full synthetic world.

    Immutable after construction; every generator and model reads from the
    same instance, so ground truth and model knowledge stay consistent.
    """

    cities: tuple[City, ...]
    products: tuple[Product, ...]
    tracks: tuple[Track, ...]
    papers: tuple[Paper, ...]
    restaurants: tuple[Restaurant, ...]
    beers: tuple[Beer, ...]
    kb: KnowledgeBase

    @property
    def head_cities(self) -> list[City]:
        return [city for city in self.cities if not city.is_tail]

    @property
    def tail_cities(self) -> list[City]:
        return [city for city in self.cities if city.is_tail]


def build_world(
    n_tail_cities: int = 12,
    n_products: int = 400,
    n_tracks: int = 240,
    n_papers: int = 260,
    n_restaurants: int = 300,
    n_beers: int = 180,
) -> World:
    """Build a world from scratch (deterministic for fixed arguments)."""
    cities = build_geography(n_tail_cities)
    products = build_product_catalog(n_products)
    tracks = build_music_catalog(n_tracks)
    papers = build_paper_corpus(n_papers)
    restaurants = build_restaurant_corpus(cities, n_restaurants)
    beers = build_beer_corpus(n_beers)

    kb = KnowledgeBase()
    add_geography_facts(kb, cities)
    add_product_facts(kb, products)
    add_music_facts(kb, tracks)
    add_paper_facts(kb, papers)
    add_restaurant_facts(kb, restaurants)
    add_beer_facts(kb, beers)
    add_medical_facts(kb)
    add_calendar_facts(kb)
    add_census_facts(kb)

    return World(
        cities=tuple(cities),
        products=tuple(products),
        tracks=tuple(tracks),
        papers=tuple(papers),
        restaurants=tuple(restaurants),
        beers=tuple(beers),
        kb=kb,
    )


@lru_cache(maxsize=1)
def default_world() -> World:
    """The canonical world instance (cached)."""
    return build_world()


def default_knowledge() -> KnowledgeBase:
    """The canonical knowledge base (cached via :func:`default_world`)."""
    return default_world().kb
