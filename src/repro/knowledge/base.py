"""Generic frequency-annotated fact store."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Fact:
    """One (relation, subject, object) triple with a corpus frequency.

    ``frequency`` models how often the fact appears in a pretraining corpus
    (arbitrary positive units; larger = more common).  A fact with
    frequency 0 exists in the world but was never written down — no model
    can recall it, only infer it from structure.
    """

    relation: str
    subject: str
    obj: str
    frequency: float = 1.0

    def __post_init__(self):
        if self.frequency < 0:
            raise ValueError(f"frequency must be >= 0, got {self.frequency}")


class KnowledgeBase:
    """An indexed collection of :class:`Fact` triples.

    Lookups are case-insensitive on the subject.  ``lookup`` honours an
    optional ``min_frequency`` floor — the hook the simulated FM uses to
    model size-dependent knowledge coverage.
    """

    def __init__(self):
        self._facts: list[Fact] = []
        self._by_relation_subject: dict[tuple[str, str], list[Fact]] = defaultdict(list)
        self._by_relation: dict[str, list[Fact]] = defaultdict(list)
        self._entity_frequency: dict[str, float] = {}

    # -- construction ------------------------------------------------------

    def add(self, relation: str, subject: str, obj: str, frequency: float = 1.0) -> Fact:
        """Add one triple and return the stored :class:`Fact`."""
        fact = Fact(relation=relation, subject=subject, obj=obj, frequency=frequency)
        key = (relation, subject.casefold())
        self._facts.append(fact)
        self._by_relation_subject[key].append(fact)
        self._by_relation[relation].append(fact)
        for entity in (subject, obj):
            folded = entity.casefold()
            self._entity_frequency[folded] = max(
                self._entity_frequency.get(folded, 0.0), frequency
            )
        return fact

    def add_symmetric(self, relation: str, a: str, b: str, frequency: float = 1.0) -> None:
        """Add a triple in both directions (synonymy, equivalence)."""
        self.add(relation, a, b, frequency)
        self.add(relation, b, a, frequency)

    def merge(self, other: "KnowledgeBase") -> None:
        """Absorb every fact from ``other``."""
        for fact in other._facts:
            self.add(fact.relation, fact.subject, fact.obj, fact.frequency)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._facts)

    def relations(self) -> set[str]:
        return set(self._by_relation)

    def lookup(
        self, relation: str, subject: str, min_frequency: float = 0.0
    ) -> list[Fact]:
        """All facts for (relation, subject) at or above ``min_frequency``.

        Results are sorted most-frequent first, so ``lookup(...)[0]`` is the
        best-attested answer.
        """
        facts = self._by_relation_subject.get((relation, subject.casefold()), [])
        eligible = [fact for fact in facts if fact.frequency >= min_frequency]
        return sorted(eligible, key=lambda fact: fact.frequency, reverse=True)

    def lookup_one(
        self, relation: str, subject: str, min_frequency: float = 0.0
    ) -> str | None:
        """The best-attested object for (relation, subject), if any."""
        facts = self.lookup(relation, subject, min_frequency)
        return facts[0].obj if facts else None

    def facts_for_relation(self, relation: str) -> list[Fact]:
        return list(self._by_relation.get(relation, []))

    def entity_frequency(self, entity: str) -> float:
        """Maximum frequency of any fact mentioning ``entity`` (0 if unknown)."""
        return self._entity_frequency.get(entity.casefold(), 0.0)

    def knows_entity(self, entity: str, min_frequency: float = 0.0) -> bool:
        """True if ``entity`` appears in some fact above the floor."""
        return self.entity_frequency(entity) >= min_frequency and (
            entity.casefold() in self._entity_frequency
        )

    def subjects(self, relation: str) -> list[str]:
        """Distinct subjects of ``relation`` (original casing, first wins)."""
        seen: dict[str, str] = {}
        for fact in self._by_relation.get(relation, []):
            seen.setdefault(fact.subject.casefold(), fact.subject)
        return list(seen.values())

    def objects(self, relation: str) -> list[str]:
        """Distinct objects of ``relation`` (original casing, first wins)."""
        seen: dict[str, str] = {}
        for fact in self._by_relation.get(relation, []):
            seen.setdefault(fact.obj.casefold(), fact.obj)
        return list(seen.values())
