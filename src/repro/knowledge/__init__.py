"""World-knowledge substrate.

The paper's central observation about data imputation is that a large FM
succeeds because of *knowledge encoded during pretraining* — functional
dependencies between addresses and zip codes, brands and manufacturers,
and so on.  To reproduce that offline, this package provides a consistent
synthetic world: a geography with city↔state↔zip↔area-code dependencies,
a product/brand catalogue, bibliographic and music corpora, restaurant and
beer vocabularies, and the medical schema pair for schema matching.

Every fact carries a *corpus frequency* (Zipf-distributed by prominence).
The simulated foundation model can only recall facts whose frequency clears
a size-dependent floor — so a 175B model "knows" tail cities a 1.3B model
does not, which is exactly the mechanism behind the paper's Tables 2, 5
and 6.  Dataset generators sample from the same world, so ground truth and
model knowledge are consistent by construction.
"""

from repro.knowledge.base import Fact, KnowledgeBase
from repro.knowledge.geography import City, build_geography
from repro.knowledge.products import Product, build_product_catalog
from repro.knowledge.world import World, build_world, default_knowledge, default_world

__all__ = [
    "City",
    "Fact",
    "KnowledgeBase",
    "Product",
    "World",
    "build_geography",
    "build_product_catalog",
    "build_world",
    "default_knowledge",
    "default_world",
]
