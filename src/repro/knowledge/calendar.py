"""Calendar knowledge: months and weekdays.

Head knowledge (every model size recalls these) used by the semantic data
transformations and the FM's date normalization.
"""

from __future__ import annotations

from repro.knowledge.base import KnowledgeBase

MONTHS: tuple[str, ...] = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)

WEEKDAYS: tuple[str, ...] = (
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday",
    "Sunday",
)

MONTH_FREQUENCY = 800.0
WEEKDAY_FREQUENCY = 800.0


def month_number(name: str) -> int | None:
    """1-based month number for a full or abbreviated month name."""
    prefix = name.strip()[:3].casefold()
    for i, month in enumerate(MONTHS, start=1):
        if month[:3].casefold() == prefix:
            return i
    return None


def add_calendar_facts(kb: KnowledgeBase) -> None:
    """Relations: ``month_to_number``, ``number_to_month``,
    ``month_abbrev`` (symmetric), ``weekday_abbrev`` (symmetric)."""
    for i, month in enumerate(MONTHS, start=1):
        kb.add("month_to_number", month, str(i), MONTH_FREQUENCY)
        kb.add("month_to_number", month[:3], str(i), MONTH_FREQUENCY)
        kb.add("number_to_month", str(i), month, MONTH_FREQUENCY)
        kb.add_symmetric("month_abbrev", month, month[:3], MONTH_FREQUENCY)
    for day in WEEKDAYS:
        kb.add_symmetric("weekday_abbrev", day, day[:3], WEEKDAY_FREQUENCY)
