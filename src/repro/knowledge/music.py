"""Music catalogue for the iTunes-Amazon entity-matching generator."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.knowledge.base import KnowledgeBase

_ARTISTS: tuple[str, ...] = (
    "The Midnight Echoes", "Silver Canyon", "Nora Vale", "DJ Copperfield",
    "The Paper Lanterns", "Iris & June", "Cold Harbor", "Marcus Reed",
    "Velvet Antlers", "The Northern Line", "Stella Marquez", "Glass Orchard",
    "Benny Calloway", "The Atlas Wires", "Maple & Stone", "Ruby Fontaine",
    "The Hollow Kings", "Sierra Boulevard", "Tommy Lark", "Golden Harbor",
    "Ashes of August", "The Quiet Mile", "Lena Hartwood", "Crimson Tides",
    "The Wandering Sons", "Phoebe Sinclair", "Neon Prairie", "Jack Mercer",
    "The Lantern Club", "Violet Skyline",
)

_ALBUM_WORDS: tuple[str, ...] = (
    "Midnight", "Roads", "Electric", "Harvest", "Sunset", "Paper", "Wild",
    "Golden", "Shadows", "Rivers", "Holiday", "Echo", "Blue", "Stories",
    "Summer", "Winter", "Vagabond", "Satellite", "Lighthouse", "Reverie",
)

_TRACK_WORDS: tuple[str, ...] = (
    "Home", "Run", "Falling", "Tonight", "Stay", "Fire", "Ghost", "Heart",
    "Gone", "Again", "Slow", "Gold", "River", "Train", "Light", "Wires",
    "Saturday", "Diamonds", "Stranger", "静", "Carousel", "Anthem",
)

GENRES: tuple[str, ...] = (
    "Pop", "Rock", "Indie Rock", "Folk", "Electronic", "Hip-Hop", "Country",
    "R&B", "Jazz", "Alternative",
)


@dataclass(frozen=True)
class Track:
    """One song: the entity matched in the iTunes-Amazon dataset."""

    title: str
    artist: str
    album: str
    genre: str
    time: str        # "m:ss"
    price: str       # "$0.99"
    released: str    # "Mar 14, 2011"
    frequency: float


def build_music_catalog(n_tracks: int = 240, seed: int = 11) -> list[Track]:
    """Mint a deterministic track catalogue with unique (title, artist)."""
    rng = random.Random(seed)
    months = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
              "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
    tracks: list[Track] = []
    seen: set[tuple[str, str]] = set()
    attempts = 0
    while len(tracks) < n_tracks and attempts < n_tracks * 20:
        attempts += 1
        artist_rank = rng.randrange(len(_ARTISTS))
        artist = _ARTISTS[artist_rank]
        title_words = rng.sample(_TRACK_WORDS, rng.randint(1, 3))
        title = " ".join(title_words)
        if (title, artist) in seen:
            continue
        seen.add((title, artist))
        album = " ".join(rng.sample(_ALBUM_WORDS, rng.randint(1, 2)))
        time = f"{rng.randint(2, 6)}:{rng.randint(0, 59):02d}"
        price = rng.choice(("$0.99", "$1.29", "$1.99"))
        released = (
            f"{rng.choice(months)} {rng.randint(1, 28)}, {rng.randint(1998, 2014)}"
        )
        tracks.append(
            Track(
                title=title,
                artist=artist,
                album=album,
                genre=rng.choice(GENRES),
                time=time,
                price=price,
                released=released,
                frequency=200.0 / (artist_rank + 1),
            )
        )
    return tracks


def add_music_facts(kb: KnowledgeBase, tracks: list[Track]) -> None:
    """Relations: ``track_to_artist``, ``album_to_artist``."""
    for track in tracks:
        kb.add("track_to_artist", track.title, track.artist, track.frequency)
        kb.add("album_to_artist", track.album, track.artist, track.frequency)
