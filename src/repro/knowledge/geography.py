"""Synthetic-but-consistent US geography.

Head entities are real, well-known cities (with their real area codes where
famous — the paper's Table 6 probes "415-775-7036 → San Francisco" style
dependencies).  Tail entities are procedurally generated neighborhoods and
small towns with corpus frequency ≈ 0: they exist in the world (dataset
generators can use them as ground truth) but no model size can *recall*
them — they can only be learned from task training data.  This split is
what Appendix B's Table 5 slices measure.

All functional dependencies hold by construction:

* ``zip → (city, state)`` — each zip code belongs to exactly one city,
* ``area code → city`` — unique here (a simplification; good enough for
  the phone→city imputation probes),
* ``city → state`` — city names are unique across states in this world.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.knowledge.base import KnowledgeBase

# (city, state abbr, state name, zip prefix, area codes, prominence rank)
# Prominence rank 1 = most famous; corpus frequency decays as 1/rank.
_HEAD_CITIES: list[tuple[str, str, str, str, tuple[str, ...], int]] = [
    ("New York", "NY", "New York", "100", ("212", "917"), 1),
    ("Los Angeles", "CA", "California", "900", ("213", "323"), 2),
    ("Chicago", "IL", "Illinois", "606", ("312", "773"), 3),
    ("Houston", "TX", "Texas", "770", ("713",), 4),
    ("Philadelphia", "PA", "Pennsylvania", "191", ("215",), 5),
    ("Phoenix", "AZ", "Arizona", "850", ("602",), 6),
    ("San Francisco", "CA", "California", "941", ("415",), 7),
    ("San Diego", "CA", "California", "921", ("619",), 8),
    ("Dallas", "TX", "Texas", "752", ("214",), 9),
    ("Boston", "MA", "Massachusetts", "021", ("617",), 10),
    ("Seattle", "WA", "Washington", "981", ("206",), 11),
    ("Denver", "CO", "Colorado", "802", ("303",), 12),
    ("Atlanta", "GA", "Georgia", "303", ("404",), 13),
    ("Miami", "FL", "Florida", "331", ("305",), 14),
    ("Las Vegas", "NV", "Nevada", "891", ("702",), 15),
    ("Detroit", "MI", "Michigan", "482", ("313",), 16),
    ("Minneapolis", "MN", "Minnesota", "554", ("612",), 17),
    ("New Orleans", "LA", "Louisiana", "701", ("504",), 18),
    ("Portland", "OR", "Oregon", "972", ("503",), 19),
    ("Nashville", "TN", "Tennessee", "372", ("615",), 20),
    ("Baltimore", "MD", "Maryland", "212", ("410",), 21),
    ("Washington", "DC", "District of Columbia", "200", ("202",), 22),
    ("Austin", "TX", "Texas", "787", ("512",), 23),
    ("Memphis", "TN", "Tennessee", "381", ("901",), 24),
    ("Milwaukee", "WI", "Wisconsin", "532", ("414",), 25),
    ("Kansas City", "MO", "Missouri", "641", ("816",), 26),
    ("Sacramento", "CA", "California", "958", ("916",), 27),
    ("St. Louis", "MO", "Missouri", "631", ("314",), 28),
    ("Pittsburgh", "PA", "Pennsylvania", "152", ("412",), 29),
    ("Cincinnati", "OH", "Ohio", "452", ("513",), 30),
    ("Cleveland", "OH", "Ohio", "441", ("216",), 31),
    ("Tampa", "FL", "Florida", "336", ("813",), 32),
    ("Orlando", "FL", "Florida", "328", ("407",), 33),
    ("San Jose", "CA", "California", "951", ("408",), 34),
    ("Columbus", "OH", "Ohio", "432", ("614",), 35),
    ("Charlotte", "NC", "North Carolina", "282", ("704",), 36),
    ("Indianapolis", "IN", "Indiana", "462", ("317",), 37),
    ("Salt Lake City", "UT", "Utah", "841", ("801",), 38),
    ("Oklahoma City", "OK", "Oklahoma", "731", ("405",), 39),
    ("Louisville", "KY", "Kentucky", "402", ("502",), 40),
    ("Birmingham", "AL", "Alabama", "352", ("205",), 41),
    ("Richmond", "VA", "Virginia", "232", ("804",), 42),
    ("Buffalo", "NY", "New York", "142", ("716",), 43),
    ("Hartford", "CT", "Connecticut", "061", ("860",), 44),
    ("Providence", "RI", "Rhode Island", "029", ("401",), 45),
    ("Albuquerque", "NM", "New Mexico", "871", ("505",), 46),
    ("Tucson", "AZ", "Arizona", "857", ("520",), 47),
    ("Omaha", "NE", "Nebraska", "681", ("402",), 48),
    ("Honolulu", "HI", "Hawaii", "968", ("808",), 49),
    ("Anchorage", "AK", "Alaska", "995", ("907",), 50),
    ("Malibu", "CA", "California", "902", ("310",), 51),
    ("Pasadena", "CA", "California", "911", ("626",), 52),
    ("Berkeley", "CA", "California", "947", ("510",), 53),
    ("Santa Monica", "CA", "California", "904", ("424",), 54),
    ("Boulder", "CO", "Colorado", "803", ("720",), 55),
    ("Ann Arbor", "MI", "Michigan", "481", ("734",), 56),
    ("Savannah", "GA", "Georgia", "314", ("912",), 57),
    ("Tuscaloosa", "AL", "Alabama", "354", ("659",), 58),
    ("Santa Fe", "NM", "New Mexico", "875", ("575",), 59),
    ("Boise", "ID", "Idaho", "837", ("208",), 60),
]

# Directional prefixes / suffixes used to mint tail neighborhoods of the
# head cities ("West LA", "North Beach Seattle" …).  These get corpus
# frequency 0: no model recalls them; they can only be learned from data.
_TAIL_PREFIXES = ("West", "East", "North", "South", "Old Town", "Upper", "Lower")
_TAIL_STEMS = (
    "LA", "Ridge", "Haven", "Falls", "Grove", "Crossing", "Harbor", "Meadows",
    "Springs", "Heights", "Junction", "Pines", "Bluff", "Landing", "Hollow",
)

STREET_NAMES: tuple[str, ...] = (
    "main st", "broadway", "university blvd", "pacific coast hwy",
    "north point st", "oak ave", "maple dr", "5th ave", "lake shore dr",
    "market st", "elm st", "sunset blvd", "washington ave", "park rd",
    "river rd", "highland ave", "cedar ln", "valley view dr", "mission st",
    "ocean ave", "state st", "church st", "pearl st", "spring st",
    "canal st", "front st", "bay st", "grand ave", "union sq",
    "melrose ave", "ventura blvd", "la cienega blvd", "colorado blvd",
)

CUISINES: tuple[str, ...] = (
    "american", "italian", "french", "chinese", "japanese", "mexican",
    "thai", "indian", "mediterranean", "seafood", "steakhouse", "bbq",
    "vegetarian", "cajun", "greek", "korean", "vietnamese", "spanish",
    "delis", "coffee shops", "pizza", "southern", "continental",
)

#: Corpus frequency assigned to the most prominent city (rank 1); the rest
#: decay as ``HEAD_FREQUENCY_SCALE / rank`` (a Zipf law).
HEAD_FREQUENCY_SCALE = 1000.0


@dataclass(frozen=True)
class City:
    """One city in the synthetic world."""

    name: str
    state_abbr: str
    state_name: str
    zip_codes: tuple[str, ...]
    area_codes: tuple[str, ...]
    frequency: float
    is_tail: bool = False

    @property
    def primary_zip(self) -> str:
        return self.zip_codes[0]

    @property
    def primary_area_code(self) -> str:
        return self.area_codes[0]


def _head_cities() -> list[City]:
    cities = []
    for name, abbr, state, zip_prefix, area_codes, rank in _HEAD_CITIES:
        zips = tuple(f"{zip_prefix}{i:02d}" for i in (1, 5, 12, 33))
        cities.append(
            City(
                name=name,
                state_abbr=abbr,
                state_name=state,
                zip_codes=zips,
                area_codes=area_codes,
                frequency=HEAD_FREQUENCY_SCALE / rank,
            )
        )
    return cities


def _tail_cities(n_tail: int) -> list[City]:
    """Mint ``n_tail`` deterministic tail neighborhoods (frequency 0)."""
    cities = []
    head = _HEAD_CITIES
    for i in range(n_tail):
        prefix = _TAIL_PREFIXES[i % len(_TAIL_PREFIXES)]
        stem = _TAIL_STEMS[(i // len(_TAIL_PREFIXES)) % len(_TAIL_STEMS)]
        name = f"{prefix} {stem}"
        # Park each tail city in a host state, with synthetic codes derived
        # from its index so the FDs stay collision-free: tail zips use the
        # reserved 990xx band, tail area codes the 930-989 band.
        host = head[i % len(head)]
        zip_code = f"9{9000 + i:04d}"[:5]
        # Tail area codes live in the 930-989 band, which no head city
        # occupies — the uniqueness FD must hold for any tail count.
        area_code = f"9{30 + (i % 60):02d}"
        cities.append(
            City(
                name=name,
                state_abbr=host[1],
                state_name=host[2],
                zip_codes=(zip_code,),
                area_codes=(area_code,),
                frequency=0.0,
                is_tail=True,
            )
        )
    return cities


def build_geography(n_tail: int = 40) -> list[City]:
    """The full city list: heads (Zipf frequencies) then tails (frequency 0).

    Deterministic; city names are unique.
    """
    cities = _head_cities() + _tail_cities(n_tail)
    names = [city.name.casefold() for city in cities]
    if len(set(names)) != len(names):
        raise AssertionError("geography invariant violated: duplicate city names")
    return cities


def add_geography_facts(kb: KnowledgeBase, cities: list[City]) -> None:
    """Register the geographic functional dependencies in ``kb``.

    Relations: ``zip_to_city``, ``zip_to_state``, ``city_to_state``,
    ``city_to_zip``, ``area_code_to_city``, ``city_to_area_code``,
    ``state_abbr_to_name`` (symmetric via ``state_name_to_abbr``).
    """
    seen_states: set[str] = set()
    for city in cities:
        freq = city.frequency
        kb.add("city_to_state", city.name, city.state_abbr, freq)
        kb.add("state_to_city", city.state_abbr, city.name, freq)
        for zip_code in city.zip_codes:
            kb.add("zip_to_city", zip_code, city.name, freq)
            kb.add("zip_to_state", zip_code, city.state_abbr, freq)
            kb.add("city_to_zip", city.name, zip_code, freq)
        for area_code in city.area_codes:
            kb.add("area_code_to_city", area_code, city.name, freq)
            kb.add("city_to_area_code", city.name, area_code, freq)
        if city.state_abbr not in seen_states:
            seen_states.add(city.state_abbr)
            # State names are extremely common; give them head frequency.
            kb.add("state_abbr_to_name", city.state_abbr, city.state_name, 900.0)
            kb.add("state_name_to_abbr", city.state_name, city.state_abbr, 900.0)
