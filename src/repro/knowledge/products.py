"""Product and brand catalogue.

Used by the Buy imputation dataset (manufacturer is the attribute to
impute), the Walmart-Amazon and Amazon-Google entity-matching generators
(jargon-heavy product listings), and the simulated FM's brand knowledge
("pcanywhere is a symantec product").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.knowledge.base import KnowledgeBase

# (brand, aliases, category, prominence rank)
_BRANDS: list[tuple[str, tuple[str, ...], str, int]] = [
    ("Sony", (), "electronics", 1),
    ("Apple", (), "electronics", 2),
    ("Samsung", (), "electronics", 3),
    ("Microsoft", ("msft",), "software", 4),
    ("Hewlett-Packard", ("hp",), "electronics", 5),
    ("Canon", (), "electronics", 6),
    ("Dell", (), "electronics", 7),
    ("Panasonic", (), "electronics", 8),
    ("LG", ("lg electronics",), "electronics", 9),
    ("Toshiba", (), "electronics", 10),
    ("Adobe", ("adobe systems",), "software", 11),
    ("Symantec", (), "software", 12),
    ("Logitech", (), "electronics", 13),
    ("Nikon", (), "electronics", 14),
    ("Epson", (), "electronics", 15),
    ("Intel", (), "electronics", 16),
    ("Cisco", ("cisco systems",), "electronics", 17),
    ("Garmin", (), "electronics", 18),
    ("Philips", (), "electronics", 19),
    ("Sharp", (), "electronics", 20),
    ("Brother", (), "electronics", 21),
    ("Netgear", (), "electronics", 22),
    ("Linksys", (), "electronics", 23),
    ("Kodak", ("eastman kodak",), "electronics", 24),
    ("McAfee", (), "software", 25),
    ("Corel", (), "software", 26),
    ("Intuit", (), "software", 27),
    ("Autodesk", (), "software", 28),
    ("Belkin", (), "electronics", 29),
    ("Olympus", (), "electronics", 30),
    ("JVC", (), "electronics", 31),
    ("Pioneer", (), "electronics", 32),
    ("Kenwood", (), "electronics", 33),
    ("Sandisk", (), "electronics", 34),
    ("Seagate", (), "electronics", 35),
    ("Western Digital", ("wd",), "electronics", 36),
    ("Casio", (), "electronics", 37),
    ("TomTom", (), "electronics", 38),
    ("Plantronics", (), "electronics", 39),
    ("Kingston", ("kingston technology",), "electronics", 40),
]

# Product-line stems per category.  Lines are brand-agnostic nouns; a
# product name is "<brand> <line> <model code> <descriptor?>".
_LINES: dict[str, tuple[str, ...]] = {
    "electronics": (
        "digital camera", "camcorder", "lcd monitor", "laser printer",
        "wireless router", "usb flash drive", "external hard drive",
        "noise canceling headphones", "bluetooth speaker", "gps navigator",
        "dvd player", "home theater system", "photo scanner",
        "inkjet printer", "memory card", "wireless mouse", "keyboard",
        "webcam", "projector", "av receiver",
    ),
    "software": (
        "antivirus", "office suite", "photo editor", "video editor",
        "tax software", "backup utility", "firewall", "pc tuneup",
        "drawing suite", "pdf editor", "remote access", "cad software",
    ),
}

_DESCRIPTORS: tuple[str, ...] = (
    "black", "silver", "white", "refurbished", "retail box", "oem",
    "2-pack", "with case", "hd", "compact", "professional", "home edition",
    "upgrade", "full version", "win/mac", "for windows", "wireless",
)

#: Corpus frequency of the most prominent brand; decays as 1/rank.
BRAND_FREQUENCY_SCALE = 500.0


@dataclass(frozen=True)
class Product:
    """One catalogue product."""

    name: str            # full listing name, brand included
    short_name: str      # line + model code, brand omitted
    manufacturer: str
    category: str
    model_code: str
    price: float
    frequency: float


def _model_code(rng: random.Random, style: int) -> str:
    """A plausible alphanumeric model number.

    Three house styles so different brands "look" different:
    ``DSC-W55``, ``11.0``, ``mx4500``.
    """
    letters = "".join(rng.choice("ABCDEFGHKLMNPRSTVWX") for _ in range(rng.randint(2, 3)))
    if style == 0:
        return f"{letters}-{rng.randint(1, 99)}{rng.choice(['', '0', '5'])}"
    if style == 1:
        return f"{rng.randint(1, 12)}.{rng.randint(0, 9)}"
    return f"{letters.lower()}{rng.randint(100, 9999)}"


def brand_frequency(rank: int) -> float:
    return BRAND_FREQUENCY_SCALE / rank


def build_product_catalog(n_products: int = 400, seed: int = 7) -> list[Product]:
    """Deterministically mint ``n_products`` catalogue products.

    Product short names are unique, so ``product_to_manufacturer`` is a
    true functional dependency.
    """
    rng = random.Random(seed)
    products: list[Product] = []
    seen_short: set[str] = set()
    attempts = 0
    while len(products) < n_products and attempts < n_products * 20:
        attempts += 1
        brand, _aliases, category, rank = _BRANDS[rng.randrange(len(_BRANDS))]
        line = rng.choice(_LINES[category])
        code = _model_code(rng, rank % 3)
        short_name = f"{line} {code}"
        if short_name in seen_short:
            continue
        seen_short.add(short_name)
        descriptor = rng.choice(_DESCRIPTORS) if rng.random() < 0.6 else ""
        name = " ".join(part for part in (brand, short_name, descriptor) if part)
        price = round(rng.uniform(9.99, 1299.99), 2)
        products.append(
            Product(
                name=name,
                short_name=short_name,
                manufacturer=brand,
                category=category,
                model_code=code,
                price=price,
                frequency=brand_frequency(rank),
            )
        )
    return products


def add_product_facts(kb: KnowledgeBase, products: list[Product]) -> None:
    """Register brand knowledge.

    Relations: ``product_to_manufacturer`` (short product name → brand),
    ``brand_alias`` (symmetric), ``brand_category``.
    """
    for brand, aliases, category, rank in _BRANDS:
        freq = brand_frequency(rank)
        kb.add("brand_category", brand, category, freq)
        for alias in aliases:
            kb.add_symmetric("brand_alias", brand, alias, freq)
    for product in products:
        kb.add(
            "product_to_manufacturer",
            product.short_name,
            product.manufacturer,
            product.frequency,
        )


def known_brands() -> list[str]:
    """All canonical brand names, most prominent first."""
    return [brand for brand, _aliases, _category, _rank in _BRANDS]
