"""Tokenizers used across the library.

All tokenizers are deterministic and regex based.  They intentionally avoid
any external NLP dependency: the simulated foundation model and the baseline
systems need consistent token boundaries far more than they need perfect
linguistic segmentation.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[.\-'/][A-Za-z0-9]+)*")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")


def word_tokens(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word tokens.

    Tokens are maximal runs of alphanumerics, optionally joined by inner
    punctuation such as ``-``, ``.``, ``'`` or ``/`` (so ``cd-rom`` and
    ``11.0`` survive as single tokens).

    >>> word_tokens("PCAnywhere 11.0 Host-Only CD-ROM!")
    ['pcanywhere', '11.0', 'host-only', 'cd-rom']
    """
    if not text:
        return []
    tokens = _WORD_RE.findall(text)
    if lowercase:
        tokens = [token.lower() for token in tokens]
    return tokens


def char_ngrams(text: str, n: int = 3, pad: bool = True) -> list[str]:
    """Character n-grams of ``text``.

    When ``pad`` is true the string is wrapped in ``#`` sentinels so that
    prefixes and suffixes get their own grams — the standard trick that makes
    character-gram Jaccard a robust fuzzy matcher.

    A string shorter than ``n`` (only reachable with ``pad=False``; padding
    guarantees length ``>= n``) has no n-grams and yields ``[]``.  The old
    behaviour of returning the undersized string as a pseudo-gram silently
    inflated Jaccard similarity between short values: ``"ab"`` and ``"ab"``
    matched on a gram no real trigram set contains.

    >>> char_ngrams("ab", n=3)
    ['##a', '#ab', 'ab#', 'b##']
    >>> char_ngrams("ab", n=3, pad=False)
    []
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not text:
        return []
    if pad:
        text = "#" * (n - 1) + text + "#" * (n - 1)
    if len(text) < n:
        return []
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def word_ngrams(tokens: list[str], n: int = 2) -> list[str]:
    """Contiguous word n-grams joined by a single space.

    Fewer than ``n`` tokens means no n-grams: the result is ``[]``,
    consistent with :func:`char_ngrams` — an undersized pseudo-gram
    would make every pair of short values spuriously similar.

    >>> word_ngrams(["new", "york", "city"], n=2)
    ['new york', 'york city']
    >>> word_ngrams(["only"], n=2)
    []
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if len(tokens) < n:
        return []
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def sentence_split(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation.

    Used by the prompt parser to separate serialized entities inside a
    prompt body ("Product A is ... . Product B is ... .").
    """
    if not text:
        return []
    parts = _SENTENCE_RE.split(text.strip())
    return [part.strip() for part in parts if part.strip()]
