"""String-processing substrate.

Tokenization, normalization, classical similarity metrics and value-pattern
profiling. These primitives are shared by the simulated foundation model,
the dataset generators, and every baseline system (Magellan-style feature
vectors, HoloDetect featurization, TDE's transformation DSL).
"""

from repro.text.tokenize import (
    char_ngrams,
    sentence_split,
    word_ngrams,
    word_tokens,
)
from repro.text.normalize import (
    casefold,
    expand_abbreviations,
    normalize_value,
    normalize_whitespace,
    strip_punctuation,
)
from repro.text.similarity import (
    cosine_tokens,
    dice_coefficient,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    monge_elkan,
    overlap_coefficient,
    prefix_similarity,
)
from repro.text.tfidf import TfidfVectorizer
from repro.text.patterns import (
    infer_semantic_type,
    is_date_like,
    is_null_token,
    is_numeric,
    is_phone_like,
    is_product_code,
    is_zip_like,
    value_pattern,
)

__all__ = [
    "TfidfVectorizer",
    "casefold",
    "char_ngrams",
    "cosine_tokens",
    "dice_coefficient",
    "expand_abbreviations",
    "infer_semantic_type",
    "is_date_like",
    "is_null_token",
    "is_numeric",
    "is_phone_like",
    "is_product_code",
    "is_zip_like",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_ratio",
    "monge_elkan",
    "normalize_value",
    "normalize_whitespace",
    "overlap_coefficient",
    "prefix_similarity",
    "sentence_split",
    "strip_punctuation",
    "value_pattern",
    "word_ngrams",
    "word_tokens",
]
