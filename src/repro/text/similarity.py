"""Classical string-similarity metrics.

These are the building blocks of the Magellan-style feature vectors, the
blocking heuristics, the SMAT schema-matching features and — with semantic
re-weighting layered on top — the simulated foundation model's notion of
entity similarity.

All metrics return values in ``[0, 1]`` (except :func:`levenshtein`, which
returns an edit distance) and treat the empty string consistently: two empty
strings are identical (similarity 1), one empty string is maximally
dissimilar (similarity 0).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
import math


def levenshtein(a: str, b: str, max_distance: int | None = None) -> int:
    """Edit distance between ``a`` and ``b``.

    Uses the classic two-row dynamic program.  If ``max_distance`` is given
    and the true distance exceeds it, returns ``max_distance + 1`` (an early
    exit used heavily inside blocking loops).
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):
        a, b = b, a
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1

    previous = list(range(len(a) + 1))
    current = [0] * (len(a) + 1)
    for i, ch_b in enumerate(b, start=1):
        current[0] = i
        row_min = i
        for j, ch_a in enumerate(a, start=1):
            cost = 0 if ch_a == ch_b else 1
            current[j] = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
            if current[j] < row_min:
                row_min = current[j]
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous, current = current, previous
    return previous[len(a)]


def levenshtein_ratio(a: str, b: str) -> float:
    """Normalized edit similarity: ``1 - distance / max(len)``."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)

    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ch:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity with the standard prefix boost (<= 4 chars)."""
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def _as_set(items: Sequence[str]) -> set[str]:
    return items if isinstance(items, set) else set(items)


def jaccard(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard similarity of two token collections."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def overlap_coefficient(a: Sequence[str], b: Sequence[str]) -> float:
    """Szymkiewicz-Simpson overlap: ``|A∩B| / min(|A|, |B|)``."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def dice_coefficient(a: Sequence[str], b: Sequence[str]) -> float:
    """Sørensen-Dice coefficient of two token collections."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def cosine_tokens(a: Sequence[str], b: Sequence[str]) -> float:
    """Cosine similarity over raw token counts (bag of words)."""
    count_a, count_b = Counter(a), Counter(b)
    if not count_a and not count_b:
        return 1.0
    if not count_a or not count_b:
        return 0.0
    dot = sum(count_a[token] * count_b[token] for token in count_a.keys() & count_b.keys())
    norm_a = math.sqrt(sum(value * value for value in count_a.values()))
    norm_b = math.sqrt(sum(value * value for value in count_b.values()))
    return dot / (norm_a * norm_b)


def monge_elkan(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    inner=jaro_winkler,
) -> float:
    """Monge-Elkan similarity: mean best ``inner`` match of each a-token.

    The asymmetric hybrid metric used by Magellan for multi-word fields; we
    symmetrize it by averaging both directions so it can serve as a generic
    feature.
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0

    def directed(source: Sequence[str], target: Sequence[str]) -> float:
        total = 0.0
        for token in source:
            total += max(inner(token, other) for other in target)
        return total / len(source)

    return (directed(tokens_a, tokens_b) + directed(tokens_b, tokens_a)) / 2.0


def prefix_similarity(a: str, b: str) -> float:
    """Length of the common prefix over the shorter string's length."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b:
            break
        prefix += 1
    return prefix / min(len(a), len(b))
