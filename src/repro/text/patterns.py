"""Value-pattern profiling.

HoloDetect-style featurization, the error injectors and the simulated FM's
semantic-type inference all need a cheap structural summary of a cell value
("does this look like a phone number / zip code / date / product code?").
"""

from __future__ import annotations

import re

_NUMERIC_RE = re.compile(r"^-?\d+(\.\d+)?$")
_ZIP_RE = re.compile(r"^\d{5}(-\d{4})?$")
_PHONE_RE = re.compile(
    r"^\(?\d{3}\)?[\s./-]?\d{3}[\s.-]?\d{4}$"
)
_DATE_RES = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),
    re.compile(r"^\d{1,2}-\d{1,2}-\d{2,4}$"),
    re.compile(
        r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2},?\s+\d{4}$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{4}$",
        re.IGNORECASE,
    ),
)
_PRODUCT_CODE_RE = re.compile(r"^(?=.*[a-zA-Z])(?=.*\d)[a-zA-Z0-9][a-zA-Z0-9./-]{2,}$")

NULL_TOKENS = frozenset({"", "null", "none", "nan", "n/a", "na", "-", "?", "missing"})


def is_null_token(value: str | None) -> bool:
    """True for values that denote a missing cell."""
    if value is None:
        return True
    return str(value).strip().casefold() in NULL_TOKENS


def is_numeric(value: str) -> bool:
    """True for plain integers/decimals (optionally negative)."""
    return bool(_NUMERIC_RE.match(value.strip()))


def is_zip_like(value: str) -> bool:
    """True for 5-digit (or ZIP+4) codes."""
    return bool(_ZIP_RE.match(value.strip()))


def is_phone_like(value: str) -> bool:
    """True for common US phone-number shapes (415-775-7036, 310/456-5733…)."""
    return bool(_PHONE_RE.match(value.strip()))


def is_date_like(value: str) -> bool:
    """True if the value matches one of the supported date layouts."""
    text = value.strip()
    return any(pattern.match(text) for pattern in _DATE_RES)


def is_product_code(value: str) -> bool:
    """Heuristic for model numbers / SKUs: mixed letters+digits, no spaces.

    The paper's error analysis blames exactly these "product-specific
    identifiers" for the FM's weakness on Amazon-Google; the simulated FM's
    semantic-depth mechanism keys off this predicate.
    """
    token = value.strip()
    if " " in token:
        return False
    return bool(_PRODUCT_CODE_RE.match(token))


def is_identifier_token(token: str) -> bool:
    """Model numbers, version strings, bare numbers: identifier-like tokens.

    These are compared exactly by careful systems (and misread by shallow
    ones); both the simulated FM and the Ditto baseline key off them.
    """
    return is_numeric(token) or is_product_code(token)


def value_pattern(value: str) -> str:
    """Structural mask of a value: letters→A, digits→9, other kept.

    Runs are collapsed, so ``"415-775-7036"`` → ``"9-9-9"`` and
    ``"Suite 4B"`` → ``"A 9A"``.  This is HoloDetect's format feature.
    """
    out: list[str] = []
    previous = ""
    for ch in value:
        if ch.isalpha():
            symbol = "A"
        elif ch.isdigit():
            symbol = "9"
        elif ch.isspace():
            symbol = " "
        else:
            symbol = ch
        if symbol != previous or symbol not in ("A", "9"):
            out.append(symbol)
        previous = symbol
    return "".join(out)


def infer_semantic_type(value: str) -> str:
    """Best-effort semantic type of a single value.

    One of ``null``, ``zip``, ``phone``, ``date``, ``number``, ``code`` or
    ``text``.  Order matters: more specific shapes win over generic ones.
    """
    if is_null_token(value):
        return "null"
    text = value.strip()
    if is_zip_like(text):
        return "zip"
    if is_phone_like(text):
        return "phone"
    if is_date_like(text):
        return "date"
    if is_numeric(text):
        return "number"
    if is_product_code(text):
        return "code"
    return "text"
