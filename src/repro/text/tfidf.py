"""A small TF-IDF vectorizer.

Backs the Ditto baseline's feature space and the simulated FM's corpus
statistics.  Only what is needed here: fit on a token corpus, transform
documents to sparse dictionaries, and compute cosine similarity between
them without materializing dense vectors.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence


class TfidfVectorizer:
    """Fit IDF weights on a corpus and map documents to tf-idf dicts.

    Documents are pre-tokenized lists of strings; tokenization policy is the
    caller's concern so that word- and char-gram spaces can share this class.
    """

    def __init__(self, min_df: int = 1, sublinear_tf: bool = True):
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        self.min_df = min_df
        self.sublinear_tf = sublinear_tf
        self.idf_: dict[str, float] = {}
        #: Tokens seen in fit() but dropped by ``min_df``.  Kept so that
        #: transform_one can tell "filtered as too rare" apart from
        #: "never seen": pruned tokens weigh 0, truly unseen ones get
        #: the max-rarity IDF.
        self.pruned_: set[str] = set()
        self.n_docs_ = 0

    def fit(self, documents: Iterable[Sequence[str]]) -> "TfidfVectorizer":
        doc_freq: Counter[str] = Counter()
        n_docs = 0
        for tokens in documents:
            n_docs += 1
            doc_freq.update(set(tokens))
        self.n_docs_ = n_docs
        self.idf_ = {
            token: math.log((1 + n_docs) / (1 + freq)) + 1.0
            for token, freq in doc_freq.items()
            if freq >= self.min_df
        }
        self.pruned_ = {
            token for token, freq in doc_freq.items() if freq < self.min_df
        }
        return self

    @property
    def is_fitted(self) -> bool:
        return self.n_docs_ > 0

    def transform_one(self, tokens: Sequence[str]) -> dict[str, float]:
        """Map one document to a normalized tf-idf dictionary."""
        if not self.is_fitted:
            raise RuntimeError("TfidfVectorizer used before fit()")
        counts = Counter(tokens)
        vector: dict[str, float] = {}
        for token, count in counts.items():
            idf = self.idf_.get(token)
            if idf is None:
                if token in self.pruned_:
                    # min_df filtered this token as too rare to trust;
                    # treating it as unseen would hand it the *max*
                    # rarity IDF — the exact opposite of pruning.
                    continue
                # Unseen token: give it the max-rarity IDF so out-of-corpus
                # tokens still discriminate instead of vanishing.
                idf = math.log((1 + self.n_docs_) / 1.0) + 1.0
            tf = 1.0 + math.log(count) if self.sublinear_tf else float(count)
            vector[token] = tf * idf
        norm = math.sqrt(sum(value * value for value in vector.values()))
        if norm > 0:
            vector = {token: value / norm for token, value in vector.items()}
        return vector

    def transform(self, documents: Iterable[Sequence[str]]) -> list[dict[str, float]]:
        return [self.transform_one(tokens) for tokens in documents]

    @staticmethod
    def cosine(vec_a: dict[str, float], vec_b: dict[str, float]) -> float:
        """Cosine similarity between two (already normalized) vectors."""
        if not vec_a and not vec_b:
            return 1.0
        if len(vec_a) > len(vec_b):
            vec_a, vec_b = vec_b, vec_a
        return sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())

    def similarity(self, tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
        """Convenience: cosine of the transforms of two token lists."""
        return self.cosine(self.transform_one(tokens_a), self.transform_one(tokens_b))
