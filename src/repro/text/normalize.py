"""Value normalization.

Normalization is the first thing both the simulated FM and the classical
baselines do to a cell value.  Keeping one shared implementation means the
systems disagree because of their *algorithms*, not because of accidental
preprocessing differences.
"""

from __future__ import annotations

import re
import string

# Common abbreviations in addresses, company names and product listings.
# Deliberately small: the broad, frequency-weighted synonym knowledge lives
# in ``repro.knowledge``; this table is only the uncontroversial core that a
# classical system would also hard-code.
ABBREVIATIONS: dict[str, str] = {
    "st": "street",
    "st.": "street",
    "ave": "avenue",
    "ave.": "avenue",
    "blvd": "boulevard",
    "blvd.": "boulevard",
    "rd": "road",
    "rd.": "road",
    "hwy": "highway",
    "hwy.": "highway",
    "dr": "drive",
    "dr.": "drive",
    "ln": "lane",
    "ln.": "lane",
    "n": "north",
    "s": "south",
    "e": "east",
    "w": "west",
    "apt": "apartment",
    "ste": "suite",
    "corp": "corporation",
    "corp.": "corporation",
    "inc": "incorporated",
    "inc.": "incorporated",
    "co": "company",
    "co.": "company",
    "ltd": "limited",
    "ltd.": "limited",
    "mfg": "manufacturing",
    "intl": "international",
    "dept": "department",
    "&": "and",
}

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCT_TABLE = str.maketrans({ch: " " for ch in string.punctuation})


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def casefold(text: str) -> str:
    """Aggressive lowercase suitable for comparison keys."""
    return text.casefold()


def strip_punctuation(text: str) -> str:
    """Replace every punctuation character with a space."""
    return normalize_whitespace(text.translate(_PUNCT_TABLE))


def expand_abbreviations(text: str, table: dict[str, str] | None = None) -> str:
    """Expand whitespace-delimited abbreviations using ``table``.

    >>> expand_abbreviations("123 main st")
    '123 main street'
    """
    mapping = ABBREVIATIONS if table is None else table
    words = text.split()
    expanded = [mapping.get(word.lower(), word) for word in words]
    return " ".join(expanded)


def normalize_value(value: str | None) -> str:
    """Canonical comparison form of a cell value.

    Lowercases, expands common abbreviations, strips punctuation and
    collapses whitespace.  ``None`` and null-ish sentinels become the empty
    string, matching the paper's serialization rule that NULL attributes are
    serialized as the empty string.
    """
    if value is None:
        return ""
    text = casefold(str(value))
    if text in {"null", "none", "nan", "n/a", "na", "-", "?", ""}:
        return ""
    # Expand twice, around punctuation stripping: the first pass catches
    # dotted forms ("st.", "&"), the second catches abbreviations that only
    # become bare words once punctuation is gone (":e" → "e" → "east").
    # Expansion targets are never themselves abbreviations, so the result
    # is a fixed point (normalize_value is idempotent).
    text = expand_abbreviations(text)
    text = strip_punctuation(text)
    return expand_abbreviations(text)
