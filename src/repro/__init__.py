"""Reproduction of "Can Foundation Models Wrangle Your Data?" (VLDB 2022).

Public surface:

* :class:`repro.Wrangler` — one prompted model, five wrangling verbs.
* :class:`repro.SimulatedFoundationModel` — the GPT-3-style completion
  engine (text in, text out).
* :class:`repro.CompletionClient` — the cached, metered API layer.
* :func:`repro.load_dataset` — the 14 benchmark datasets by name.

Everything else lives in the subpackages (see README architecture map).
"""

from repro.api import CompletionClient
from repro.core import Wrangler
from repro.datasets import available_datasets, load_dataset
from repro.fm import SimulatedFoundationModel

__version__ = "1.0.0"

__all__ = [
    "CompletionClient",
    "SimulatedFoundationModel",
    "Wrangler",
    "__version__",
    "available_datasets",
    "load_dataset",
]
