"""The completion client: cache + usage + simulated rate limiting."""

from __future__ import annotations

import threading

from repro.api.cache import PromptCache
from repro.api.usage import UsageTracker
from repro.fm.engine import SimulatedFoundationModel


class RateLimitError(RuntimeError):
    """Raised by the simulated endpoint when the request budget is hit."""


class CompletionClient:
    """Drop-in ``complete()`` provider with caching and accounting.

    Wraps any backend exposing ``complete(prompt, ...) -> str`` (by default
    a :class:`SimulatedFoundationModel`).  Mirrors the ergonomics of the
    released fm_data_tasks wrapper around the OpenAI API:

    * identical prompts are served from the cache without touching the
      backend (and without re-counting tokens),
    * every request is tallied in :class:`UsageTracker`,
    * an optional ``requests_per_run`` budget raises
      :class:`RateLimitError`, with ``max_retries`` transparent retries —
      the simulated endpoint "recovers" deterministically after a retry.

    Every backend touch — plain, verbose, and each retry attempt — goes
    through one accounting gate, so ``stats["backend_calls"]`` is exact
    and ``requests_per_run`` can never be exceeded.  The accounting is
    lock-protected, which makes the client safe to share across the
    worker threads of a :class:`~repro.api.batch.BatchExecutor`.
    """

    def __init__(
        self,
        model="gpt3-175b",
        cache: PromptCache | None = None,
        usage: UsageTracker | None = None,
        requests_per_run: int | None = None,
        failure_every: int | None = None,
        max_retries: int = 2,
    ):
        if isinstance(model, str):
            model = SimulatedFoundationModel(model)
        self.backend = model
        # `cache or PromptCache()` would silently replace a shared *empty*
        # cache (PromptCache defines __len__, so an empty one is falsy).
        self.cache = cache if cache is not None else PromptCache()
        self.usage = usage if usage is not None else UsageTracker()
        self.requests_per_run = requests_per_run
        self.failure_every = failure_every
        self.max_retries = max_retries
        self._n_backend_calls = 0
        self._n_transient_failures = 0
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return getattr(self.backend, "name", type(self.backend).__name__)

    def _charge_backend_call(self) -> int:
        """Atomically consume one unit of the request budget.

        Called once per *attempt* (retries included), so a retry that
        would exceed ``requests_per_run`` raises instead of silently
        blowing past the budget.
        """
        with self._lock:
            if (
                self.requests_per_run is not None
                and self._n_backend_calls >= self.requests_per_run
            ):
                raise RateLimitError(
                    f"request budget of {self.requests_per_run} exhausted"
                )
            self._n_backend_calls += 1
            return self._n_backend_calls

    def _backend_call(self, caller):
        """Run one backend call with budget checks and simulated failures."""
        attempts = 0
        while True:
            call_number = self._charge_backend_call()
            attempts += 1
            inject_failure = (
                self.failure_every is not None
                and call_number % self.failure_every == 0
                and attempts <= self.max_retries
            )
            if inject_failure:
                with self._lock:
                    self._n_transient_failures += 1
                continue  # "retry after backoff"
            return caller()

    def _backend_complete(self, prompt: str, temperature: float) -> str:
        return self._backend_call(
            lambda: self.backend.complete(prompt, temperature=temperature)
        )

    def complete(self, prompt: str, temperature: float = 0.0, **kwargs) -> str:
        """Cached completion of ``prompt``."""
        del kwargs  # accepted for API-compatibility with richer backends
        cached = self.cache.get(self.name, prompt, temperature)
        if cached is not None:
            self.usage.record(self.name, prompt, cached, cached=True)
            return cached
        completion = self._backend_complete(prompt, temperature)
        self.cache.put(self.name, prompt, completion, temperature)
        self.usage.record(self.name, prompt, completion, cached=False)
        return completion

    def complete_many(
        self,
        prompts: list[str],
        temperature: float = 0.0,
        workers: int | None = None,
    ) -> list[str]:
        """Concurrent, order-preserving completion of many prompts.

        Fans ``prompts`` across a :class:`~repro.api.batch.BatchExecutor`
        thread pool (``workers=None`` uses the process-wide default).  At
        temperature 0 the result list is identical to a serial loop of
        :meth:`complete` calls; cache, usage, and budget accounting all go
        through the same lock-protected paths.  Outer retries are
        disabled — the client already retries transient failures
        internally, and budget exhaustion is permanent for a run.
        """
        from repro.api.batch import BatchExecutor

        executor = BatchExecutor(
            workers=workers, max_retries=0, usage=self.usage
        )
        return executor.map(
            lambda prompt: self.complete(prompt, temperature=temperature),
            prompts,
        )

    def complete_verbose(self, prompt: str, temperature: float = 0.0):
        """Confidence-carrying completion (uncached pass-through).

        Confidence is not stored in the cache (it is a model introspection,
        not part of the API response contract), so verbose calls always
        reach the backend — and therefore always consume request budget,
        face failure injection, and count in ``stats["backend_calls"]``,
        exactly like plain completions.
        """
        if not hasattr(self.backend, "complete_verbose"):
            raise AttributeError("backend does not report confidence")
        completion = self._backend_call(
            lambda: self.backend.complete_verbose(
                prompt, temperature=temperature
            )
        )
        self.cache.put(self.name, prompt, completion.text, temperature)
        self.usage.record(self.name, prompt, completion.text, cached=False)
        return completion

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            backend_calls = self._n_backend_calls
            transient_failures = self._n_transient_failures
        return {
            "backend_calls": backend_calls,
            "transient_failures": transient_failures,
            "cache_entries": len(self.cache),
        }
