"""The completion client: cache + usage + simulated rate limiting."""

from __future__ import annotations

import queue
import threading

from repro.api.cache import PromptCache
from repro.api.retry import (
    BudgetExhaustedError,
    FatalError,
    RateLimitError,
    RetryPolicy,
)
from repro.api.usage import UsageTracker

__all__ = [
    "BudgetExhaustedError",
    "CompletionClient",
    "FatalError",
    "RateLimitError",
]


class CompletionClient:
    """Drop-in ``complete()`` provider with caching and accounting.

    Wraps any :class:`~repro.api.backends.CompletionBackend` — string
    model names resolve through the backend registry
    (:func:`repro.api.backends.get_backend`), so ``"gpt3-175b"`` builds
    a fresh simulated tier exactly as before while registered HTTP
    adapters or custom backends plug in with no client changes.  Mirrors
    the ergonomics of the released fm_data_tasks wrapper around the
    OpenAI API:

    * identical prompts are served from the cache without touching the
      backend (and without re-counting tokens),
    * every request is tallied in :class:`UsageTracker`,
    * an optional ``requests_per_run`` budget raises
      :class:`~repro.api.retry.BudgetExhaustedError` once spent — a
      *fatal* error the batch layer fails fast on — while injected
      transient failures get ``max_retries`` transparent retries (the
      simulated endpoint "recovers" deterministically after a retry).

    Every backend touch — plain, verbose, and each retry attempt — goes
    through one accounting gate, so ``stats["backend_calls"]`` is exact
    and ``requests_per_run`` can never be exceeded.  The accounting is
    lock-protected, which makes the client safe to share across the
    worker threads of a :class:`~repro.api.batch.BatchExecutor`; cache
    misses are *single-flight* per (model, prompt, temperature) key, so
    N workers racing on the same prompt produce exactly one backend call
    (the rest wait and read the cache) instead of N double-charged ones.
    """

    def __init__(
        self,
        model="gpt3-175b",
        cache: PromptCache | None = None,
        usage: UsageTracker | None = None,
        requests_per_run: int | None = None,
        failure_every: int | None = None,
        max_retries: int | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        hedge_policy=None,
        deadline=None,
    ):
        if isinstance(model, str):
            from repro.api.backends import get_backend

            model = get_backend(model)
        self.backend = model
        # `cache or PromptCache()` would silently replace a shared *empty*
        # cache (PromptCache defines __len__, so an empty one is falsy).
        self.cache = cache if cache is not None else PromptCache()
        self.usage = usage if usage is not None else UsageTracker()
        self.requests_per_run = requests_per_run
        self.failure_every = failure_every
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_retries=2 if max_retries is None else max_retries
            )
        elif max_retries is not None:
            raise ValueError(
                "pass either retry_policy or max_retries, not both"
            )
        self.retry_policy = retry_policy
        self.max_retries = retry_policy.max_retries
        # Optional chaos harness (see repro.api.faults.FaultPlan): every
        # backend touch consults it for injected transient errors and
        # response corruption.  Faults fire *inside* the accounting gate,
        # so injected rate limits still consume request budget — exactly
        # like a real 429 — and corrupted text is what gets cached, like
        # a mangled wire response would be.
        self.fault_plan = fault_plan
        # Optional service-level knobs (see repro.api.resilience): a
        # HedgePolicy races a backup backend attempt against stragglers
        # (first success wins, budgets/usage charged once), a Deadline
        # makes every completion check the run's wall budget before
        # touching the backend.
        self.hedge_policy = hedge_policy
        self.deadline = deadline
        self._n_backend_calls = 0
        self._n_hedge_calls = 0
        self._n_transient_failures = 0
        # One-shot prompt-prefix charge (see begin_prompt_prefix): token
        # count of the run's shared demonstration prefix, folded into the
        # first uncached request's accounting instead of every request's.
        self._pending_prefix_tokens: int | None = None
        self._prefix_charge_claimed = False
        self._lock = threading.Lock()
        # Single-flight bookkeeping: cache key -> Event set once the
        # leader has either populated the cache or failed.
        self._inflight: dict[tuple[str, str, float], threading.Event] = {}
        self._inflight_lock = threading.Lock()
        # Verbose (confidence-carrying) calls are serialized: the
        # simulator reports confidence through per-instance state, so
        # concurrent verbose calls from executor workers would race and
        # cross-wire confidences — the cascade's determinism guarantee
        # (byte-identical at any worker count) depends on this lock.
        self._verbose_lock = threading.Lock()

    @property
    def name(self) -> str:
        return getattr(self.backend, "name", type(self.backend).__name__)

    def _charge_backend_call(self) -> int:
        """Atomically consume one unit of the request budget.

        Called once per *attempt* (retries included), so a retry that
        would exceed ``requests_per_run`` raises instead of silently
        blowing past the budget.  Exhaustion is fatal: the per-run
        budget cannot recover, so callers must not back off on it.
        """
        with self._lock:
            if (
                self.requests_per_run is not None
                and self._n_backend_calls >= self.requests_per_run
            ):
                raise BudgetExhaustedError(
                    f"request budget of {self.requests_per_run} exhausted"
                )
            self._n_backend_calls += 1
            return self._n_backend_calls

    def _backend_call(self, caller, charge: bool = True):
        """Run one backend call with budget checks and simulated failures.

        ``charge=False`` is the hedge path: the attempt is tallied as a
        hedge instead of consuming ``requests_per_run`` budget or
        counting in ``backend_calls`` — the dedup guarantee that makes
        hedging free of double-charging.  Legacy ``failure_every``
        injection only fires on charged calls (its counter *is* the
        charged-call number).
        """
        attempts = 0
        while True:
            if charge:
                call_number = self._charge_backend_call()
            else:
                with self._lock:
                    self._n_hedge_calls += 1
                call_number = None
            attempts += 1
            inject_failure = (
                charge
                and self.failure_every is not None
                and call_number % self.failure_every == 0
                and attempts <= self.max_retries
            )
            if inject_failure:
                with self._lock:
                    self._n_transient_failures += 1
                continue  # "retry after backoff"
            return caller()

    def _backend_complete(
        self, prompt: str, temperature: float, charge: bool = True
    ) -> str:
        def call() -> str:
            if self.fault_plan is not None:
                self.fault_plan.on_request(prompt)
            text = self.backend.complete(prompt, temperature=temperature)
            if self.fault_plan is not None:
                text = self.fault_plan.on_response(prompt, text)
            return text

        return self._backend_call(call, charge=charge)

    def _hedged_backend_complete(self, prompt: str, temperature: float) -> str:
        """Race a backup attempt against a straggling primary.

        The primary attempt runs in a helper thread; if it has not
        finished within the policy's deterministic per-prompt delay, one
        hedge attempt fires (uncharged — see :meth:`_backend_call`) and
        the first *success* wins.  At temperature 0 both attempts
        produce byte-identical text (completions and injected
        corruption are pure functions of the prompt), so the result
        never depends on which attempt finishes first.  If every
        in-flight attempt fails, the primary's error propagates —
        hedging accelerates stragglers, it does not mask faults.

        Runs under the single-flight leadership of :meth:`complete`, so
        at most one primary/hedge pair exists per prompt at a time.
        """
        policy = self.hedge_policy
        outcomes: queue.Queue = queue.Queue()

        def attempt(kind: str, charge: bool) -> None:
            try:
                outcomes.put(
                    (kind, None,
                     self._backend_complete(prompt, temperature, charge=charge))
                )
            except BaseException as exc:  # reported via the queue
                outcomes.put((kind, exc, None))

        threading.Thread(
            target=attempt, args=("primary", True), daemon=True
        ).start()
        in_flight = 1
        try:
            kind, error, text = outcomes.get(timeout=policy.delay_for(prompt))
        except queue.Empty:
            policy.record_fired()
            threading.Thread(
                target=attempt, args=("hedge", False), daemon=True
            ).start()
            in_flight += 1
            kind, error, text = outcomes.get()
        primary_error = error if kind == "primary" else None
        while error is not None and in_flight > 1:
            # First finisher failed; the other attempt may still win.
            in_flight -= 1
            kind, error, text = outcomes.get()
            if kind == "primary" and error is not None:
                primary_error = error
        if error is None:
            if kind == "hedge":
                policy.record_win()
            return text
        raise primary_error if primary_error is not None else error

    def begin_prompt_prefix(self, n_tokens: int) -> None:
        """Arm a one-shot prompt-prefix charge of ``n_tokens``.

        The task engine calls this once per run with the token count of
        the shared demonstration prefix.  The first *uncached* completion
        that carries a ``prompt_tokens`` suffix hint claims the charge
        (prefix + suffix tokens); every later hinted request charges its
        suffix alone — "prefix tokens charged once per run".  A fully
        cache-warm run never reaches the backend, never claims the
        charge, and therefore accrues zero tokens, exactly like the
        legacy path.
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        with self._lock:
            self._pending_prefix_tokens = n_tokens
            self._prefix_charge_claimed = False

    def end_prompt_prefix(self) -> bool:
        """Disarm the pending prefix charge after a run's completion phase.

        Returns whether the charge was claimed by a request.  Always call
        this when the run ends so a stale charge cannot leak into the
        next run sharing this client.
        """
        with self._lock:
            claimed = self._prefix_charge_claimed
            self._pending_prefix_tokens = None
            self._prefix_charge_claimed = False
        return claimed

    def _resolve_prompt_tokens(self, prompt_tokens: int | None) -> int | None:
        """Fold the armed one-shot prefix charge into a suffix-token hint."""
        if prompt_tokens is None:
            return None
        with self._lock:
            pending = self._pending_prefix_tokens
            if pending is not None:
                self._pending_prefix_tokens = None
                self._prefix_charge_claimed = True
                return prompt_tokens + pending
        return prompt_tokens

    def complete(
        self,
        prompt: str,
        temperature: float = 0.0,
        prompt_tokens: int | None = None,
        **kwargs,
    ) -> str:
        """Cached completion of ``prompt`` (single-flight on misses).

        ``prompt_tokens`` is an optional pre-counted size hint for the
        prompt (the prefix-cache path passes the query suffix's count);
        see :meth:`begin_prompt_prefix` for how the shared prefix is
        charged.
        """
        del kwargs  # accepted for API-compatibility with richer backends
        if self.deadline is not None:
            # Fatal on expiry: the batch layer above fails fast rather
            # than letting a blown SLO grind through remaining prompts.
            self.deadline.check()
        while True:
            cached = self.cache.get(self.name, prompt, temperature)
            if cached is not None:
                self.usage.record(self.name, prompt, cached, cached=True)
                return cached
            key = (self.name, prompt, temperature)
            with self._inflight_lock:
                done = self._inflight.get(key)
                if done is None:
                    done = self._inflight[key] = threading.Event()
                    leader = True
                else:
                    leader = False
            if not leader:
                # Another worker is already computing this prompt; wait
                # for it, then re-check the cache.  (If the leader
                # failed, the cache is still empty and one waiter takes
                # over as the new leader.)
                done.wait()
                continue
            try:
                # Double-check under leadership: a previous leader may
                # have filled the cache between our miss and our claim.
                cached = self.cache.get(self.name, prompt, temperature)
                if cached is not None:
                    self.usage.record(self.name, prompt, cached, cached=True)
                    return cached
                if self.hedge_policy is not None:
                    completion = self._hedged_backend_complete(
                        prompt, temperature
                    )
                else:
                    completion = self._backend_complete(prompt, temperature)
                # Populate the cache *before* releasing the waiters so
                # their re-check hits.
                self.cache.put(self.name, prompt, completion, temperature)
                self.usage.record(
                    self.name, prompt, completion, cached=False,
                    prompt_tokens=self._resolve_prompt_tokens(prompt_tokens),
                )
                return completion
            finally:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                done.set()

    def complete_many(
        self,
        prompts: list[str],
        temperature: float = 0.0,
        workers: int | None = None,
    ) -> list[str]:
        """Concurrent, order-preserving completion of many prompts.

        Fans ``prompts`` across a :class:`~repro.api.batch.BatchExecutor`
        thread pool (``workers=None`` uses the process-wide default).  At
        temperature 0 the result list is identical to a serial loop of
        :meth:`complete` calls; cache, usage, and budget accounting all go
        through the same lock-protected paths.  Outer retries are
        disabled — the client already retries transient failures
        internally, and budget exhaustion is fatal (the executor cancels
        the rest of the batch instead of backing off) — unless a fault
        plan is active: injected transient faults propagate out of
        ``complete`` by design, so the executor then applies this
        client's retry policy (deterministic backoff, bounded attempts).
        """
        from repro.api.batch import make_executor
        from repro.api.retry import NO_RETRY

        policy = NO_RETRY if self.fault_plan is None else self.retry_policy
        executor = make_executor(
            workers=workers, policy=policy, usage=self.usage
        )
        return executor.map(
            lambda prompt: self.complete(prompt, temperature=temperature),
            prompts,
        )

    def complete_verbose(
        self,
        prompt: str,
        temperature: float = 0.0,
        prompt_tokens: int | None = None,
    ):
        """Confidence-carrying completion (uncached pass-through).

        Confidence is not stored in the cache (it is a model introspection,
        not part of the API response contract), so verbose calls always
        reach the backend — and therefore always consume request budget,
        face failure injection, and count in ``stats["backend_calls"]``,
        exactly like plain completions.  Calls are serialized per client
        (see ``_verbose_lock``) so confidences never cross-wire between
        worker threads.  ``prompt_tokens`` is the same pre-counted
        suffix-size hint :meth:`complete` takes — the cascade's serving
        path passes it so each tier charges the shared demonstration
        prefix once per run, not once per example.
        """
        if not hasattr(self.backend, "complete_verbose"):
            raise AttributeError("backend does not report confidence")
        if self.deadline is not None:
            self.deadline.check()
        with self._verbose_lock:
            completion = self._backend_call(
                lambda: self.backend.complete_verbose(
                    prompt, temperature=temperature
                )
            )
        self.cache.put(self.name, prompt, completion.text, temperature)
        self.usage.record(
            self.name, prompt, completion.text, cached=False,
            prompt_tokens=self._resolve_prompt_tokens(prompt_tokens),
        )
        return completion

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            backend_calls = self._n_backend_calls
            hedge_calls = self._n_hedge_calls
            transient_failures = self._n_transient_failures
        return {
            "backend_calls": backend_calls,
            "hedge_calls": hedge_calls,
            "transient_failures": transient_failures,
            "cache_entries": len(self.cache),
        }
