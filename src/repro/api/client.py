"""The completion client: cache + usage + simulated rate limiting."""

from __future__ import annotations

import threading

from repro.api.cache import PromptCache
from repro.api.retry import (
    BudgetExhaustedError,
    FatalError,
    RateLimitError,
    RetryPolicy,
)
from repro.api.usage import UsageTracker
from repro.fm.engine import SimulatedFoundationModel

__all__ = [
    "BudgetExhaustedError",
    "CompletionClient",
    "FatalError",
    "RateLimitError",
]


class CompletionClient:
    """Drop-in ``complete()`` provider with caching and accounting.

    Wraps any backend exposing ``complete(prompt, ...) -> str`` (by default
    a :class:`SimulatedFoundationModel`).  Mirrors the ergonomics of the
    released fm_data_tasks wrapper around the OpenAI API:

    * identical prompts are served from the cache without touching the
      backend (and without re-counting tokens),
    * every request is tallied in :class:`UsageTracker`,
    * an optional ``requests_per_run`` budget raises
      :class:`~repro.api.retry.BudgetExhaustedError` once spent — a
      *fatal* error the batch layer fails fast on — while injected
      transient failures get ``max_retries`` transparent retries (the
      simulated endpoint "recovers" deterministically after a retry).

    Every backend touch — plain, verbose, and each retry attempt — goes
    through one accounting gate, so ``stats["backend_calls"]`` is exact
    and ``requests_per_run`` can never be exceeded.  The accounting is
    lock-protected, which makes the client safe to share across the
    worker threads of a :class:`~repro.api.batch.BatchExecutor`; cache
    misses are *single-flight* per (model, prompt, temperature) key, so
    N workers racing on the same prompt produce exactly one backend call
    (the rest wait and read the cache) instead of N double-charged ones.
    """

    def __init__(
        self,
        model="gpt3-175b",
        cache: PromptCache | None = None,
        usage: UsageTracker | None = None,
        requests_per_run: int | None = None,
        failure_every: int | None = None,
        max_retries: int | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
    ):
        if isinstance(model, str):
            model = SimulatedFoundationModel(model)
        self.backend = model
        # `cache or PromptCache()` would silently replace a shared *empty*
        # cache (PromptCache defines __len__, so an empty one is falsy).
        self.cache = cache if cache is not None else PromptCache()
        self.usage = usage if usage is not None else UsageTracker()
        self.requests_per_run = requests_per_run
        self.failure_every = failure_every
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_retries=2 if max_retries is None else max_retries
            )
        elif max_retries is not None:
            raise ValueError(
                "pass either retry_policy or max_retries, not both"
            )
        self.retry_policy = retry_policy
        self.max_retries = retry_policy.max_retries
        # Optional chaos harness (see repro.api.faults.FaultPlan): every
        # backend touch consults it for injected transient errors and
        # response corruption.  Faults fire *inside* the accounting gate,
        # so injected rate limits still consume request budget — exactly
        # like a real 429 — and corrupted text is what gets cached, like
        # a mangled wire response would be.
        self.fault_plan = fault_plan
        self._n_backend_calls = 0
        self._n_transient_failures = 0
        self._lock = threading.Lock()
        # Single-flight bookkeeping: cache key -> Event set once the
        # leader has either populated the cache or failed.
        self._inflight: dict[tuple[str, str, float], threading.Event] = {}
        self._inflight_lock = threading.Lock()

    @property
    def name(self) -> str:
        return getattr(self.backend, "name", type(self.backend).__name__)

    def _charge_backend_call(self) -> int:
        """Atomically consume one unit of the request budget.

        Called once per *attempt* (retries included), so a retry that
        would exceed ``requests_per_run`` raises instead of silently
        blowing past the budget.  Exhaustion is fatal: the per-run
        budget cannot recover, so callers must not back off on it.
        """
        with self._lock:
            if (
                self.requests_per_run is not None
                and self._n_backend_calls >= self.requests_per_run
            ):
                raise BudgetExhaustedError(
                    f"request budget of {self.requests_per_run} exhausted"
                )
            self._n_backend_calls += 1
            return self._n_backend_calls

    def _backend_call(self, caller):
        """Run one backend call with budget checks and simulated failures."""
        attempts = 0
        while True:
            call_number = self._charge_backend_call()
            attempts += 1
            inject_failure = (
                self.failure_every is not None
                and call_number % self.failure_every == 0
                and attempts <= self.max_retries
            )
            if inject_failure:
                with self._lock:
                    self._n_transient_failures += 1
                continue  # "retry after backoff"
            return caller()

    def _backend_complete(self, prompt: str, temperature: float) -> str:
        def call() -> str:
            if self.fault_plan is not None:
                self.fault_plan.on_request(prompt)
            text = self.backend.complete(prompt, temperature=temperature)
            if self.fault_plan is not None:
                text = self.fault_plan.on_response(prompt, text)
            return text

        return self._backend_call(call)

    def complete(self, prompt: str, temperature: float = 0.0, **kwargs) -> str:
        """Cached completion of ``prompt`` (single-flight on misses)."""
        del kwargs  # accepted for API-compatibility with richer backends
        while True:
            cached = self.cache.get(self.name, prompt, temperature)
            if cached is not None:
                self.usage.record(self.name, prompt, cached, cached=True)
                return cached
            key = (self.name, prompt, temperature)
            with self._inflight_lock:
                done = self._inflight.get(key)
                if done is None:
                    done = self._inflight[key] = threading.Event()
                    leader = True
                else:
                    leader = False
            if not leader:
                # Another worker is already computing this prompt; wait
                # for it, then re-check the cache.  (If the leader
                # failed, the cache is still empty and one waiter takes
                # over as the new leader.)
                done.wait()
                continue
            try:
                # Double-check under leadership: a previous leader may
                # have filled the cache between our miss and our claim.
                cached = self.cache.get(self.name, prompt, temperature)
                if cached is not None:
                    self.usage.record(self.name, prompt, cached, cached=True)
                    return cached
                completion = self._backend_complete(prompt, temperature)
                # Populate the cache *before* releasing the waiters so
                # their re-check hits.
                self.cache.put(self.name, prompt, completion, temperature)
                self.usage.record(self.name, prompt, completion, cached=False)
                return completion
            finally:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                done.set()

    def complete_many(
        self,
        prompts: list[str],
        temperature: float = 0.0,
        workers: int | None = None,
    ) -> list[str]:
        """Concurrent, order-preserving completion of many prompts.

        Fans ``prompts`` across a :class:`~repro.api.batch.BatchExecutor`
        thread pool (``workers=None`` uses the process-wide default).  At
        temperature 0 the result list is identical to a serial loop of
        :meth:`complete` calls; cache, usage, and budget accounting all go
        through the same lock-protected paths.  Outer retries are
        disabled — the client already retries transient failures
        internally, and budget exhaustion is fatal (the executor cancels
        the rest of the batch instead of backing off) — unless a fault
        plan is active: injected transient faults propagate out of
        ``complete`` by design, so the executor then applies this
        client's retry policy (deterministic backoff, bounded attempts).
        """
        from repro.api.batch import BatchExecutor
        from repro.api.retry import NO_RETRY

        policy = NO_RETRY if self.fault_plan is None else self.retry_policy
        executor = BatchExecutor(
            workers=workers, policy=policy, usage=self.usage
        )
        return executor.map(
            lambda prompt: self.complete(prompt, temperature=temperature),
            prompts,
        )

    def complete_verbose(self, prompt: str, temperature: float = 0.0):
        """Confidence-carrying completion (uncached pass-through).

        Confidence is not stored in the cache (it is a model introspection,
        not part of the API response contract), so verbose calls always
        reach the backend — and therefore always consume request budget,
        face failure injection, and count in ``stats["backend_calls"]``,
        exactly like plain completions.
        """
        if not hasattr(self.backend, "complete_verbose"):
            raise AttributeError("backend does not report confidence")
        completion = self._backend_call(
            lambda: self.backend.complete_verbose(
                prompt, temperature=temperature
            )
        )
        self.cache.put(self.name, prompt, completion.text, temperature)
        self.usage.record(self.name, prompt, completion.text, cached=False)
        return completion

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            backend_calls = self._n_backend_calls
            transient_failures = self._n_transient_failures
        return {
            "backend_calls": backend_calls,
            "transient_failures": transient_failures,
            "cache_entries": len(self.cache),
        }
