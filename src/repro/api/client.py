"""The completion client: cache + usage + simulated rate limiting."""

from __future__ import annotations

from repro.api.cache import PromptCache
from repro.api.usage import UsageTracker
from repro.fm.engine import SimulatedFoundationModel


class RateLimitError(RuntimeError):
    """Raised by the simulated endpoint when the request budget is hit."""


class CompletionClient:
    """Drop-in ``complete()`` provider with caching and accounting.

    Wraps any backend exposing ``complete(prompt, ...) -> str`` (by default
    a :class:`SimulatedFoundationModel`).  Mirrors the ergonomics of the
    released fm_data_tasks wrapper around the OpenAI API:

    * identical prompts are served from the cache without touching the
      backend (and without re-counting tokens),
    * every request is tallied in :class:`UsageTracker`,
    * an optional ``requests_per_run`` budget raises
      :class:`RateLimitError`, with ``max_retries`` transparent retries —
      the simulated endpoint "recovers" deterministically after a retry.
    """

    def __init__(
        self,
        model="gpt3-175b",
        cache: PromptCache | None = None,
        usage: UsageTracker | None = None,
        requests_per_run: int | None = None,
        failure_every: int | None = None,
        max_retries: int = 2,
    ):
        if isinstance(model, str):
            model = SimulatedFoundationModel(model)
        self.backend = model
        self.cache = cache or PromptCache()
        self.usage = usage or UsageTracker()
        self.requests_per_run = requests_per_run
        self.failure_every = failure_every
        self.max_retries = max_retries
        self._n_backend_calls = 0
        self._n_transient_failures = 0

    @property
    def name(self) -> str:
        return getattr(self.backend, "name", type(self.backend).__name__)

    def _backend_complete(self, prompt: str, temperature: float) -> str:
        """One backend call with simulated transient failures."""
        if (
            self.requests_per_run is not None
            and self._n_backend_calls >= self.requests_per_run
        ):
            raise RateLimitError(
                f"request budget of {self.requests_per_run} exhausted"
            )
        attempts = 0
        while True:
            self._n_backend_calls += 1
            attempts += 1
            inject_failure = (
                self.failure_every is not None
                and self._n_backend_calls % self.failure_every == 0
                and attempts <= self.max_retries
            )
            if inject_failure:
                self._n_transient_failures += 1
                continue  # "retry after backoff"
            return self.backend.complete(prompt, temperature=temperature)

    def complete(self, prompt: str, temperature: float = 0.0, **kwargs) -> str:
        """Cached completion of ``prompt``."""
        del kwargs  # accepted for API-compatibility with richer backends
        cached = self.cache.get(self.name, prompt, temperature)
        if cached is not None:
            self.usage.record(self.name, prompt, cached, cached=True)
            return cached
        completion = self._backend_complete(prompt, temperature)
        self.cache.put(self.name, prompt, completion, temperature)
        self.usage.record(self.name, prompt, completion, cached=False)
        return completion

    def complete_verbose(self, prompt: str, temperature: float = 0.0):
        """Confidence-carrying completion (uncached pass-through).

        Confidence is not stored in the cache (it is a model introspection,
        not part of the API response contract), so verbose calls always
        reach the backend.
        """
        if not hasattr(self.backend, "complete_verbose"):
            raise AttributeError("backend does not report confidence")
        completion = self.backend.complete_verbose(prompt, temperature=temperature)
        self.cache.put(self.name, prompt, completion.text, temperature)
        self.usage.record(self.name, prompt, completion.text, cached=False)
        return completion

    @property
    def stats(self) -> dict[str, int]:
        return {
            "backend_calls": self._n_backend_calls,
            "transient_failures": self._n_transient_failures,
            "cache_entries": len(self.cache),
        }
