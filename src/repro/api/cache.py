"""SQLite-backed prompt/response cache."""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time

# ``created_at`` is stamped from Python at insert time rather than via a
# DDL default: ``DEFAULT (unixepoch('subsec'))`` needs SQLite >= 3.42
# (2023), and interpreters bundling an older library would fail at
# table-creation time.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS completions (
    key TEXT PRIMARY KEY,
    model TEXT NOT NULL,
    prompt TEXT NOT NULL,
    completion TEXT NOT NULL,
    created_at REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS completions_model ON completions (model);
"""


def _cache_key(model: str, prompt: str, temperature: float) -> str:
    payload = f"{model}\x00{temperature:.6f}\x00{prompt}"
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def _is_memory_path(path: str) -> bool:
    """Whether ``path`` opens an in-memory database.

    WAL journaling is file-only — SQLite silently reports ``memory``
    mode for in-memory databases, and issuing the pragma against them is
    at best a no-op.  Covers every spelling sqlite3 accepts: the classic
    ``":memory:"``, the empty string (anonymous temp/in-memory DB), and
    ``file:`` URIs with ``:memory:`` authority-paths or ``mode=memory``
    query parameters.
    """
    if path == "" or path == ":memory:":
        return True
    if not path.startswith("file:"):
        return False
    rest = path[len("file:") :]
    body, _, query = rest.partition("?")
    if body.lstrip("/") == ":memory:":
        return True
    return any(
        param.strip() == "mode=memory" for param in query.split("&")
    )


class PromptCache:
    """Persistent (or in-memory) completion cache.

    ``path=":memory:"`` gives a per-process cache; a file path persists
    across runs, which is what makes re-running a benchmark sweep free.
    File-backed caches run in WAL journal mode so concurrent readers
    (a sweep fanned across shells, all pointed at one ``--cache`` file,
    or the gateway's worker threads) proceed while another writes.

    Threading model: an sqlite connection is not safe for concurrent
    use, so file-backed caches open **one connection per thread** —
    WAL then gives genuinely parallel reads instead of funneling every
    worker through one lock.  In-memory databases are per-connection,
    so ``":memory:"`` paths keep a single shared connection serialized
    by a lock (correctness over parallelism; tests use tiny caches).
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._is_uri = path.startswith("file:")
        self._shared = _is_memory_path(path)
        self._lock = threading.Lock()
        self._closed = False
        self._local = threading.local()
        # Connections are tracked so close() can tear down every
        # thread's handle, not just the calling thread's.
        self._all_conns: list[sqlite3.Connection] = []
        if self._shared:
            self._shared_conn = self._connect(first=True)
        else:
            self._shared_conn = None
            # Create schema eagerly from the constructing thread so a
            # bad path fails here, not on first worker access.
            self._thread_conn()

    @property
    def _conn(self) -> sqlite3.Connection:
        """The calling thread's connection (compatibility accessor)."""
        if self._shared:
            return self._shared_conn
        return self._thread_conn()

    def _connect(self, first: bool) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, check_same_thread=False, uri=self._is_uri
        )
        if not self._shared:
            conn.execute("PRAGMA journal_mode=WAL")
            # Writers back off instead of failing fast when another
            # thread's transaction briefly holds the write lock.
            conn.execute("PRAGMA busy_timeout=10000")
        if first or not self._shared:
            conn.executescript(_SCHEMA)
            conn.commit()
        return conn

    def _thread_conn(self) -> sqlite3.Connection:
        """This thread's connection, opened on first use."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            with self._lock:
                if self._closed:
                    raise sqlite3.ProgrammingError(
                        "Cannot operate on a closed database."
                    )
            conn = self._connect(first=False)
            self._local.conn = conn
            with self._lock:
                self._all_conns.append(conn)
        return conn

    def get(self, model: str, prompt: str, temperature: float = 0.0) -> str | None:
        key = _cache_key(model, prompt, temperature)
        if self._shared:
            with self._lock:
                row = self._shared_conn.execute(
                    "SELECT completion FROM completions WHERE key = ?", (key,)
                ).fetchone()
        else:
            row = self._thread_conn().execute(
                "SELECT completion FROM completions WHERE key = ?", (key,)
            ).fetchone()
        return row[0] if row else None

    def put(
        self, model: str, prompt: str, completion: str, temperature: float = 0.0
    ) -> None:
        key = _cache_key(model, prompt, temperature)
        statement = (
            "INSERT OR REPLACE INTO completions "
            "(key, model, prompt, completion, created_at) "
            "VALUES (?, ?, ?, ?, ?)"
        )
        values = (key, model, prompt, completion, time.time())
        if self._shared:
            with self._lock:
                self._shared_conn.execute(statement, values)
                self._shared_conn.commit()
        else:
            conn = self._thread_conn()
            conn.execute(statement, values)
            conn.commit()

    def __len__(self) -> int:
        if self._shared:
            with self._lock:
                (count,) = self._shared_conn.execute(
                    "SELECT COUNT(*) FROM completions"
                ).fetchone()
        else:
            (count,) = self._thread_conn().execute(
                "SELECT COUNT(*) FROM completions"
            ).fetchone()
        return count

    def clear(self) -> None:
        if self._shared:
            with self._lock:
                self._shared_conn.execute("DELETE FROM completions")
                self._shared_conn.commit()
        else:
            conn = self._thread_conn()
            conn.execute("DELETE FROM completions")
            conn.commit()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            conns = list(self._all_conns)
            self._all_conns.clear()
            if self._shared_conn is not None:
                conns.append(self._shared_conn)
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass


# Process-wide default cache.  The CLI's ``--cache PATH`` flag sets this
# once so every client constructed underneath (task engine, bench
# runners) shares one persistent file without threading a parameter
# through every experiment module — same pattern as the default worker
# count in :mod:`repro.api.batch`.
_DEFAULT_CACHE: PromptCache | None = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def set_default_cache(cache: PromptCache | None) -> None:
    """Install (or with ``None``, clear) the process-wide default cache."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        _DEFAULT_CACHE = cache


def get_default_cache() -> PromptCache | None:
    with _DEFAULT_CACHE_LOCK:
        return _DEFAULT_CACHE
