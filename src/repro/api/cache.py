"""SQLite-backed prompt/response cache."""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time

# ``created_at`` is stamped from Python at insert time rather than via a
# DDL default: ``DEFAULT (unixepoch('subsec'))`` needs SQLite >= 3.42
# (2023), and interpreters bundling an older library would fail at
# table-creation time.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS completions (
    key TEXT PRIMARY KEY,
    model TEXT NOT NULL,
    prompt TEXT NOT NULL,
    completion TEXT NOT NULL,
    created_at REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS completions_model ON completions (model);
"""


def _cache_key(model: str, prompt: str, temperature: float) -> str:
    payload = f"{model}\x00{temperature:.6f}\x00{prompt}"
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def _is_memory_path(path: str) -> bool:
    """Whether ``path`` opens an in-memory database.

    WAL journaling is file-only — SQLite silently reports ``memory``
    mode for in-memory databases, and issuing the pragma against them is
    at best a no-op.  Covers every spelling sqlite3 accepts: the classic
    ``":memory:"``, the empty string (anonymous temp/in-memory DB), and
    ``file:`` URIs with ``:memory:`` authority-paths or ``mode=memory``
    query parameters.
    """
    if path == "" or path == ":memory:":
        return True
    if not path.startswith("file:"):
        return False
    rest = path[len("file:") :]
    body, _, query = rest.partition("?")
    if body.lstrip("/") == ":memory:":
        return True
    return any(
        param.strip() == "mode=memory" for param in query.split("&")
    )


class PromptCache:
    """Persistent (or in-memory) completion cache.

    ``path=":memory:"`` gives a per-process cache; a file path persists
    across runs, which is what makes re-running a benchmark sweep free.
    File-backed caches run in WAL journal mode so concurrent processes
    (a sweep fanned across shells, all pointed at one ``--cache`` file)
    can read while another writes.  Thread-safe via a single lock —
    contention is irrelevant next to the latency the cache is hiding.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            path, check_same_thread=False, uri=path.startswith("file:")
        )
        with self._lock:
            if not _is_memory_path(path):
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def get(self, model: str, prompt: str, temperature: float = 0.0) -> str | None:
        key = _cache_key(model, prompt, temperature)
        with self._lock:
            row = self._conn.execute(
                "SELECT completion FROM completions WHERE key = ?", (key,)
            ).fetchone()
        return row[0] if row else None

    def put(
        self, model: str, prompt: str, completion: str, temperature: float = 0.0
    ) -> None:
        key = _cache_key(model, prompt, temperature)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO completions "
                "(key, model, prompt, completion, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (key, model, prompt, completion, time.time()),
            )
            self._conn.commit()

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM completions"
            ).fetchone()
        return count

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM completions")
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()


# Process-wide default cache.  The CLI's ``--cache PATH`` flag sets this
# once so every client constructed underneath (task engine, bench
# runners) shares one persistent file without threading a parameter
# through every experiment module — same pattern as the default worker
# count in :mod:`repro.api.batch`.
_DEFAULT_CACHE: PromptCache | None = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def set_default_cache(cache: PromptCache | None) -> None:
    """Install (or with ``None``, clear) the process-wide default cache."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        _DEFAULT_CACHE = cache


def get_default_cache() -> PromptCache | None:
    with _DEFAULT_CACHE_LOCK:
        return _DEFAULT_CACHE
