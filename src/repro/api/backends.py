"""Pluggable completion backends: protocol, registry, and HTTP adapters.

The paper's experiments run against the OpenAI completion API; this repo
simulates that endpoint with :class:`~repro.fm.engine.SimulatedFoundationModel`.
Until this module existed, the simulator was *hard-wired* into
:class:`~repro.api.client.CompletionClient`, so swapping tiers meant
swapping model objects wholesale and fronting a real API meant editing
the client.  This module is the seam that fixes both:

* :class:`CompletionBackend` — the structural protocol every backend
  satisfies: a ``name``, ``complete(prompt, ...) -> str``, and (for
  confidence-routed serving) ``complete_verbose(prompt, ...) ->
  Completion``.  The simulator already satisfies it unchanged.
* A process-wide **registry** (:func:`register_backend` /
  :func:`get_backend` / :func:`available_backends`) mapping model names
  to backend *factories* plus :class:`BackendInfo` pricing/tier
  metadata.  ``get_backend`` returns a **fresh instance per call** —
  exactly the semantics ``CompletionClient("gpt3-175b")`` always had —
  and the returned backend's ``name`` matches the registered name, so
  every existing cache key, fault plan, and usage/budget path works
  unchanged.  The simulated 1.3B/6.7B/175B tiers are pre-registered.
* An **OpenAI-compatible HTTP adapter** pair
  (:class:`DirectOpenAIBackend` / :class:`AzureOpenAIBackend`) shaped
  like the released fm_data_tasks wrapper: same payload, same
  ``choices[0].text`` extraction, per-vendor auth headers.  All network
  code sits behind a one-method *transport seam*
  (:class:`HTTPJSONTransport`), and :class:`InProcessFakeTransport` is a
  deterministic in-process stand-in, so the adapters are fully testable
  without ever touching the wire.

Registry resolution order: exact registered name first, then registered
aliases (``"175b"`` → ``"gpt3-175b"``, mirroring
:func:`repro.fm.profiles.get_profile`'s shorthand).  Direct
``SimulatedFoundationModel(...)`` construction remains supported
everywhere — the registry is the canonical front door, not a breaking
change.
"""

from __future__ import annotations

import json
import math
import threading
from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.api.retry import (
    MalformedResponseError,
    classify_http_error,
)
from repro.api.usage import PRICE_PER_1K_TOKENS
from repro.fm.engine import Completion, SimulatedFoundationModel
from repro.fm.profiles import MODEL_PROFILES

__all__ = [
    "AzureOpenAIBackend",
    "BackendInfo",
    "CompletionBackend",
    "DirectOpenAIBackend",
    "FailoverBackend",
    "HTTPJSONTransport",
    "InProcessFakeTransport",
    "available_backends",
    "backend_info",
    "get_backend",
    "get_default_backend_timeout",
    "register_backend",
    "register_failover",
    "set_default_backend_timeout",
    "unregister_backend",
    "validate_completion_response",
]


@runtime_checkable
class CompletionBackend(Protocol):
    """What the completion stack requires of a model backend.

    Structural (``isinstance`` works via ``runtime_checkable``): any
    object with a ``name`` and a ``complete`` method qualifies —
    :class:`~repro.fm.engine.SimulatedFoundationModel`, the HTTP
    adapters below, and user-registered customs alike.
    ``complete_verbose`` is optional but required for confidence-routed
    serving (the cascade); backends without it raise ``AttributeError``
    at the client layer.
    """

    @property
    def name(self) -> str: ...

    def complete(self, prompt: str, temperature: float = 0.0) -> str: ...


@dataclass(frozen=True)
class BackendInfo:
    """Pricing/tier metadata for one registered backend.

    ``price_per_1k_tokens`` uses the same unit as
    :data:`repro.api.usage.PRICE_PER_1K_TOKENS` (USD per 1000
    :func:`~repro.api.usage.count_tokens` tokens), so cost estimates are
    directly comparable across backends; ``None`` means unpriced — cost
    is then reported as 0.0 with ``unknown_price`` flagged, never
    invented.
    """

    name: str
    kind: str = "simulated"
    price_per_1k_tokens: float | None = None
    n_parameters: int | None = None
    description: str = ""
    aliases: tuple[str, ...] = ()

    @property
    def params_label(self) -> str:
        """Human tier label: ``175_000_000_000 -> "175B"``."""
        if self.n_parameters is None:
            return "-"
        for divisor, suffix in ((1_000_000_000, "B"), (1_000_000, "M")):
            if self.n_parameters >= divisor:
                value = self.n_parameters / divisor
                text = f"{value:.1f}".rstrip("0").rstrip(".")
                return f"{text}{suffix}"
        return str(self.n_parameters)


@dataclass(frozen=True)
class _Registration:
    factory: Callable[[], object]
    info: BackendInfo


_REGISTRY: dict[str, _Registration] = {}
_ALIASES: dict[str, str] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(
    name: str,
    factory: Callable[[], object],
    *,
    kind: str = "custom",
    price_per_1k_tokens: float | None = None,
    n_parameters: int | None = None,
    description: str = "",
    aliases: tuple[str, ...] = (),
) -> BackendInfo:
    """Register ``factory`` under ``name`` (plus optional aliases).

    ``factory`` is called once per :func:`get_backend` resolution and
    must return a fresh backend instance whose ``name`` is stable — the
    prompt cache keys on it.  Re-registering a name replaces the old
    entry (tests rely on this to install stand-ins); aliases may not
    shadow an existing canonical name.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    info = BackendInfo(
        name=name,
        kind=kind,
        price_per_1k_tokens=price_per_1k_tokens,
        n_parameters=n_parameters,
        description=description,
        aliases=tuple(aliases),
    )
    with _REGISTRY_LOCK:
        for alias in info.aliases:
            canonical = _ALIASES.get(alias)
            if alias in _REGISTRY and alias != name:
                raise ValueError(
                    f"alias {alias!r} would shadow a registered backend"
                )
            if canonical is not None and canonical != name:
                raise ValueError(
                    f"alias {alias!r} already points at {canonical!r}"
                )
        stale = [a for a, c in _ALIASES.items() if c == name]
        for alias in stale:
            del _ALIASES[alias]
        _REGISTRY[name] = _Registration(factory=factory, info=info)
        for alias in info.aliases:
            _ALIASES[alias] = name
    return info


def unregister_backend(name: str) -> None:
    """Remove ``name`` (and its aliases) from the registry."""
    with _REGISTRY_LOCK:
        registration = _REGISTRY.pop(name, None)
        if registration is None:
            raise KeyError(f"unknown backend {name!r}")
        for alias in registration.info.aliases:
            _ALIASES.pop(alias, None)


def _resolve_name(name: str) -> _Registration:
    with _REGISTRY_LOCK:
        registration = _REGISTRY.get(name)
        if registration is None:
            canonical = _ALIASES.get(name)
            if canonical is not None:
                registration = _REGISTRY.get(canonical)
        if registration is None:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown backend {name!r}; registered: {known}")
        return registration


def get_backend(name: str):
    """A fresh backend instance for ``name`` (exact name, then alias)."""
    return _resolve_name(name).factory()


def backend_info(name: str) -> BackendInfo:
    """The registered :class:`BackendInfo` for ``name`` (or an alias)."""
    return _resolve_name(name).info


def available_backends() -> list[str]:
    """Canonical registered backend names, in registration order."""
    with _REGISTRY_LOCK:
        return list(_REGISTRY)


# ---------------------------------------------------------------------------
# OpenAI-compatible HTTP adapters.
#
# Shaped like the released fm_data_tasks OpenAI wrapper: a Direct/Azure
# pair sharing one request/response contract, differing only in URL
# shape and auth header.  The transport is injected, and the default
# (stdlib urllib, lazily constructed) is the only code that ever opens a
# socket — tests swap in InProcessFakeTransport and never touch the
# wire.


# Process-wide default transport timeout.  ``repro run/serve
# --backend-timeout-s`` installs it; lazily-built HTTPJSONTransports
# pick it up, making the knob reachable from every entry point.
_DEFAULT_BACKEND_TIMEOUT_S = 30.0
_DEFAULT_BACKEND_TIMEOUT_LOCK = threading.Lock()


def set_default_backend_timeout(timeout_s: float) -> None:
    """Install the process-wide HTTP transport timeout (seconds)."""
    global _DEFAULT_BACKEND_TIMEOUT_S
    value = float(timeout_s)
    if value <= 0:
        raise ValueError(f"backend timeout must be positive, got {value}")
    with _DEFAULT_BACKEND_TIMEOUT_LOCK:
        _DEFAULT_BACKEND_TIMEOUT_S = value


def get_default_backend_timeout() -> float:
    with _DEFAULT_BACKEND_TIMEOUT_LOCK:
        return _DEFAULT_BACKEND_TIMEOUT_S


def _parse_retry_after(value) -> float | None:
    """``Retry-After`` header → seconds (delta form only), else None."""
    if value is None:
        return None
    try:
        return max(0.0, float(str(value).strip()))
    except (TypeError, ValueError):
        # HTTP-date form (or garbage): ignore rather than guess clocks.
        return None


class HTTPJSONTransport:
    """POST a JSON payload, return the decoded JSON response.

    The one and only network touchpoint of the adapter pair.  Stdlib
    ``urllib`` keeps the repo dependency-free; a production deployment
    would swap in a session-pooling transport through the same seam.

    Every wire failure surfaces as a typed exception the retry policy
    already classifies — never a raw ``urllib.error.HTTPError``:

    * non-2xx status → :func:`repro.api.retry.classify_http_error`
      (429 retryable with any ``Retry-After`` as a backoff floor,
      5xx retryable, other 4xx fatal);
    * reset / DNS / refused → :class:`ConnectionError`;
    * socket timeout → :class:`TimeoutError`;
    * undecodable body → :class:`repro.api.retry.MalformedResponseError`.
    """

    def __init__(self, timeout_s: float | None = None):
        self.timeout_s = float(
            timeout_s if timeout_s is not None
            else get_default_backend_timeout()
        )

    def post(self, url: str, headers: dict, payload: dict) -> dict:
        import socket
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json", **headers},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as resp:
                body = resp.read().decode("utf-8", errors="replace")
        except urllib.error.HTTPError as exc:
            retry_after = _parse_retry_after(
                exc.headers.get("Retry-After") if exc.headers else None
            )
            raise classify_http_error(
                exc.code, str(exc.reason), retry_after
            ) from exc
        except (socket.timeout, TimeoutError) as exc:
            raise TimeoutError(
                f"backend request timed out after {self.timeout_s}s"
            ) from exc
        except urllib.error.URLError as exc:
            reason = exc.reason
            if isinstance(reason, (socket.timeout, TimeoutError)):
                raise TimeoutError(
                    f"backend request timed out after {self.timeout_s}s"
                ) from exc
            raise ConnectionError(
                f"backend connection failed: {reason}"
            ) from exc
        except OSError as exc:
            raise ConnectionError(
                f"backend connection failed: {exc}"
            ) from exc
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise MalformedResponseError(
                f"backend returned undecodable JSON: {exc}"
            ) from exc


class InProcessFakeTransport:
    """A deterministic OpenAI-shaped endpoint that never leaves process.

    Answers are produced by ``completer`` (default: a simulated 175B
    model), wrapped in the completion-API response shape — including a
    ``token_logprobs`` block when the payload asks for logprobs, derived
    from the simulator's own confidence so adapter-reported confidence
    round-trips.  Every request is recorded on ``requests`` for test
    assertions.
    """

    def __init__(self, completer=None):
        if completer is None:
            completer = SimulatedFoundationModel("gpt3-175b")
        self.completer = completer
        self.requests: list[dict] = []
        self._lock = threading.Lock()

    def post(self, url: str, headers: dict, payload: dict) -> dict:
        with self._lock:
            self.requests.append(
                {"url": url, "headers": dict(headers), "payload": dict(payload)}
            )
        prompt = payload["prompt"]
        temperature = payload.get("temperature", 0.0)
        confidence = None
        if hasattr(self.completer, "complete_verbose"):
            completion = self.completer.complete_verbose(
                prompt, temperature=temperature
            )
            text, confidence = completion.text, completion.confidence
        elif callable(getattr(self.completer, "complete", None)):
            text = self.completer.complete(prompt, temperature=temperature)
        else:
            text = self.completer(prompt)
        choice: dict = {"text": text, "index": 0, "finish_reason": "stop"}
        if payload.get("logprobs") and confidence is not None:
            # One "token" whose logprob encodes the confidence exactly:
            # exp(mean(token_logprobs)) == confidence on the way back.
            choice["logprobs"] = {
                "token_logprobs": [math.log(max(confidence, 1e-9))]
            }
        return {"choices": [choice], "model": payload.get("model", "")}


#: ``finish_reason`` values the completion API contract allows.  A
#: value outside this set is a schema violation, not a new feature.
_KNOWN_FINISH_REASONS = frozenset(
    {"stop", "length", "content_filter", "timeout"}
)


def validate_completion_response(data) -> dict:
    """Check one decoded completion response against the API contract.

    Returns ``choices[0]`` on success; raises
    :class:`~repro.api.retry.MalformedResponseError` (typed, retryable)
    on any violation — a non-dict body, a missing/empty ``choices``
    list, a non-string ``text``, an unknown ``finish_reason``, or a
    ``logprobs.token_logprobs`` that is not a list of numbers/None —
    so schema-violating-but-valid JSON from a real endpoint becomes a
    classified wire fault instead of a downstream ``KeyError``.
    """
    if not isinstance(data, dict):
        raise MalformedResponseError(
            f"completion response must be an object, got "
            f"{type(data).__name__}"
        )
    choices = data.get("choices")
    if not isinstance(choices, list) or not choices:
        raise MalformedResponseError(
            "completion response missing a non-empty 'choices' list"
        )
    choice = choices[0]
    if not isinstance(choice, dict):
        raise MalformedResponseError(
            f"choices[0] must be an object, got {type(choice).__name__}"
        )
    text = choice.get("text")
    if not isinstance(text, str):
        raise MalformedResponseError(
            f"choices[0].text must be a string, got {type(text).__name__}"
        )
    finish_reason = choice.get("finish_reason")
    if finish_reason is not None and (
        not isinstance(finish_reason, str)
        or finish_reason not in _KNOWN_FINISH_REASONS
    ):
        raise MalformedResponseError(
            f"unknown finish_reason {finish_reason!r}"
        )
    logprobs = choice.get("logprobs")
    if logprobs is not None:
        if not isinstance(logprobs, dict):
            raise MalformedResponseError(
                "choices[0].logprobs must be an object"
            )
        token_logprobs = logprobs.get("token_logprobs")
        if token_logprobs is not None:
            if not isinstance(token_logprobs, list) or any(
                value is not None
                and not isinstance(value, (int, float))
                or isinstance(value, bool)
                for value in token_logprobs
            ):
                raise MalformedResponseError(
                    "logprobs.token_logprobs must be a list of "
                    "numbers or nulls"
                )
    return choice


class _OpenAICompatibleBackend:
    """Shared request/response contract of the Direct/Azure pair."""

    def __init__(
        self,
        model: str,
        api_key: str = "",
        transport=None,
        max_tokens: int = 64,
    ):
        self.model = model
        self.api_key = api_key
        self._transport = transport
        self.max_tokens = max_tokens

    @property
    def name(self) -> str:
        return self.model

    @property
    def transport(self):
        # Lazily built so importing (or registering) an adapter never
        # constructs network machinery.
        if self._transport is None:
            self._transport = HTTPJSONTransport()
        return self._transport

    def _url(self) -> str:
        raise NotImplementedError

    def _headers(self) -> dict:
        raise NotImplementedError

    def _payload(
        self, prompt: str, temperature: float, logprobs: int | None
    ) -> dict:
        payload = {
            "model": self.model,
            "prompt": prompt,
            "temperature": temperature,
            "max_tokens": self.max_tokens,
        }
        if logprobs is not None:
            payload["logprobs"] = logprobs
        return payload

    def _choice(self, prompt: str, temperature: float, logprobs=None) -> dict:
        data = self.transport.post(
            self._url(), self._headers(), self._payload(
                prompt, temperature, logprobs
            )
        )
        return validate_completion_response(data)

    def complete(self, prompt: str, temperature: float = 0.0, **kwargs) -> str:
        del kwargs  # max_tokens etc. are fixed per-backend
        return self._choice(prompt, temperature)["text"]

    def complete_verbose(
        self, prompt: str, temperature: float = 0.0, **kwargs
    ) -> Completion:
        """Completion plus confidence derived from returned logprobs.

        Confidence is ``exp(mean(token_logprobs))`` — the geometric mean
        token probability — clamped to [0, 1]; responses without
        logprobs fall back to a neutral 0.5 (the cascade then treats
        them as escalation candidates rather than trusting them).
        """
        del kwargs
        choice = self._choice(prompt, temperature, logprobs=1)
        text = choice["text"]
        logprobs = (choice.get("logprobs") or {}).get("token_logprobs") or []
        values = [value for value in logprobs if value is not None]
        if not values:
            return Completion(text=text, confidence=0.5)
        confidence = math.exp(sum(values) / len(values))
        return Completion(text=text, confidence=max(0.0, min(1.0, confidence)))


class DirectOpenAIBackend(_OpenAICompatibleBackend):
    """The api.openai.com flavor: bearer auth, /v1/completions."""

    def __init__(
        self,
        model: str,
        api_key: str = "",
        base_url: str = "https://api.openai.com/v1",
        transport=None,
        max_tokens: int = 64,
    ):
        super().__init__(
            model, api_key=api_key, transport=transport, max_tokens=max_tokens
        )
        self.base_url = base_url.rstrip("/")

    def _url(self) -> str:
        return f"{self.base_url}/completions"

    def _headers(self) -> dict:
        return {"Authorization": f"Bearer {self.api_key}"}


class AzureOpenAIBackend(_OpenAICompatibleBackend):
    """The Azure flavor: api-key auth, deployment-scoped URL."""

    def __init__(
        self,
        deployment: str,
        endpoint: str,
        api_key: str = "",
        api_version: str = "2023-05-15",
        model: str | None = None,
        transport=None,
        max_tokens: int = 64,
    ):
        super().__init__(
            model if model is not None else deployment,
            api_key=api_key,
            transport=transport,
            max_tokens=max_tokens,
        )
        self.deployment = deployment
        self.endpoint = endpoint.rstrip("/")
        self.api_version = api_version

    def _url(self) -> str:
        return (
            f"{self.endpoint}/openai/deployments/{self.deployment}"
            f"/completions?api-version={self.api_version}"
        )

    def _headers(self) -> dict:
        return {"api-key": self.api_key}

    def _payload(
        self, prompt: str, temperature: float, logprobs: int | None
    ) -> dict:
        # Azure scopes the model by deployment URL, not payload field.
        payload = super()._payload(prompt, temperature, logprobs)
        payload.pop("model", None)
        return payload


# ---------------------------------------------------------------------------
# Health-gated failover across an equivalence group of backends.


#: Wire-level failures worth trying the next group member for.  Fatal
#: *request* errors (4xx) are included deliberately: bad auth or a
#: missing deployment on one replica says nothing about its siblings.
_FAILOVER_ON = None  # resolved lazily to avoid an import cycle


def _failover_on() -> tuple:
    global _FAILOVER_ON
    if _FAILOVER_ON is None:
        from repro.api.retry import BackendHTTPError, RateLimitError

        _FAILOVER_ON = (
            BackendHTTPError,
            RateLimitError,
            TimeoutError,
            ConnectionError,
        )
    return _FAILOVER_ON


def _is_wire_failure(exc: BaseException) -> bool:
    """Whether ``exc`` is the kind of failure another member can fix.

    HTTP status errors (even fatal 4xx — the *member* may be
    misconfigured while its replica is fine), resets, timeouts and
    malformed payloads fail over.  Everything else — a bug, a
    :class:`~repro.api.retry.BudgetExhaustedError` from a nested client
    (fatal despite being a ``RateLimitError``) — propagates untouched:
    failing over would mask the real problem and double-spend.
    """
    from repro.api.retry import BackendHTTPError, FatalError

    if not isinstance(exc, _failover_on()):
        return False
    return not isinstance(exc, FatalError) or isinstance(
        exc, BackendHTTPError
    )


class FailoverBackend:
    """One logical backend served by an equivalence group of real ones.

    Sits *below* :class:`~repro.api.client.CompletionClient` — the
    client charges its request budget once per logical completion, so
    however many group members a serve touches, budget accounting stays
    exactly-once.  Members are tried in the order the
    :class:`~repro.api.resilience.FailoverPolicy` emits (declared order,
    health-gated, refused circuits demoted to last resort, never
    skipped); the first success wins and every attempt's outcome feeds
    the shared :class:`~repro.api.resilience.BackendHealthTracker`.

    Only wire-level failures fail over (HTTP status errors, resets,
    timeouts, malformed payloads); anything else — a bug, a budget
    error from a nested client — propagates untouched.  If every member
    fails, the *first* member's error propagates (it is the primary:
    its classification, e.g. a 429's ``Retry-After``, is the one the
    retry layer above should honor).

    Determinism: at temperature 0, members of an equivalence group
    return byte-identical text for the same prompt, so *predictions*
    never depend on which member was healthy; only routing telemetry
    (``attempts_by_backend`` / ``served_by_backend``) varies with
    fault timing.
    """

    def __init__(self, name: str, members, policy=None, health=None):
        from repro.api.resilience import FailoverPolicy

        self._name = str(name)
        members = list(members)
        if not members:
            raise ValueError("a FailoverBackend needs at least one member")
        self._member_names = [
            member if isinstance(member, str)
            else getattr(member, "name", type(member).__name__)
            for member in members
        ]
        self._instances: dict[str, object] = {
            label: member
            for label, member in zip(self._member_names, members)
            if not isinstance(member, str)
        }
        if policy is None:
            policy = FailoverPolicy(self._member_names, health=health)
        self.policy = policy
        self._lock = threading.Lock()
        self._attempts_by_backend: dict[str, int] = {}
        self._served_by_backend: dict[str, int] = {}

    @property
    def name(self) -> str:
        return self._name

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(self._member_names)

    def _resolve(self, label: str):
        with self._lock:
            instance = self._instances.get(label)
        if instance is not None:
            return instance
        instance = get_backend(label)
        with self._lock:
            self._instances.setdefault(label, instance)
            return self._instances[label]

    def _serve(self, call):
        import time as _time

        first_error: BaseException | None = None
        for label in self.policy.candidates():
            backend = self._resolve(label)
            with self._lock:
                self._attempts_by_backend[label] = (
                    self._attempts_by_backend.get(label, 0) + 1
                )
            started = _time.perf_counter()
            try:
                result = call(backend)
            except Exception as exc:
                if not _is_wire_failure(exc):
                    raise
                self.policy.record(
                    label, ok=False,
                    latency_s=_time.perf_counter() - started,
                )
                if first_error is None:
                    first_error = exc
                continue
            self.policy.record(
                label, ok=True, latency_s=_time.perf_counter() - started
            )
            with self._lock:
                self._served_by_backend[label] = (
                    self._served_by_backend.get(label, 0) + 1
                )
            return result
        assert first_error is not None
        raise first_error

    def complete(self, prompt: str, temperature: float = 0.0, **kwargs) -> str:
        return self._serve(
            lambda backend: backend.complete(
                prompt, temperature=temperature, **kwargs
            )
        )

    def complete_verbose(
        self, prompt: str, temperature: float = 0.0, **kwargs
    ) -> Completion:
        return self._serve(
            lambda backend: backend.complete_verbose(
                prompt, temperature=temperature, **kwargs
            )
        )

    def failover_stats(self) -> dict:
        """JSON-ready ``failover`` block for run manifests."""
        with self._lock:
            attempts = dict(sorted(self._attempts_by_backend.items()))
            served = dict(sorted(self._served_by_backend.items()))
        return {
            "group": self._name,
            "members": list(self._member_names),
            "attempts_by_backend": attempts,
            "served_by_backend": served,
            "health": self.policy.health.snapshot(),
        }


def register_failover(
    name: str,
    members,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
    health_kwargs: dict | None = None,
) -> BackendInfo:
    """Register an equivalence group as one routable backend name.

    ``members`` are registered backend names (or ready backend
    objects), primary first.  Pricing metadata is inherited from the
    primary member when it is registered — the group serves the
    primary's traffic at the primary's declared rate.  Each
    :func:`get_backend` resolution builds a fresh
    :class:`FailoverBackend` with a fresh health tracker, matching the
    fresh-instance semantics of every other registration.
    """
    members = list(members)
    if not members:
        raise ValueError("a failover group needs at least one member")
    # Validate *named* members eagerly: a typo in --failover should
    # fail at registration, not on the first completion of a run.
    for member in members:
        if isinstance(member, str):
            backend_info(member)
    primary = (
        members[0] if isinstance(members[0], str)
        else getattr(members[0], "name", type(members[0]).__name__)
    )
    try:
        primary_info = backend_info(primary)
        price = primary_info.price_per_1k_tokens
        n_parameters = primary_info.n_parameters
    except KeyError:
        price = None
        n_parameters = None
    kwargs = dict(health_kwargs or {})

    def factory(group=name, group_members=tuple(members), hk=kwargs):
        from repro.api.resilience import BackendHealthTracker

        health = BackendHealthTracker(**hk) if hk else None
        return FailoverBackend(group, list(group_members), health=health)

    return register_backend(
        name,
        factory,
        kind="failover",
        price_per_1k_tokens=price,
        n_parameters=n_parameters,
        description=description or (
            f"failover group over {', '.join(str(m) for m in members)}"
        ),
        aliases=aliases,
    )


# ---------------------------------------------------------------------------
# Default registrations: the simulated GPT-3 family, priced from the
# usage table, with the same size-suffix shorthand get_profile accepts.

def _register_simulated_tiers() -> None:
    for name, profile in MODEL_PROFILES.items():
        suffix = name.split("-", 1)[1] if "-" in name else name
        register_backend(
            name,
            # Bind by name, not profile object: a fresh simulator per
            # resolution, exactly like CompletionClient always built.
            (lambda model=name: SimulatedFoundationModel(model)),
            kind="simulated",
            price_per_1k_tokens=PRICE_PER_1K_TOKENS.get(name),
            n_parameters=profile.n_parameters,
            description=(
                "simulated GPT-3 tier (deterministic, offline)"
            ),
            aliases=(suffix,) if suffix != name else (),
        )


_register_simulated_tiers()
