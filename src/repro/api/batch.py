"""Concurrent batch execution: fan-out, retry with backoff, shared budgets.

The paper's workloads are thousands of *independent* ``complete()`` calls
per benchmark table — one prompt per test pair or cell — issued against a
rate-limited API.  Serial loops pay full round-trip latency per prompt;
this module fans them across a thread pool while keeping everything the
harness relies on:

* **order preservation** — results come back in input order regardless of
  completion order or worker count,
* **determinism** — at temperature 0 a completion depends only on its
  prompt, so serial and parallel runs produce identical predictions,
* **retry with deterministic exponential backoff** on
  :class:`~repro.api.client.RateLimitError` and transient network-ish
  failures,
* **atomic budgets** — a :class:`SharedBudget` charged under a lock, so
  concurrent workers can never collectively overshoot a request or token
  ceiling,
* **per-request accounting** — every attempt produces a
  :class:`RequestRecord` (latency, attempts, outcome), surfaced through
  :class:`~repro.api.usage.UsageTracker.request_log`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.client import RateLimitError
from repro.api.usage import UsageTracker, count_tokens

__all__ = [
    "BatchExecutor",
    "RequestRecord",
    "SharedBudget",
    "complete_all",
    "get_default_workers",
    "resolve_workers",
    "set_default_workers",
]

# Process-wide default worker count.  The CLI's ``--workers`` flag sets
# this once so every per-example loop underneath (task runners, bench
# helpers, Wrangler verbs) picks it up without threading a parameter
# through fourteen bench modules.
_DEFAULT_WORKERS = 1
_DEFAULT_WORKERS_LOCK = threading.Lock()


def set_default_workers(n: int) -> None:
    """Set the process-wide default worker count (``--workers`` backend)."""
    global _DEFAULT_WORKERS
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    with _DEFAULT_WORKERS_LOCK:
        _DEFAULT_WORKERS = n


def get_default_workers() -> int:
    with _DEFAULT_WORKERS_LOCK:
        return _DEFAULT_WORKERS


def resolve_workers(workers: int | None) -> int:
    """``workers`` if given (validated), else the process-wide default."""
    if workers is None:
        return get_default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class RequestRecord:
    """Latency and outcome of one logical request (all its attempts)."""

    index: int
    ok: bool
    attempts: int
    latency_s: float
    error: str | None = None


class SharedBudget:
    """A request/token ceiling charged atomically across workers.

    Unlike the per-client ``requests_per_run`` counter, one budget can be
    shared by many clients and many threads; ``charge`` either admits the
    whole request or raises :class:`RateLimitError` without consuming
    anything, so concurrent workers can never collectively overshoot.
    """

    def __init__(
        self,
        max_requests: int | None = None,
        max_tokens: int | None = None,
    ):
        self.max_requests = max_requests
        self.max_tokens = max_tokens
        self.n_requests = 0
        self.n_tokens = 0
        self._lock = threading.Lock()

    def charge(self, requests: int = 1, tokens: int = 0) -> None:
        """Atomically consume budget, or raise without consuming any."""
        with self._lock:
            if (
                self.max_requests is not None
                and self.n_requests + requests > self.max_requests
            ):
                raise RateLimitError(
                    f"request budget of {self.max_requests} exhausted"
                )
            if (
                self.max_tokens is not None
                and self.n_tokens + tokens > self.max_tokens
            ):
                raise RateLimitError(
                    f"token budget of {self.max_tokens} exhausted"
                )
            self.n_requests += requests
            self.n_tokens += tokens

    @property
    def remaining_requests(self) -> int | None:
        if self.max_requests is None:
            return None
        with self._lock:
            return max(0, self.max_requests - self.n_requests)


class BatchExecutor:
    """Fan a list of prompts (or arbitrary items) across a thread pool.

    ``map(fn, items)`` preserves input order in its result list.  Each
    item gets up to ``1 + max_retries`` attempts; attempts failing with
    one of ``retry_on`` sleep a deterministic exponential backoff
    (``backoff_base * 2**attempt``, capped at ``backoff_cap``) before
    retrying.  A final failure re-raises from ``map``.

    An optional :class:`SharedBudget` is charged once per attempt (string
    items are also charged their prompt tokens); an optional
    :class:`UsageTracker` receives every :class:`RequestRecord`.
    """

    def __init__(
        self,
        workers: int | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_on: tuple[type[BaseException], ...] = (
            RateLimitError,
            TimeoutError,
            ConnectionError,
        ),
        budget: SharedBudget | None = None,
        usage: UsageTracker | None = None,
    ):
        self.workers = resolve_workers(workers)
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_on = tuple(retry_on)
        self.budget = budget
        self.usage = usage
        self.records: list[RequestRecord] = []
        self._records_lock = threading.Lock()

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt + 1``."""
        return min(self.backoff_cap, self.backoff_base * (2**attempt))

    def _record(
        self, index: int, ok: bool, attempts: int, started: float,
        error: BaseException | None = None,
    ) -> None:
        record = RequestRecord(
            index=index,
            ok=ok,
            attempts=attempts,
            latency_s=time.perf_counter() - started,
            error=repr(error) if error is not None else None,
        )
        with self._records_lock:
            self.records.append(record)
        if self.usage is not None:
            self.usage.log_request(record)

    def _run_one(self, fn: Callable, item, index: int):
        started = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                if self.budget is not None:
                    tokens = count_tokens(item) if isinstance(item, str) else 0
                    self.budget.charge(requests=1, tokens=tokens)
                result = fn(item)
            except self.retry_on as exc:
                if attempts > self.max_retries:
                    self._record(index, False, attempts, started, error=exc)
                    raise
                time.sleep(self.backoff_delay(attempts - 1))
                continue
            except BaseException as exc:
                self._record(index, False, attempts, started, error=exc)
                raise
            self._record(index, True, attempts, started)
            return result

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item, returning results in input order."""
        items = list(items)
        if not items:
            return []
        if self.workers == 1:
            return [
                self._run_one(fn, item, index)
                for index, item in enumerate(items)
            ]
        results: list = [None] * len(items)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(self._run_one, fn, item, index)
                for index, item in enumerate(items)
            ]
            for index, future in enumerate(futures):
                results[index] = future.result()
        return results


def complete_all(
    model,
    prompts: Sequence[str],
    workers: int | None = None,
    executor: BatchExecutor | None = None,
) -> list[str]:
    """Order-preserving batch completion of ``prompts`` against ``model``.

    ``model`` is anything with ``complete(prompt) -> str``.  With
    ``workers=None`` the process-wide default applies (1 unless the CLI's
    ``--workers`` raised it), so existing serial callers are unchanged.
    """
    if executor is None:
        executor = BatchExecutor(workers=workers)
    return executor.map(model.complete, prompts)
