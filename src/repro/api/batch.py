"""Concurrent batch execution: fan-out, retry with backoff, shared budgets.

The paper's workloads are thousands of *independent* ``complete()`` calls
per benchmark table — one prompt per test pair or cell — issued against a
rate-limited API.  Serial loops pay full round-trip latency per prompt;
this module fans them across a thread pool while keeping everything the
harness relies on:

* **order preservation** — results come back in input order regardless of
  completion order or worker count,
* **determinism** — at temperature 0 a completion depends only on its
  prompt, so serial and parallel runs produce identical predictions,
* **retry with deterministic exponential backoff** on
  :class:`~repro.api.retry.RateLimitError` and transient network-ish
  failures, governed by one shared :class:`~repro.api.retry.RetryPolicy`,
* **fail-fast on fatal errors** — a
  :class:`~repro.api.retry.FatalError` (e.g. an exhausted
  :class:`SharedBudget`) aborts the whole batch immediately: no backoff,
  pending futures are cancelled, in-flight work drains, and the original
  error re-raises from :meth:`BatchExecutor.map`,
* **atomic budgets** — a :class:`SharedBudget` charged under a lock, so
  concurrent workers can never collectively overshoot a request or token
  ceiling,
* **per-request accounting** — every attempt produces a
  :class:`RequestRecord` (latency, attempts, outcome), surfaced through
  :class:`~repro.api.usage.UsageTracker.request_log`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.retry import (
    BudgetExhaustedError,
    CircuitOpenError,
    FatalError,
    RetryPolicy,
    retry_after_floor,
)
from repro.api.usage import UsageTracker, count_tokens

__all__ = [
    "BatchExecutor",
    "BatchFailure",
    "CircuitBreaker",
    "RequestRecord",
    "SharedBudget",
    "complete_all",
    "get_default_executor_kind",
    "get_default_workers",
    "make_executor",
    "resolve_workers",
    "set_default_executor_kind",
    "set_default_workers",
]

# Process-wide default worker count.  The CLI's ``--workers`` flag sets
# this once so every per-example loop underneath (task runners, bench
# helpers, Wrangler verbs) picks it up without threading a parameter
# through fourteen bench modules.
_DEFAULT_WORKERS = 1
_DEFAULT_WORKERS_LOCK = threading.Lock()


def set_default_workers(n: int) -> None:
    """Set the process-wide default worker count (``--workers`` backend)."""
    global _DEFAULT_WORKERS
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    with _DEFAULT_WORKERS_LOCK:
        _DEFAULT_WORKERS = n


def get_default_workers() -> int:
    with _DEFAULT_WORKERS_LOCK:
        return _DEFAULT_WORKERS


def resolve_workers(workers: int | None) -> int:
    """``workers`` if given (validated), else the process-wide default."""
    if workers is None:
        return get_default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


# Process-wide default executor kind.  "thread" is the PR 1 pool below;
# "async" routes make_executor to the continuous-batching
# :class:`~repro.api.abatch.AsyncBatchExecutor`.  The CLI's ``--executor``
# flag sets this once per process — same ambient-default pattern as the
# worker count above.
EXECUTOR_KINDS = ("thread", "async")
_DEFAULT_EXECUTOR_KIND = "thread"
_DEFAULT_EXECUTOR_KIND_LOCK = threading.Lock()


def set_default_executor_kind(kind: str) -> None:
    """Set the process-wide executor kind ("thread" or "async")."""
    global _DEFAULT_EXECUTOR_KIND
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"executor kind must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    with _DEFAULT_EXECUTOR_KIND_LOCK:
        _DEFAULT_EXECUTOR_KIND = kind


def get_default_executor_kind() -> str:
    with _DEFAULT_EXECUTOR_KIND_LOCK:
        return _DEFAULT_EXECUTOR_KIND


def make_executor(kind: str | None = None, **kwargs):
    """Build an executor of ``kind`` ("thread"/"async"; ``None`` = default).

    The facade between the engine and the two execution cores: both
    accept the same constructor arguments and expose the same
    ``map``/``records`` API, so every caller (and every PR 1–5 knob —
    retry policy, breaker, budget, deadline, admission, checkpoints)
    works unchanged through either.
    """
    if kind is None:
        kind = get_default_executor_kind()
    if kind == "thread":
        return BatchExecutor(**kwargs)
    if kind == "async":
        from repro.api.abatch import AsyncBatchExecutor

        return AsyncBatchExecutor(**kwargs)
    raise ValueError(
        f"executor kind must be one of {EXECUTOR_KINDS}, got {kind!r}"
    )


@dataclass(frozen=True)
class RequestRecord:
    """Latency and outcome of one logical request (all its attempts)."""

    index: int
    ok: bool
    attempts: int
    latency_s: float
    error: str | None = None


@dataclass(frozen=True)
class BatchFailure:
    """One item's terminal failure, returned by ``map(on_error="return")``.

    Instead of aborting the whole batch, scatter mode records the final
    (retries-exhausted or non-retryable) error in the item's result slot
    so the caller can quarantine that example and keep the rest.  Fatal
    errors still abort — a spent budget dooms every pending item alike.
    """

    index: int
    error: BaseException
    attempts: int

    @property
    def error_type(self) -> str:
        return type(self.error).__name__


class CircuitBreaker:
    """Trip after N consecutive transient failures; probe to recover.

    When the endpoint is down, every pending item otherwise burns its
    full retry/backoff budget discovering the same outage.  The breaker
    *shares* that discovery: ``failure_threshold`` consecutive transient
    failures open the circuit, after which :meth:`allow` rejects work
    instantly (the executor fails those items with
    :class:`~repro.api.retry.CircuitOpenError` — fast, no backend call).
    Once ``cooldown_s`` elapses the circuit goes *half-open*: exactly one
    caller is admitted as a probe; its success closes the circuit, its
    failure re-opens it for another cooldown.  Any success resets the
    consecutive-failure count, so scattered transient faults under an
    otherwise healthy endpoint never trip it.

    Thread-safe; state survives across ``map`` calls on purpose (the
    breaker models endpoint health, not batch progress).  The clock is
    injectable (default ``time.monotonic``) so cooldown and half-open
    transitions are testable without real sleeps; the same injected
    clock can drive a :class:`~repro.api.resilience.Deadline`.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.n_trips = 0
        self.n_rejections = 0
        self.n_probes = 0

    @property
    def state(self) -> str:
        """"closed", "open", or "half_open"."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a caller may attempt a request right now."""
        with self._lock:
            if self._state == "closed":
                return True
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at < self.cooldown_s:
                    self.n_rejections += 1
                    return False
                self._state = "half_open"
                self._probing = True
                self.n_probes += 1
                return True
            # half_open: one probe at a time.
            if self._probing:
                self.n_rejections += 1
                return False
            self._probing = True
            self.n_probes += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            self._state = "closed"

    def record_failure(self) -> None:
        """Count one transient failure; trip or re-open as needed."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
                self.n_trips += 1
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self.n_trips += 1

    def stats(self) -> dict[str, int | str]:
        with self._lock:
            return {
                "state": self._state,
                "trips": self.n_trips,
                "rejections": self.n_rejections,
                "probes": self.n_probes,
            }


class _MapRun:
    """Abort/fatal state scoped to one ``map`` call.

    Previously this state lived on the executor itself and was recycled
    by clearing an event at the top of ``map`` — which meant a fatal
    abort could leak into (or be cleared out from under) another ``map``
    on the same executor.  Per-run state makes reuse and concurrent
    ``map`` calls trivially safe: each run aborts only itself.
    """

    __slots__ = ("abort", "fatal", "lock")

    def __init__(self):
        self.abort = threading.Event()
        self.fatal: BaseException | None = None
        self.lock = threading.Lock()

    def set_fatal(self, exc: BaseException) -> None:
        with self.lock:
            if self.fatal is None:
                self.fatal = exc
        self.abort.set()


class SharedBudget:
    """A request/token ceiling charged atomically across workers.

    Unlike the per-client ``requests_per_run`` counter, one budget can be
    shared by many clients and many threads; ``charge`` either admits the
    whole request or raises :class:`~repro.api.retry.BudgetExhaustedError`
    without consuming anything, so concurrent workers can never
    collectively overshoot.  Exhaustion is *fatal*: the budget cannot
    recover mid-run, so the executor aborts instead of backing off.
    """

    def __init__(
        self,
        max_requests: int | None = None,
        max_tokens: int | None = None,
    ):
        self.max_requests = max_requests
        self.max_tokens = max_tokens
        self.n_requests = 0
        self.n_tokens = 0
        self._lock = threading.Lock()

    def charge(self, requests: int = 1, tokens: int = 0) -> None:
        """Atomically consume budget, or raise without consuming any."""
        with self._lock:
            if (
                self.max_requests is not None
                and self.n_requests + requests > self.max_requests
            ):
                raise BudgetExhaustedError(
                    f"request budget of {self.max_requests} exhausted"
                )
            if (
                self.max_tokens is not None
                and self.n_tokens + tokens > self.max_tokens
            ):
                raise BudgetExhaustedError(
                    f"token budget of {self.max_tokens} exhausted"
                )
            self.n_requests += requests
            self.n_tokens += tokens

    @property
    def remaining_requests(self) -> int | None:
        if self.max_requests is None:
            return None
        with self._lock:
            return max(0, self.max_requests - self.n_requests)


class BatchExecutor:
    """Fan a list of prompts (or arbitrary items) across a thread pool.

    ``map(fn, items)`` preserves input order in its result list.  Retry
    behaviour comes from one :class:`~repro.api.retry.RetryPolicy`: each
    item gets up to ``1 + policy.max_retries`` attempts, and attempts
    failing with a retryable error sleep the policy's deterministic
    exponential backoff before retrying.  A final failure re-raises from
    ``map`` — or, with ``map(..., on_error="return")``, is captured as a
    :class:`BatchFailure` in that item's result slot so the caller can
    quarantine the example and keep the batch alive.

    A :class:`~repro.api.retry.FatalError` short-circuits everything:
    the executor sets an abort flag (waking any worker mid-backoff),
    cancels futures that have not started, lets in-flight attempts
    drain, and re-raises the first fatal error — so an exhausted budget
    costs zero backoff sleeps instead of ``workers * Σ backoff``.  Abort
    state is scoped to each ``map`` call, so an executor that failed
    fatally is immediately reusable and concurrent ``map`` calls cannot
    abort each other.

    An optional :class:`CircuitBreaker` guards every attempt: while the
    circuit is open, items fail fast with
    :class:`~repro.api.retry.CircuitOpenError` instead of hammering a
    dead endpoint, and a single half-open probe per cooldown decides
    when to resume.

    An optional :class:`SharedBudget` is charged once per attempt (string
    items are also charged their prompt tokens); an optional
    :class:`UsageTracker` receives every :class:`RequestRecord`.

    Service-level knobs (all optional, all off by default):

    * ``deadline`` — a :class:`~repro.api.resilience.Deadline` checked
      before every attempt and clamped around every backoff sleep, so
      the fan-out can never sleep past its wall budget; expiry raises
      :class:`~repro.api.retry.DeadlineExceededError` (fatal).
    * ``admission`` — an
      :class:`~repro.api.resilience.AdmissionController` consulted once
      per ``map`` call, *before* the fan-out: shed items fail instantly
      with :class:`~repro.api.retry.Shed` (zero backend calls), and its
      AIMD limiter gates per-attempt concurrency.  ``priority`` names
      the batch's priority class for the shed plan.

    Backoff sleeps are decorrelated-jittered per item (a pure function
    of the policy's seed, the attempt number, and the item's index — see
    :meth:`~repro.api.retry.RetryPolicy.delay`), so concurrent retries
    of different items never synchronize into a thundering herd.

    The legacy ``max_retries``/``backoff_base``/``backoff_cap``/
    ``retry_on`` knobs are still accepted and folded into a policy;
    passing both a ``policy`` and loose knobs is an error.
    """

    def __init__(
        self,
        workers: int | None = None,
        max_retries: int | None = None,
        backoff_base: float | None = None,
        backoff_cap: float | None = None,
        retry_on: tuple[type[BaseException], ...] | None = None,
        budget: SharedBudget | None = None,
        usage: UsageTracker | None = None,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline=None,
        admission=None,
        priority: str = "bench",
        token_cost: Callable | None = None,
    ):
        knobs = (max_retries, backoff_base, backoff_cap, retry_on)
        if policy is None:
            default = RetryPolicy()
            policy = RetryPolicy(
                max_retries=(
                    default.max_retries if max_retries is None else max_retries
                ),
                backoff_base=(
                    default.backoff_base if backoff_base is None else backoff_base
                ),
                backoff_cap=(
                    default.backoff_cap if backoff_cap is None else backoff_cap
                ),
                retry_on=(
                    default.retry_on if retry_on is None else tuple(retry_on)
                ),
            )
        elif any(knob is not None for knob in knobs):
            raise ValueError(
                "pass either a RetryPolicy or loose retry knobs, not both"
            )
        self.workers = resolve_workers(workers)
        self.policy = policy
        self.budget = budget
        self.usage = usage
        self.breaker = breaker
        self.deadline = deadline
        self.admission = admission
        self.priority = priority
        # Optional ``item -> tokens`` override for budget charging.  The
        # default counts string items in full; the prefix-cached serving
        # path supplies the per-item suffix cost instead (the shared
        # prefix having been charged to the budget once, up front).
        self.token_cost = token_cost
        self.records: list[RequestRecord] = []
        self._records_lock = threading.Lock()
        self._last_run: _MapRun | None = None

    # Legacy views onto the policy (kept so existing call sites and tests
    # that introspect the executor keep working).
    @property
    def max_retries(self) -> int:
        return self.policy.max_retries

    @property
    def backoff_base(self) -> float:
        return self.policy.backoff_base

    @property
    def backoff_cap(self) -> float:
        return self.policy.backoff_cap

    @property
    def retry_on(self) -> tuple[type[BaseException], ...]:
        return tuple(self.policy.retry_on)

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt + 1``."""
        return self.policy.delay(attempt)

    @property
    def aborted(self) -> bool:
        """Whether the most recent ``map`` hit a fatal error and bailed."""
        run = self._last_run
        return run is not None and run.abort.is_set()

    def _tokens_for(self, item) -> int:
        """Token cost of one attempt for budget charging."""
        if self.token_cost is not None:
            return self.token_cost(item)
        return count_tokens(item) if isinstance(item, str) else 0

    def _record(
        self, index: int, ok: bool, attempts: int, started: float,
        error: BaseException | None = None,
    ) -> None:
        record = RequestRecord(
            index=index,
            ok=ok,
            attempts=attempts,
            latency_s=time.perf_counter() - started,
            error=repr(error) if error is not None else None,
        )
        with self._records_lock:
            self.records.append(record)
        if self.usage is not None:
            self.usage.log_request(record)

    def _run_one(
        self, fn: Callable, item, index: int, run: _MapRun, on_error: str,
        verdict: str = "admit",
    ):
        started = time.perf_counter()
        attempts = 0
        if verdict == "shed":
            # Planned before the fan-out: this item is refused outright —
            # zero backend calls, zero retries, zero backoff.
            from repro.api.retry import Shed

            exc = Shed(
                f"admission control shed item {index} "
                f"(priority {self.priority!r})"
            )
            self._record(index, False, 0, started, error=exc)
            if on_error == "return":
                return BatchFailure(index, exc, 0)
            raise exc
        while True:
            if run.abort.is_set():
                # Another worker hit a fatal error; don't start new
                # attempts.  Items that never attempted are not recorded
                # (they were cancelled, not failed).
                exc = run.fatal or FatalError("batch aborted")
                if attempts:
                    self._record(index, False, attempts, started, error=exc)
                raise exc
            if self.breaker is not None and not self.breaker.allow():
                # Endpoint presumed down: fail this item fast instead of
                # burning its retry/backoff budget on a known outage.
                attempts += 1
                exc = CircuitOpenError(
                    "circuit breaker open after "
                    f"{self.breaker.failure_threshold} consecutive "
                    "transient failures"
                )
                self._record(index, False, attempts, started, error=exc)
                if on_error == "return":
                    return BatchFailure(index, exc, attempts)
                raise exc
            attempts += 1
            acquired = False
            try:
                if self.deadline is not None:
                    # Fatal on expiry — caught below with the other
                    # FatalErrors so the whole batch fails fast.
                    self.deadline.check()
                if self.budget is not None:
                    self.budget.charge(requests=1, tokens=self._tokens_for(item))
                if self.admission is not None:
                    # The AIMD queue: blocks while the window is full.
                    self.admission.acquire()
                    acquired = True
                result = fn(item)
            except FatalError as exc:
                # Checked before retry_on: BudgetExhaustedError is a
                # RateLimitError, but backing off cannot refill a budget.
                if acquired:
                    self.admission.release(ok=False)
                run.set_fatal(exc)
                self._record(index, False, attempts, started, error=exc)
                raise
            except BaseException as exc:
                retryable = self.policy.is_retryable(exc)
                if acquired:
                    self.admission.release(ok=not retryable)
                if self.breaker is not None and retryable:
                    # Transient failures gauge endpoint health; permanent
                    # errors (a parse bug, bad input) say nothing about it.
                    self.breaker.record_failure()
                if not self.policy.should_retry(exc, attempts):
                    self._record(index, False, attempts, started, error=exc)
                    if on_error == "return":
                        return BatchFailure(index, exc, attempts)
                    raise
                # Backoff that wakes immediately if the batch aborts —
                # the abort check at loop top then raises without a new
                # attempt.  Jittered per item (so concurrent retries
                # decorrelate) and clamped to the deadline (so a sleep
                # can never outlive the wall budget).
                delay = self.policy.delay(attempts - 1, key=str(index))
                # An explicit Retry-After from the endpoint is a floor
                # under the ladder, never undercut by its early rungs.
                delay = max(delay, retry_after_floor(exc))
                if self.deadline is not None:
                    delay = self.deadline.clamp(delay)
                run.abort.wait(delay)
                continue
            if acquired:
                self.admission.release(ok=True)
            if self.breaker is not None:
                self.breaker.record_success()
            self._record(index, True, attempts, started)
            return result

    def map(self, fn: Callable, items: Iterable, on_error: str = "raise") -> list:
        """Apply ``fn`` to every item, returning results in input order.

        ``on_error="raise"`` (the default) re-raises the first terminal
        failure.  ``on_error="return"`` keeps going: a terminally-failed
        item's slot holds a :class:`BatchFailure` instead, letting the
        caller quarantine it — fatal errors abort the batch either way.

        With an admission controller attached, the shed plan is drawn
        *here*, once, in input order, before any worker starts — which
        is what makes shed decisions byte-identical at any worker count.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f'on_error must be "raise" or "return", got {on_error!r}'
            )
        items = list(items)
        run = _MapRun()
        self._last_run = run
        if not items:
            return []
        if self.admission is not None:
            verdicts = self.admission.plan(len(items), self.priority)
        else:
            verdicts = ["admit"] * len(items)
        if self.workers == 1:
            return [
                self._run_one(fn, item, index, run, on_error, verdicts[index])
                for index, item in enumerate(items)
            ]
        results: list = [None] * len(items)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(
                    self._run_one, fn, item, index, run, on_error,
                    verdicts[index],
                )
                for index, item in enumerate(items)
            ]
            try:
                for index, future in enumerate(futures):
                    results[index] = future.result()
            except BaseException:
                # Fail fast: queued futures never start; in-flight ones
                # drain on pool shutdown (fatal aborts make that quick —
                # the abort event cuts every backoff sleep short).
                for future in futures:
                    future.cancel()
                raise
        return results


def complete_all(
    model,
    prompts: Sequence[str],
    workers: int | None = None,
    executor: BatchExecutor | None = None,
) -> list[str]:
    """Order-preserving batch completion of ``prompts`` against ``model``.

    ``model`` is anything with ``complete(prompt) -> str``.  With
    ``workers=None`` the process-wide default applies (1 unless the CLI's
    ``--workers`` raised it), so existing serial callers are unchanged.
    """
    if executor is None:
        executor = BatchExecutor(workers=workers)
    return executor.map(model.complete, prompts)
