"""Concurrent batch execution: fan-out, retry with backoff, shared budgets.

The paper's workloads are thousands of *independent* ``complete()`` calls
per benchmark table — one prompt per test pair or cell — issued against a
rate-limited API.  Serial loops pay full round-trip latency per prompt;
this module fans them across a thread pool while keeping everything the
harness relies on:

* **order preservation** — results come back in input order regardless of
  completion order or worker count,
* **determinism** — at temperature 0 a completion depends only on its
  prompt, so serial and parallel runs produce identical predictions,
* **retry with deterministic exponential backoff** on
  :class:`~repro.api.retry.RateLimitError` and transient network-ish
  failures, governed by one shared :class:`~repro.api.retry.RetryPolicy`,
* **fail-fast on fatal errors** — a
  :class:`~repro.api.retry.FatalError` (e.g. an exhausted
  :class:`SharedBudget`) aborts the whole batch immediately: no backoff,
  pending futures are cancelled, in-flight work drains, and the original
  error re-raises from :meth:`BatchExecutor.map`,
* **atomic budgets** — a :class:`SharedBudget` charged under a lock, so
  concurrent workers can never collectively overshoot a request or token
  ceiling,
* **per-request accounting** — every attempt produces a
  :class:`RequestRecord` (latency, attempts, outcome), surfaced through
  :class:`~repro.api.usage.UsageTracker.request_log`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.retry import BudgetExhaustedError, FatalError, RetryPolicy
from repro.api.usage import UsageTracker, count_tokens

__all__ = [
    "BatchExecutor",
    "RequestRecord",
    "SharedBudget",
    "complete_all",
    "get_default_workers",
    "resolve_workers",
    "set_default_workers",
]

# Process-wide default worker count.  The CLI's ``--workers`` flag sets
# this once so every per-example loop underneath (task runners, bench
# helpers, Wrangler verbs) picks it up without threading a parameter
# through fourteen bench modules.
_DEFAULT_WORKERS = 1
_DEFAULT_WORKERS_LOCK = threading.Lock()


def set_default_workers(n: int) -> None:
    """Set the process-wide default worker count (``--workers`` backend)."""
    global _DEFAULT_WORKERS
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    with _DEFAULT_WORKERS_LOCK:
        _DEFAULT_WORKERS = n


def get_default_workers() -> int:
    with _DEFAULT_WORKERS_LOCK:
        return _DEFAULT_WORKERS


def resolve_workers(workers: int | None) -> int:
    """``workers`` if given (validated), else the process-wide default."""
    if workers is None:
        return get_default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class RequestRecord:
    """Latency and outcome of one logical request (all its attempts)."""

    index: int
    ok: bool
    attempts: int
    latency_s: float
    error: str | None = None


class SharedBudget:
    """A request/token ceiling charged atomically across workers.

    Unlike the per-client ``requests_per_run`` counter, one budget can be
    shared by many clients and many threads; ``charge`` either admits the
    whole request or raises :class:`~repro.api.retry.BudgetExhaustedError`
    without consuming anything, so concurrent workers can never
    collectively overshoot.  Exhaustion is *fatal*: the budget cannot
    recover mid-run, so the executor aborts instead of backing off.
    """

    def __init__(
        self,
        max_requests: int | None = None,
        max_tokens: int | None = None,
    ):
        self.max_requests = max_requests
        self.max_tokens = max_tokens
        self.n_requests = 0
        self.n_tokens = 0
        self._lock = threading.Lock()

    def charge(self, requests: int = 1, tokens: int = 0) -> None:
        """Atomically consume budget, or raise without consuming any."""
        with self._lock:
            if (
                self.max_requests is not None
                and self.n_requests + requests > self.max_requests
            ):
                raise BudgetExhaustedError(
                    f"request budget of {self.max_requests} exhausted"
                )
            if (
                self.max_tokens is not None
                and self.n_tokens + tokens > self.max_tokens
            ):
                raise BudgetExhaustedError(
                    f"token budget of {self.max_tokens} exhausted"
                )
            self.n_requests += requests
            self.n_tokens += tokens

    @property
    def remaining_requests(self) -> int | None:
        if self.max_requests is None:
            return None
        with self._lock:
            return max(0, self.max_requests - self.n_requests)


class BatchExecutor:
    """Fan a list of prompts (or arbitrary items) across a thread pool.

    ``map(fn, items)`` preserves input order in its result list.  Retry
    behaviour comes from one :class:`~repro.api.retry.RetryPolicy`: each
    item gets up to ``1 + policy.max_retries`` attempts, and attempts
    failing with a retryable error sleep the policy's deterministic
    exponential backoff before retrying.  A final failure re-raises from
    ``map``.

    A :class:`~repro.api.retry.FatalError` short-circuits everything:
    the executor sets an abort flag (waking any worker mid-backoff),
    cancels futures that have not started, lets in-flight attempts
    drain, and re-raises the first fatal error — so an exhausted budget
    costs zero backoff sleeps instead of ``workers * Σ backoff``.

    An optional :class:`SharedBudget` is charged once per attempt (string
    items are also charged their prompt tokens); an optional
    :class:`UsageTracker` receives every :class:`RequestRecord`.

    The legacy ``max_retries``/``backoff_base``/``backoff_cap``/
    ``retry_on`` knobs are still accepted and folded into a policy;
    passing both a ``policy`` and loose knobs is an error.
    """

    def __init__(
        self,
        workers: int | None = None,
        max_retries: int | None = None,
        backoff_base: float | None = None,
        backoff_cap: float | None = None,
        retry_on: tuple[type[BaseException], ...] | None = None,
        budget: SharedBudget | None = None,
        usage: UsageTracker | None = None,
        policy: RetryPolicy | None = None,
    ):
        knobs = (max_retries, backoff_base, backoff_cap, retry_on)
        if policy is None:
            default = RetryPolicy()
            policy = RetryPolicy(
                max_retries=(
                    default.max_retries if max_retries is None else max_retries
                ),
                backoff_base=(
                    default.backoff_base if backoff_base is None else backoff_base
                ),
                backoff_cap=(
                    default.backoff_cap if backoff_cap is None else backoff_cap
                ),
                retry_on=(
                    default.retry_on if retry_on is None else tuple(retry_on)
                ),
            )
        elif any(knob is not None for knob in knobs):
            raise ValueError(
                "pass either a RetryPolicy or loose retry knobs, not both"
            )
        self.workers = resolve_workers(workers)
        self.policy = policy
        self.budget = budget
        self.usage = usage
        self.records: list[RequestRecord] = []
        self._records_lock = threading.Lock()
        self._abort = threading.Event()
        self._fatal: BaseException | None = None
        self._fatal_lock = threading.Lock()

    # Legacy views onto the policy (kept so existing call sites and tests
    # that introspect the executor keep working).
    @property
    def max_retries(self) -> int:
        return self.policy.max_retries

    @property
    def backoff_base(self) -> float:
        return self.policy.backoff_base

    @property
    def backoff_cap(self) -> float:
        return self.policy.backoff_cap

    @property
    def retry_on(self) -> tuple[type[BaseException], ...]:
        return tuple(self.policy.retry_on)

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt + 1``."""
        return self.policy.delay(attempt)

    @property
    def aborted(self) -> bool:
        """Whether the last ``map`` hit a fatal error and bailed out."""
        return self._abort.is_set()

    def _record(
        self, index: int, ok: bool, attempts: int, started: float,
        error: BaseException | None = None,
    ) -> None:
        record = RequestRecord(
            index=index,
            ok=ok,
            attempts=attempts,
            latency_s=time.perf_counter() - started,
            error=repr(error) if error is not None else None,
        )
        with self._records_lock:
            self.records.append(record)
        if self.usage is not None:
            self.usage.log_request(record)

    def _set_fatal(self, exc: BaseException) -> None:
        with self._fatal_lock:
            if self._fatal is None:
                self._fatal = exc
        self._abort.set()

    def _run_one(self, fn: Callable, item, index: int):
        started = time.perf_counter()
        attempts = 0
        while True:
            if self._abort.is_set():
                # Another worker hit a fatal error; don't start new
                # attempts.  Items that never attempted are not recorded
                # (they were cancelled, not failed).
                exc = self._fatal or FatalError("batch aborted")
                if attempts:
                    self._record(index, False, attempts, started, error=exc)
                raise exc
            attempts += 1
            try:
                if self.budget is not None:
                    tokens = count_tokens(item) if isinstance(item, str) else 0
                    self.budget.charge(requests=1, tokens=tokens)
                result = fn(item)
            except FatalError as exc:
                # Checked before retry_on: BudgetExhaustedError is a
                # RateLimitError, but backing off cannot refill a budget.
                self._set_fatal(exc)
                self._record(index, False, attempts, started, error=exc)
                raise
            except BaseException as exc:
                if not self.policy.should_retry(exc, attempts):
                    self._record(index, False, attempts, started, error=exc)
                    raise
                # Backoff that wakes immediately if the batch aborts —
                # the abort check at loop top then raises without a new
                # attempt.
                self._abort.wait(self.policy.delay(attempts - 1))
                continue
            self._record(index, True, attempts, started)
            return result

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item, returning results in input order."""
        items = list(items)
        if not items:
            return []
        # A fresh run: clear any abort state left by a previous map call.
        self._abort.clear()
        with self._fatal_lock:
            self._fatal = None
        if self.workers == 1:
            return [
                self._run_one(fn, item, index)
                for index, item in enumerate(items)
            ]
        results: list = [None] * len(items)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(self._run_one, fn, item, index)
                for index, item in enumerate(items)
            ]
            try:
                for index, future in enumerate(futures):
                    results[index] = future.result()
            except BaseException:
                # Fail fast: queued futures never start; in-flight ones
                # drain on pool shutdown (fatal aborts make that quick —
                # the abort event cuts every backoff sleep short).
                for future in futures:
                    future.cancel()
                raise
        return results


def complete_all(
    model,
    prompts: Sequence[str],
    workers: int | None = None,
    executor: BatchExecutor | None = None,
) -> list[str]:
    """Order-preserving batch completion of ``prompts`` against ``model``.

    ``model`` is anything with ``complete(prompt) -> str``.  With
    ``workers=None`` the process-wide default applies (1 unless the CLI's
    ``--workers`` raised it), so existing serial callers are unchanged.
    """
    if executor is None:
        executor = BatchExecutor(workers=workers)
    return executor.map(model.complete, prompts)
