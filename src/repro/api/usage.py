"""Token counting and usage accounting."""

from __future__ import annotations

import re
import threading
from collections import deque
from dataclasses import dataclass, field

# GPT-style BPE averages ~4 characters/token on English text; we count
# word-ish pieces directly, which lands in the same ballpark and is stable.
_PIECE_RE = re.compile(r"[A-Za-z]+|\d|[^\sA-Za-z\d]")

#: USD per 1K tokens, modeled on the published davinci pricing tiers.
PRICE_PER_1K_TOKENS = {
    "gpt3-175b": 0.02,
    "gpt3-6.7b": 0.002,
    "gpt3-1.3b": 0.0008,
}


def count_tokens(text: str) -> int:
    """Approximate BPE token count of ``text``.

    Words cost one token plus one extra per full 7 characters (long words
    split), digits and punctuation count individually — close enough for
    budget tracking.  This formula is the repo's cost model; the
    regression tests pin exact counts so it cannot drift silently.
    """
    if not text:
        return 0
    total = 0
    for piece in _PIECE_RE.findall(text):
        if piece.isalpha():
            total += 1 + len(piece) // 7
        else:
            total += 1
    return total


@dataclass
class Usage:
    """Cumulative usage for one model."""

    model: str
    n_requests: int = 0
    n_cache_hits: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def known_price(self) -> bool:
        """Whether the model has a published per-token rate."""
        return self.model in PRICE_PER_1K_TOKENS

    @property
    def cost_usd(self) -> float:
        """Simulated spend; 0.0 (never an invented rate) when unknown.

        An unrecognized model name used to be silently priced at the
        175B rate — a fabricated dollar figure.  Callers that need to
        distinguish "free" from "unpriced" check :attr:`known_price`
        (the run manifest surfaces it as an ``unknown_price`` flag).
        """
        rate = PRICE_PER_1K_TOKENS.get(self.model)
        if rate is None:
            return 0.0
        return self.total_tokens * rate / 1000.0


@dataclass
class UsageTracker:
    """Usage per model, in request order.

    Thread-safe: the batch layer shares one tracker across workers.  In
    addition to per-model token tallies, the tracker keeps a per-request
    log of latency/outcome records (see
    :class:`~repro.api.batch.RequestRecord`) pushed by the executor.

    ``max_request_log`` bounds the log: a long-lived process (the
    gateway) would otherwise leak one record per request forever.  When
    set, the log becomes a ring buffer over the most recent N records
    and ``dropped_records`` counts evictions; ``None`` (the default)
    keeps the unbounded one-shot behavior.
    """

    per_model: dict[str, Usage] = field(default_factory=dict)
    request_log: list = field(default_factory=list)
    max_request_log: int | None = None
    dropped_records: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_request_log is not None:
            if self.max_request_log < 1:
                raise ValueError("max_request_log must be >= 1")
            self.request_log = deque(self.request_log, maxlen=self.max_request_log)

    def record(
        self,
        model: str,
        prompt: str,
        completion: str,
        cached: bool,
        prompt_tokens: int | None = None,
    ) -> None:
        """Record one request.

        ``prompt_tokens`` overrides the prompt's counted size when the
        caller already knows it — the prefix-cache path passes the
        (cached prefix count) + (suffix count) sum so the shared prefix
        is tokenized once per run instead of once per request.  The
        override only matters for uncached requests; cache hits never
        accrue tokens.
        """
        with self._lock:
            usage = self.per_model.setdefault(model, Usage(model=model))
            usage.n_requests += 1
            if cached:
                usage.n_cache_hits += 1
                return
            if prompt_tokens is None:
                prompt_tokens = count_tokens(prompt)
            usage.prompt_tokens += prompt_tokens
            usage.completion_tokens += count_tokens(completion)

    def log_request(self, record) -> None:
        """Append one per-request latency/outcome record.

        With a capped log, appending at capacity evicts the oldest
        record and bumps :attr:`dropped_records`.
        """
        with self._lock:
            if (
                self.max_request_log is not None
                and len(self.request_log) >= self.max_request_log
            ):
                self.dropped_records += 1
            self.request_log.append(record)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Point-in-time copy of the per-model counters.

        Pair two snapshots with :func:`usage_delta` to attribute usage to
        one run of a shared, long-lived tracker (the run manifest does
        this around each evaluation).
        """
        with self._lock:
            return {
                model: {
                    "n_requests": usage.n_requests,
                    "n_cache_hits": usage.n_cache_hits,
                    "prompt_tokens": usage.prompt_tokens,
                    "completion_tokens": usage.completion_tokens,
                }
                for model, usage in self.per_model.items()
            }

    def latency_summary(self) -> dict[str, float]:
        """Aggregate view of the request log (counts and seconds).

        With a capped log the summary covers the retained window only;
        ``dropped_records`` says how many older records fell out of it.
        """
        with self._lock:
            log = list(self.request_log)
            dropped = self.dropped_records
        if not log:
            return {
                "n_requests": 0, "n_failures": 0, "n_retries": 0,
                "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0,
                "dropped_records": dropped,
            }
        latencies = [record.latency_s for record in log]
        return {
            "n_requests": len(log),
            "n_failures": sum(1 for record in log if not record.ok),
            "n_retries": sum(record.attempts - 1 for record in log),
            "total_s": sum(latencies),
            "mean_s": sum(latencies) / len(latencies),
            "max_s": max(latencies),
            "dropped_records": dropped,
        }

    @property
    def total_cost_usd(self) -> float:
        return sum(usage.cost_usd for usage in self.per_model.values())

    def summary(self) -> str:
        lines = []
        for model, usage in sorted(self.per_model.items()):
            price = f"${usage.cost_usd:.4f}"
            if not usage.known_price:
                price += " (price unknown)"
            lines.append(
                f"{model}: {usage.n_requests} requests "
                f"({usage.n_cache_hits} cached), "
                f"{usage.total_tokens} tokens, {price}"
            )
        return "\n".join(lines) if lines else "no usage recorded"


def usage_delta(
    before: dict[str, dict[str, int]], after: dict[str, dict[str, int]]
) -> dict[str, Usage]:
    """Per-model :class:`Usage` accrued between two tracker snapshots."""
    delta: dict[str, Usage] = {}
    for model, counts in after.items():
        base = before.get(model, {})
        usage = Usage(
            model=model,
            n_requests=counts["n_requests"] - base.get("n_requests", 0),
            n_cache_hits=counts["n_cache_hits"] - base.get("n_cache_hits", 0),
            prompt_tokens=counts["prompt_tokens"] - base.get("prompt_tokens", 0),
            completion_tokens=(
                counts["completion_tokens"] - base.get("completion_tokens", 0)
            ),
        )
        if usage.n_requests or usage.total_tokens:
            delta[model] = usage
    return delta
