"""Service-level resilience: deadlines, hedging, admission, degradation.

PRs 3–4 made a *run* resilient — retries with backoff, fail-fast on
fatal errors, per-example quarantine, checkpointed resume.  What they
did not provide is the layer that keeps a run inside a latency/cost SLO
when the backend misbehaves.  This module adds the four service-level
mechanisms every production LLM harness grows, in the order they are
consulted (see DESIGN §4b-iv):

1. **Deadlines** (:class:`Deadline`) — a wall-clock budget propagated
   from ``run_task`` through :class:`~repro.api.batch.BatchExecutor`
   into :class:`~repro.api.client.CompletionClient`.  Backoff sleeps are
   clamped to the remaining budget, and expiry raises a typed
   :class:`~repro.api.retry.DeadlineExceededError` — fatal, so the
   batch fails fast instead of grinding past its SLO.
2. **Hedged requests** (:class:`HedgePolicy`) — after a deterministic
   delay, a straggling completion gets a backup attempt and the first
   success wins.  Hedge attempts are deduplicated: budgets, usage, and
   ``backend_calls`` are charged once per logical request, and at
   temperature 0 both attempts produce byte-identical text, so results
   never depend on which one wins.
3. **Admission control** (:class:`AdmissionController` +
   :class:`AIMDLimiter`) — work is queued (AIMD concurrency window) or
   shed (typed :class:`~repro.api.retry.Shed`) *before* it burns
   budget, by priority class, when the circuit breaker is degraded or
   the shared budget nears exhaustion.  Shed decisions are planned once
   per batch in input order — a pure function of the pre-batch state —
   so they are byte-identical at any worker count.
4. **Graceful degradation** (:class:`FallbackChain`) — the paper's own
   quality/cost ladder (Figure 4: 175B → 6.7B → 1.3B) as a fallback
   chain: an example that would otherwise be quarantined or shed is
   served by the next tier down, and the run reports ``coverage == 1.0``
   with an explicit ``served_by_tier`` breakdown instead of a hole.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections.abc import Callable, Sequence

from repro.api.retry import DeadlineExceededError

__all__ = [
    "AIMDLimiter",
    "AdmissionController",
    "BackendHealthTracker",
    "CascadePolicy",
    "Deadline",
    "FailoverPolicy",
    "FallbackChain",
    "HedgePolicy",
    "PRIORITIES",
    "PRIORITY_HEADROOM",
]


class Deadline:
    """A wall-clock budget for one run, with an injectable clock.

    Created when the run starts; :meth:`remaining` counts down from
    ``budget_s``.  The executor calls :meth:`check` before every attempt
    (expiry is fatal — see
    :class:`~repro.api.retry.DeadlineExceededError`) and :meth:`clamp`
    around every backoff sleep, so no retry can sleep past the budget.
    The clock is injected (default ``time.monotonic``) for the same
    reason the circuit breaker's is: expiry transitions must be testable
    without real sleeps.
    """

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_s <= 0:
            raise ValueError(f"budget_s must be > 0, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._started = clock()

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self.budget_s - self.elapsed_s)

    @property
    def expired(self) -> bool:
        return self.elapsed_s >= self.budget_s

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self.budget_s:.3f}s exceeded "
                f"({self.elapsed_s:.3f}s elapsed)"
            )

    def clamp(self, delay_s: float) -> float:
        """``delay_s`` cut down so a sleep cannot outlive the budget."""
        return min(delay_s, self.remaining())

    def describe(self) -> dict:
        """JSON-ready SLO block for run manifests."""
        return {
            "budget_s": self.budget_s,
            "elapsed_s": self.elapsed_s,
            "expired": self.expired,
        }


class HedgePolicy:
    """When and how to fire a backup completion for a straggler.

    ``delay_for(prompt)`` is the wait before hedging that prompt: the
    base ``delay_s`` (pick it at a high percentile of healthy latency —
    :meth:`from_latencies` calibrates one from an observed sample)
    spread over ``[delay_s, (1 + spread) * delay_s]`` by a BLAKE2 draw
    of ``(seed, prompt)`` — a pure function, exactly like
    :class:`~repro.api.faults.FaultPlan`'s schedule, so hedge timing
    never synchronizes across workers and never depends on call order.

    The policy only decides *when*; the race itself lives in
    :meth:`repro.api.client.CompletionClient.complete`, under the cache
    and the single-flight lock, where it can guarantee the dedup
    invariants: one budget charge and one usage record per logical
    request no matter how many hedges fire, and (at temperature 0) a
    byte-identical completion whichever attempt wins.  Counters here are
    observability only — they never influence behavior.
    """

    def __init__(
        self,
        delay_s: float = 0.005,
        spread: float = 0.25,
        seed: int = 0,
    ):
        if delay_s <= 0:
            raise ValueError(f"delay_s must be > 0, got {delay_s}")
        if spread < 0:
            raise ValueError(f"spread must be >= 0, got {spread}")
        self.delay_s = float(delay_s)
        self.spread = float(spread)
        self.seed = seed
        self._lock = threading.Lock()
        self.n_fired = 0
        self.n_wins = 0

    @classmethod
    def from_latencies(
        cls,
        latencies: Sequence[float],
        percentile: float = 0.95,
        seed: int = 0,
    ) -> HedgePolicy:
        """Calibrate the hedge delay from an observed latency sample.

        The classic tail-at-scale recipe: hedge requests that outlive
        the ``percentile`` of healthy latency, so at most ``1 -
        percentile`` of requests ever pay for a backup.
        """
        if not latencies:
            raise ValueError("cannot calibrate from an empty sample")
        if not 0.0 < percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got {percentile}")
        ordered = sorted(latencies)
        rank = min(len(ordered) - 1, int(percentile * len(ordered)))
        return cls(delay_s=max(ordered[rank], 1e-4), seed=seed)

    def delay_for(self, prompt: str) -> float:
        """Deterministic per-prompt hedge delay (pure function)."""
        if self.spread == 0.0:
            return self.delay_s
        payload = f"{self.seed}\x1fhedge\x1f{prompt}".encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / 2.0**64
        return self.delay_s * (1.0 + self.spread * draw)

    def record_fired(self) -> None:
        with self._lock:
            self.n_fired += 1

    def record_win(self) -> None:
        with self._lock:
            self.n_wins += 1

    def stats(self) -> dict:
        """JSON-ready hedging block for run manifests."""
        with self._lock:
            return {
                "delay_s": self.delay_s,
                "fired": self.n_fired,
                "wins": self.n_wins,
            }


#: Priority classes, most to least important.  Interactive work (a
#: human waiting on one verdict) is never shed for budget headroom;
#: bench sweeps keep a small reserve; backfill yields earliest.
PRIORITIES = ("interactive", "bench", "backfill")

#: Fraction of the *total* budget kept in reserve for higher-priority
#: work: a class is shed once remaining budget falls below its headroom.
PRIORITY_HEADROOM = {
    "interactive": 0.0,
    "bench": 0.10,
    "backfill": 0.25,
}


class AIMDLimiter:
    """Additive-increase / multiplicative-decrease concurrency window.

    The classic TCP congestion-control shape applied to request
    concurrency: every success grows the in-flight window by
    ``increase / window`` (one full unit per window of successes), every
    transient failure halves it.  ``acquire`` blocks while the window is
    full — that blocking *is* the admission queue — so when the backend
    degrades, pressure drops before retries pile up, and when it
    recovers, the window reopens gradually.

    The limiter shapes pacing only: it cannot change which requests run
    or what they return, so determinism of results is untouched.
    """

    def __init__(
        self,
        initial: float = 8.0,
        min_limit: float = 1.0,
        max_limit: float = 64.0,
        increase: float = 1.0,
        decrease: float = 0.5,
    ):
        if not min_limit <= initial <= max_limit:
            raise ValueError(
                f"need min_limit <= initial <= max_limit, got "
                f"{min_limit}/{initial}/{max_limit}"
            )
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.decrease = decrease
        self._limit = float(initial)
        self._in_flight = 0
        self._cond = threading.Condition()
        self.n_waits = 0

    @property
    def limit(self) -> float:
        with self._cond:
            return self._limit

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    def acquire(self) -> None:
        """Take one concurrency slot, blocking while the window is full."""
        with self._cond:
            if self._in_flight >= int(self._limit):
                self.n_waits += 1
            while self._in_flight >= int(self._limit):
                self._cond.wait(0.01)
            self._in_flight += 1

    def release(self, ok: bool) -> None:
        """Return a slot; grow the window on success, halve it on failure."""
        with self._cond:
            self._in_flight = max(0, self._in_flight - 1)
            if ok:
                self._limit = min(
                    self.max_limit, self._limit + self.increase / self._limit
                )
            else:
                self._limit = max(self.min_limit, self._limit * self.decrease)
            self._cond.notify_all()

    def stats(self) -> dict:
        with self._cond:
            return {
                "limit": self._limit,
                "in_flight": self._in_flight,
                "waits": self.n_waits,
            }


class AdmissionController:
    """Decide, before work burns budget, what runs and what is shed.

    Two cooperating halves:

    * :meth:`plan` — called once per batch, *before* the fan-out.  It
      snapshots the circuit breaker and shared budget and returns one
      ``"admit"``/``"shed"`` verdict per item, in input order.  Because
      the decision precedes any concurrency, the shed set is a pure
      function of the pre-batch state: byte-identical at workers=1 and
      workers=8.  A shed item costs zero backend calls, zero retries,
      zero backoff — it surfaces as a typed
      :class:`~repro.api.retry.Shed` failure for the quarantine/fallback
      machinery above.
    * :meth:`acquire` / :meth:`release` — the per-attempt AIMD gate
      (see :class:`AIMDLimiter`); this is the *queueing* half, shaping
      pacing without affecting outcomes.

    Shedding rules, in order: a breaker that is currently open sheds
    every non-interactive item (interactive work rides the breaker's
    own single-probe recovery instead); a shared budget sheds the tail
    of the batch that cannot be served while keeping the priority
    class's headroom in reserve (tail, not a sample — so the surviving
    prefix is exactly the prefix a smaller budget-free run would have
    produced).
    """

    def __init__(
        self,
        budget=None,
        breaker=None,
        limiter: AIMDLimiter | None = None,
        headroom: dict | None = None,
    ):
        self.budget = budget
        self.breaker = breaker
        self.limiter = limiter
        self.headroom = dict(PRIORITY_HEADROOM if headroom is None else headroom)
        self._lock = threading.Lock()
        self.n_admitted = 0
        self.n_shed = 0

    def plan(self, n_items: int, priority: str = "bench") -> list[str]:
        """One ``"admit"``/``"shed"`` verdict per item, in input order."""
        if priority not in self.headroom:
            known = ", ".join(sorted(self.headroom))
            raise ValueError(f"unknown priority {priority!r}; known: {known}")
        admitted = n_items
        if (
            self.breaker is not None
            and self.breaker.state == "open"
            and priority != "interactive"
        ):
            admitted = 0
        elif self.budget is not None:
            remaining = self.budget.remaining_requests
            if remaining is not None:
                reserve = int(self.budget.max_requests * self.headroom[priority])
                admitted = min(n_items, max(0, remaining - reserve))
        with self._lock:
            self.n_admitted += admitted
            self.n_shed += n_items - admitted
        return ["admit"] * admitted + ["shed"] * (n_items - admitted)

    def acquire(self) -> None:
        if self.limiter is not None:
            self.limiter.acquire()

    def release(self, ok: bool) -> None:
        if self.limiter is not None:
            self.limiter.release(ok)

    def stats(self) -> dict:
        """JSON-ready shedding block for run manifests."""
        with self._lock:
            block = {"admitted": self.n_admitted, "shed": self.n_shed}
        if self.limiter is not None:
            block["limiter"] = self.limiter.stats()
        return block


class FallbackChain:
    """The graceful-degradation ladder: ordered model tiers.

    The paper's Figure 4 frontier *is* a degradation ladder — 175B for
    quality, 6.7B/1.3B for cost — and this class makes it operational:
    an example that would otherwise be quarantined (retries exhausted,
    garbage response) or shed (admission control) is re-served by the
    next tier down, so a degraded run reports ``coverage == 1.0`` with
    an explicit per-tier breakdown instead of silently missing rows.

    Tiers are model names (resolved lazily through
    :class:`~repro.api.client.CompletionClient`) or ready model objects.
    Tier clients deliberately do **not** inherit the primary run's
    :class:`~repro.api.faults.FaultPlan`: a fallback tier models a
    *different* deployment, which is the whole reason degrading to it
    helps — the fault schedule keyed on the same prompt would otherwise
    re-inject the identical outage one tier down.  They do share the
    primary client's usage tracker (per-tier cost lands in the manifest)
    and the process-default prompt cache.
    """

    def __init__(self, tiers: Sequence):
        tiers = list(tiers)
        if not tiers:
            raise ValueError("a FallbackChain needs at least one tier")
        self.tiers = tiers
        self._clients: dict[int, object] = {}
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: str) -> FallbackChain:
        """``"gpt3-6.7b,gpt3-1.3b"`` (the CLI's ``--fallback``) → chain."""
        tiers = [part.strip() for part in text.split(",") if part.strip()]
        return cls(tiers)

    def tier_name(self, index: int) -> str:
        tier = self.tiers[index]
        if isinstance(tier, str):
            return tier
        return getattr(tier, "name", type(tier).__name__)

    def resolve(self, index: int, usage=None):
        """The tier's ready-to-call model (clients built lazily, cached)."""
        with self._lock:
            client = self._clients.get(index)
        if client is not None:
            return client
        tier = self.tiers[index]
        if isinstance(tier, str):
            from repro.api.cache import get_default_cache
            from repro.api.client import CompletionClient

            tier = CompletionClient(
                tier, cache=get_default_cache(), usage=usage
            )
        with self._lock:
            self._clients.setdefault(index, tier)
            return self._clients[index]

    def describe(self) -> list[str]:
        return [self.tier_name(index) for index in range(len(self.tiers))]


class _BackendHealth:
    """Mutable per-backend record inside a :class:`BackendHealthTracker`."""

    __slots__ = (
        "window", "consecutive_failures", "state", "opened_at",
        "n_ok", "n_failed",
    )

    def __init__(self, window_size: int):
        from collections import deque

        self.window = deque(maxlen=window_size)  # (ok, latency_s) pairs
        self.consecutive_failures = 0
        self.state = "closed"
        self.opened_at = 0.0
        self.n_ok = 0
        self.n_failed = 0


class BackendHealthTracker:
    """Rolling per-*backend* health with its own circuit state.

    Distinct from the per-*run* :class:`~repro.api.batch.CircuitBreaker`:
    that breaker answers "is this run's endpoint usable right now", this
    tracker answers "which member of an equivalence group should serve
    the next request".  Per backend it keeps a rolling window of
    (outcome, latency) observations plus a closed → open → half-open
    circuit: ``failure_threshold`` *consecutive* failures open the
    circuit, ``cooldown_s`` later a single probe is allowed through, and
    the probe's outcome closes or re-opens it.  The clock is injectable
    so transitions are testable without real sleeps.

    Thread-safe; used by :class:`FailoverPolicy` to order candidates and
    snapshotted into the manifest's ``failover.health`` block.
    """

    def __init__(
        self,
        window_size: int = 32,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.window_size = int(window_size)
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._backends: dict[str, _BackendHealth] = {}

    def _entry(self, name: str) -> _BackendHealth:
        entry = self._backends.get(name)
        if entry is None:
            entry = _BackendHealth(self.window_size)
            self._backends[name] = entry
        return entry

    def record(self, name: str, ok: bool, latency_s: float = 0.0) -> None:
        """Record one request outcome against backend ``name``."""
        with self._lock:
            entry = self._entry(name)
            entry.window.append((bool(ok), float(latency_s)))
            if ok:
                entry.n_ok += 1
                entry.consecutive_failures = 0
                entry.state = "closed"
            else:
                entry.n_failed += 1
                entry.consecutive_failures += 1
                if (
                    entry.state == "half_open"
                    or entry.consecutive_failures >= self.failure_threshold
                ):
                    entry.state = "open"
                    entry.opened_at = self._clock()

    def allow(self, name: str) -> bool:
        """Whether routing to ``name`` is currently permitted.

        Closed circuits always pass.  An open circuit refuses until
        ``cooldown_s`` has elapsed, then moves to half-open; a half-open
        circuit admits probes whose recorded outcome closes or re-opens
        it.  Deliberately latch-free: consulting ``allow`` never
        consumes anything, so a candidate ordering that checks a member
        it ends up not serving cannot wedge that member's circuit.
        """
        with self._lock:
            entry = self._entry(name)
            if entry.state == "closed":
                return True
            if entry.state == "open":
                if self._clock() - entry.opened_at >= self.cooldown_s:
                    entry.state = "half_open"
                    return True
                return False
            return True  # half_open

    def state(self, name: str) -> str:
        with self._lock:
            return self._entry(name).state

    def error_rate(self, name: str) -> float:
        """Failure fraction over the rolling window (0.0 when empty)."""
        with self._lock:
            window = self._entry(name).window
            if not window:
                return 0.0
            return sum(1 for ok, _lat in window if not ok) / len(window)

    def snapshot(self) -> dict:
        """JSON-ready per-backend health for the manifest."""
        with self._lock:
            out: dict[str, dict] = {}
            for name in sorted(self._backends):
                entry = self._backends[name]
                window = list(entry.window)
                latencies = sorted(lat for _ok, lat in window)
                failures = sum(1 for ok, _lat in window if not ok)
                out[name] = {
                    "state": entry.state,
                    "ok": entry.n_ok,
                    "failed": entry.n_failed,
                    "consecutive_failures": entry.consecutive_failures,
                    "window_error_rate": (
                        failures / len(window) if window else 0.0
                    ),
                    "p50_latency_s": (
                        latencies[len(latencies) // 2] if latencies else 0.0
                    ),
                }
            return out


class FailoverPolicy:
    """Order an equivalence group's members for one serve attempt.

    ``members`` is the registry-declared group, primary first, simulated
    shim (or whatever the operator trusts as always-up) last.  The
    routing decision is deterministic given the health state: candidates
    are the members in declared order whose per-backend circuit admits
    them (:meth:`BackendHealthTracker.allow`), followed — as a last
    resort, never skipped — by the refused members in declared order, so
    a group where every circuit is open still serves rather than failing
    without trying.  No randomness, no worker-count dependence: at
    temperature 0 every member of an equivalence group returns
    byte-identical text, so *predictions* are independent of which
    member happened to be healthy.
    """

    def __init__(
        self,
        members: Sequence[str],
        health: BackendHealthTracker | None = None,
    ):
        members = [str(member) for member in members]
        if not members:
            raise ValueError("a FailoverPolicy needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate failover members in {members}")
        self.members = tuple(members)
        self.health = health if health is not None else BackendHealthTracker()

    @classmethod
    def parse(cls, text: str) -> FailoverPolicy:
        """``"gpt3-175b,gpt3-6.7b"`` (the CLI's ``--failover``) → policy."""
        members = [part.strip() for part in text.split(",") if part.strip()]
        return cls(members)

    def candidates(self) -> list[str]:
        """Members to try, in order; always covers the whole group."""
        admitted = []
        refused = []
        for member in self.members:
            (admitted if self.health.allow(member) else refused).append(
                member
            )
        return admitted + refused

    def record(self, member: str, ok: bool, latency_s: float = 0.0) -> None:
        self.health.record(member, ok, latency_s)

    def describe(self) -> list[str]:
        return list(self.members)


class CascadePolicy:
    """The fallback ladder inverted: cheapest-first, confidence-routed.

    :class:`FallbackChain` degrades *downward* after failures; a cascade
    runs the economics the other way.  Every example is served by the
    cheapest tier first, and only predictions whose self-reported
    confidence (see :meth:`~repro.fm.engine.SimulatedFoundationModel.
    complete_verbose`) falls below ``threshold`` escalate to the next
    tier up — the run's primary model is always the final authority.
    That turns the paper's Figure 4 cost/quality frontier into a runtime
    policy: most examples are easy enough for a small model, and only
    the uncertain tail pays the 175B rate (Peeters & Bizer's
    cheap-model-first observation, PAPERS.md).

    ``threshold=None`` means *calibrate per task*: the engine picks one
    threshold per cheap tier on the validation split — the smallest
    whose accepted predictions never disagree with the primary model's
    own, pruning tiers that flip even at full confidence — and then
    requires the composed cascade's validation metric (scored against
    ``make_validation_scorer``'s reference) to stay within
    ``max_quality_loss`` of the primary's.  Calibration reads
    ``calibration_examples`` validation examples (``None``, the default,
    means the whole validation split: a cheap tier may end up serving
    most of the traffic, so the zero-disagreement certificate wants
    every held-out example it can get, not manual curation's small
    sample).

    Determinism: escalation is decided per example as a pure function of
    (confidence, threshold, prompt) — the optional ``spread`` jitters
    the effective threshold by a BLAKE2 draw of ``(seed, prompt)``,
    exactly the :class:`HedgePolicy`/FaultPlan idiom — and the client
    serializes confidence-carrying calls, so cascade results are
    byte-identical at any worker count through both the thread and async
    executors.

    Tier clients (resolved lazily, like :class:`FallbackChain`) share
    the primary client's usage tracker and prompt cache but deliberately
    not its :class:`~repro.api.faults.FaultPlan` — each tier models a
    separate deployment.
    """

    def __init__(
        self,
        tiers: Sequence = ("gpt3-1.3b", "gpt3-6.7b"),
        threshold: float | None = None,
        spread: float = 0.0,
        seed: int = 0,
        max_quality_loss: float = 0.01,
        calibration_examples: int | None = None,
    ):
        tiers = tuple(tiers)
        if not tiers:
            raise ValueError("a CascadePolicy needs at least one cheap tier")
        if threshold is not None and not 0.0 <= threshold <= 2.0:
            raise ValueError(
                f"threshold must be in [0, 2] (confidence is in [0, 1]), "
                f"got {threshold}"
            )
        if spread < 0:
            raise ValueError(f"spread must be >= 0, got {spread}")
        if max_quality_loss < 0:
            raise ValueError(
                f"max_quality_loss must be >= 0, got {max_quality_loss}"
            )
        if calibration_examples is not None and calibration_examples < 1:
            raise ValueError(
                f"calibration_examples must be >= 1 or None (the whole "
                f"validation split), got {calibration_examples}"
            )
        self.tiers = tiers
        self.threshold = threshold
        self.spread = float(spread)
        self.seed = seed
        self.max_quality_loss = float(max_quality_loss)
        self.calibration_examples = calibration_examples
        self._clients: dict[int, object] = {}
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: str, threshold: float | None = None) -> CascadePolicy:
        """``"gpt3-1.3b,gpt3-6.7b"`` (the CLI's ``--cascade``) → policy."""
        tiers = [part.strip() for part in text.split(",") if part.strip()]
        return cls(tiers, threshold=threshold)

    def tier_name(self, index: int) -> str:
        tier = self.tiers[index]
        if isinstance(tier, str):
            return tier
        return getattr(tier, "name", type(tier).__name__)

    def resolve(self, index: int, usage=None, cache=None):
        """The tier's ready-to-call client (built lazily, cached)."""
        with self._lock:
            client = self._clients.get(index)
        if client is not None:
            return client
        tier = self.tiers[index]
        if isinstance(tier, str):
            from repro.api.cache import get_default_cache
            from repro.api.client import CompletionClient

            tier = CompletionClient(
                tier,
                cache=cache if cache is not None else get_default_cache(),
                usage=usage,
            )
        with self._lock:
            self._clients.setdefault(index, tier)
            return self._clients[index]

    def effective_threshold(self, prompt: str, threshold: float) -> float:
        """Deterministic per-example threshold (pure function of prompt)."""
        if self.spread == 0.0:
            return threshold
        payload = f"{self.seed}\x1fcascade\x1f{prompt}".encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / 2.0**64
        return threshold + self.spread * (draw - 0.5)

    def should_escalate(
        self, prompt: str, confidence: float, threshold: float | None = None
    ) -> bool:
        """Whether a prediction at ``confidence`` moves up a tier."""
        if threshold is None:
            threshold = self.threshold
        if threshold is None:
            raise ValueError(
                "threshold unresolved: pass one or calibrate the policy"
            )
        return confidence < self.effective_threshold(prompt, threshold)

    def describe(self) -> list[str]:
        return [self.tier_name(index) for index in range(len(self.tiers))]
