"""Asyncio continuous batching: work joins the in-flight stream.

The PR 1 :class:`~repro.api.batch.BatchExecutor` is a fan-out *barrier*:
each ``map`` call spins up a thread pool, pays per-request thread and
lock overhead, and later calls wait at the boundary even when capacity
is free.  :class:`AsyncBatchExecutor` replaces the barrier with a
process-wide serving event loop plus one per-executor semaphore: every
item becomes a task on that loop, capacity is whatever the semaphore
says, and a second ``map`` (from any thread — the serving-gateway shape)
interleaves its items with the first call's stragglers instead of
queueing behind them.  That is continuous batching in the vLLM sense,
applied at the request orchestration layer.

The facade guarantee: this class takes the same constructor arguments
and exposes the same ``map``/``records``/``aborted`` API as
``BatchExecutor``, and its per-item decision order is a line-for-line
twin of ``BatchExecutor._run_one`` — abort check, circuit breaker,
deadline, budget charge, admission, the call itself, retry
classification, decorrelated per-item backoff.  Every PR 1–5 knob
(retry policy, breaker, shared budget, fault plans via the client,
deadlines, hedging, admission control, checkpoints) therefore behaves
identically through either path, and predictions, quarantine sets, and
manifests are byte-identical at any concurrency.

Blocking callables: ``fn`` is ordinarily a cache-backed client call and
runs inline on the loop (cheap, deterministic, GIL-bound anyway).  When
an admission controller is attached — whose AIMD gate *blocks* until
window capacity frees — attempts are offloaded to the default thread
pool so the loop can keep releasing capacity; ``offload=True`` forces
the same for genuinely blocking backends.
"""

from __future__ import annotations

import asyncio
import atexit
import threading
import time
from collections.abc import Callable, Iterable

from repro.api.batch import BatchExecutor, BatchFailure
from repro.api.retry import (
    CircuitOpenError,
    FatalError,
    Shed,
    retry_after_floor,
)

__all__ = [
    "AsyncBatchExecutor",
    "get_serving_loop",
    "shutdown_serving_loop",
]

# The process-wide serving loop: one daemon thread running one asyncio
# loop, started on first use.  Shared on purpose — a single loop is what
# lets independent map() calls (and, later, gateway requests) merge into
# one in-flight stream.
_LOOP: asyncio.AbstractEventLoop | None = None
_LOOP_THREAD: threading.Thread | None = None
_LOOP_LOCK = threading.Lock()


def get_serving_loop() -> asyncio.AbstractEventLoop:
    """The process-wide serving event loop, starting it if needed."""
    global _LOOP, _LOOP_THREAD
    with _LOOP_LOCK:
        if _LOOP is not None and not _LOOP.is_closed():
            return _LOOP
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=loop.run_forever, name="repro-serving-loop", daemon=True
        )
        thread.start()
        _LOOP = loop
        _LOOP_THREAD = thread
        return loop


def shutdown_serving_loop() -> None:
    """Stop and close the serving loop.

    Safe to call at any time, from any thread, any number of times —
    including concurrently with :func:`get_serving_loop` (the globals
    swap atomically under the lock, so a racing getter either reuses
    the loop before we detach it or starts a fresh one).  Called
    explicitly by ``repro serve`` on exit and registered via ``atexit``
    so one-shot CLI runs stop the daemon thread cleanly too.
    """
    global _LOOP, _LOOP_THREAD
    with _LOOP_LOCK:
        loop, thread = _LOOP, _LOOP_THREAD
        _LOOP = _LOOP_THREAD = None
    if loop is None or loop.is_closed():
        return
    try:
        loop.call_soon_threadsafe(loop.stop)
    except RuntimeError:
        # Lost a race with another shutdown that already closed it.
        return
    if thread is not None and thread is not threading.current_thread():
        thread.join(timeout=5.0)
    if thread is None or not thread.is_alive():
        loop.close()


# One-shot runs never call shutdown themselves; without this the daemon
# loop thread dies mid-instruction at interpreter teardown and can spray
# "Exception ignored in..." noise on 3.12.
atexit.register(shutdown_serving_loop)


#: Slot marker for items skipped after a sibling's terminal failure in
#: ``on_error="raise"`` mode — the async analog of a cancelled future.
_CANCELLED = object()


class _AsyncMapRun:
    """Abort/fail state scoped to one ``amap`` call (loop-confined)."""

    __slots__ = ("abort", "fatal", "stop")

    def __init__(self):
        self.abort = asyncio.Event()
        self.fatal: BaseException | None = None
        # raise-mode flag: a sibling failed terminally, so items that
        # have not started yet skip (the thread pool's future.cancel()).
        self.stop = False

    def set_fatal(self, exc: BaseException) -> None:
        if self.fatal is None:
            self.fatal = exc
        self.abort.set()


class AsyncBatchExecutor(BatchExecutor):
    """Continuous-batching twin of :class:`~repro.api.batch.BatchExecutor`.

    Constructor, ``map``, ``records``, and ``aborted`` are inherited
    API-for-API; ``workers`` becomes the semaphore width on the shared
    serving loop instead of a thread count.  ``map`` bridges from sync
    callers; async callers (the gateway) await :meth:`amap` directly on
    the serving loop via :func:`asyncio.run_coroutine_threadsafe`.

    ``offload=None`` (auto) runs attempts inline except when an
    admission controller is attached; ``True`` always offloads to the
    default thread pool, ``False`` never does (and is rejected together
    with admission — a blocking AIMD gate inline on the loop would
    deadlock against the releases it is waiting for).
    """

    def __init__(self, *args, offload: bool | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        if offload is False and self.admission is not None:
            raise ValueError(
                "offload=False with an admission controller would block "
                "the serving loop on the AIMD gate"
            )
        self.offload = offload
        self._semaphore: asyncio.Semaphore | None = None

    def _must_offload(self) -> bool:
        if self.offload is not None:
            return self.offload
        return self.admission is not None

    def _sem(self) -> asyncio.Semaphore:
        # Created lazily on the loop so the executor can be constructed
        # anywhere; one semaphore per executor is the shared-capacity
        # contract that makes later map() calls join the in-flight batch.
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.workers)
        return self._semaphore

    async def _attempt(self, fn: Callable, item, loop) -> object:
        """One guarded attempt: deadline, budget, admission, the call.

        Mirrors the ``try`` body of ``BatchExecutor._run_one`` exactly;
        admission release bookkeeping stays inside so the offloaded and
        inline paths share one code path.
        """

        def attempt_once():
            if self.deadline is not None:
                self.deadline.check()
            if self.budget is not None:
                self.budget.charge(requests=1, tokens=self._tokens_for(item))
            acquired = False
            try:
                if self.admission is not None:
                    self.admission.acquire()
                    acquired = True
                result = fn(item)
            except FatalError:
                if acquired:
                    self.admission.release(ok=False)
                raise
            except BaseException as exc:
                if acquired:
                    self.admission.release(ok=not self.policy.is_retryable(exc))
                raise
            if acquired:
                self.admission.release(ok=True)
            return result

        if self._must_offload():
            return await loop.run_in_executor(None, attempt_once)
        return attempt_once()

    async def _run_one_async(
        self, fn: Callable, item, index: int, run: _AsyncMapRun,
        on_error: str, verdict: str = "admit",
    ):
        started = time.perf_counter()
        attempts = 0
        if verdict == "shed":
            # Planned before the fan-out, identically to the thread pool:
            # refused outright, zero backend calls.
            exc = Shed(
                f"admission control shed item {index} "
                f"(priority {self.priority!r})"
            )
            self._record(index, False, 0, started, error=exc)
            if on_error == "return":
                return BatchFailure(index, exc, 0)
            raise exc
        loop = asyncio.get_running_loop()
        while True:
            if run.abort.is_set():
                exc = run.fatal or FatalError("batch aborted")
                if attempts:
                    self._record(index, False, attempts, started, error=exc)
                raise exc
            if on_error == "raise" and run.stop and not attempts:
                # A sibling already failed terminally and map() is going
                # to raise; never-started items skip, like cancelled
                # futures (no record — cancelled, not failed).
                return _CANCELLED
            if self.breaker is not None and not self.breaker.allow():
                attempts += 1
                exc = CircuitOpenError(
                    "circuit breaker open after "
                    f"{self.breaker.failure_threshold} consecutive "
                    "transient failures"
                )
                self._record(index, False, attempts, started, error=exc)
                if on_error == "return":
                    return BatchFailure(index, exc, attempts)
                run.stop = True
                raise exc
            attempts += 1
            try:
                result = await self._attempt(fn, item, loop)
            except FatalError as exc:
                run.set_fatal(exc)
                self._record(index, False, attempts, started, error=exc)
                raise
            except BaseException as exc:
                if self.breaker is not None and self.policy.is_retryable(exc):
                    self.breaker.record_failure()
                if not self.policy.should_retry(exc, attempts):
                    self._record(index, False, attempts, started, error=exc)
                    if on_error == "return":
                        return BatchFailure(index, exc, attempts)
                    run.stop = True
                    raise
                # Same decorrelated per-item backoff as the thread pool,
                # awaited instead of slept — and cut short by a fatal
                # abort, exactly like Event.wait(delay).
                delay = self.policy.delay(attempts - 1, key=str(index))
                # Same Retry-After floor as the thread pool.
                delay = max(delay, retry_after_floor(exc))
                if self.deadline is not None:
                    delay = self.deadline.clamp(delay)
                try:
                    await asyncio.wait_for(run.abort.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            self._record(index, True, attempts, started)
            return result

    async def _run_item(
        self, fn: Callable, item, index: int, run: _AsyncMapRun,
        on_error: str, verdict: str,
    ):
        async with self._sem():
            return await self._run_one_async(
                fn, item, index, run, on_error, verdict
            )

    async def amap(
        self, fn: Callable, items: Iterable, on_error: str = "raise"
    ) -> list:
        """Async ``map``: one task per item on the current (serving) loop.

        Semantics match :meth:`BatchExecutor.map` exactly — input-order
        results, scatter mode via ``on_error="return"``, fatal errors
        aborting the whole call — with the semaphore, not a pool
        boundary, as the only capacity limit.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f'on_error must be "raise" or "return", got {on_error!r}'
            )
        items = list(items)
        run = _AsyncMapRun()
        self._last_run = run
        if not items:
            return []
        if self.admission is not None:
            # Drawn here, once, in input order — the same pre-fan-out
            # plan that makes shed sets identical at any concurrency.
            verdicts = self.admission.plan(len(items), self.priority)
        else:
            verdicts = ["admit"] * len(items)
        tasks = [
            asyncio.ensure_future(
                self._run_item(fn, item, index, run, on_error, verdicts[index])
            )
            for index, item in enumerate(items)
        ]
        results = await asyncio.gather(*tasks, return_exceptions=True)
        if run.fatal is not None:
            raise run.fatal
        for result in results:
            if isinstance(result, BaseException):
                # raise-mode terminal failure (lowest index first, the
                # order the thread pool awaits futures in) — or, in
                # return mode, an unexpected executor bug.
                raise result
        return list(results)

    def map(self, fn: Callable, items: Iterable, on_error: str = "raise") -> list:
        """Sync bridge onto the serving loop (the facade entry point)."""
        if threading.current_thread() is _LOOP_THREAD:
            raise RuntimeError(
                "map() called from the serving loop itself; await amap()"
            )
        # A concurrent shutdown_serving_loop() can close the loop between
        # our lookup and the submit; one retry picks up the fresh loop.
        for retry in (False, True):
            loop = get_serving_loop()
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.amap(fn, items, on_error), loop
                )
            except RuntimeError:
                if retry:
                    raise
                continue
            return future.result()
        raise RuntimeError("serving loop unavailable")  # pragma: no cover
