"""Completion-API client layer.

The paper's experiments run against the OpenAI API; the released
``fm_data_tasks`` code wraps it with a response cache and cost accounting
so ablations don't re-pay for identical prompts.  This package reproduces
that engineering layer over the simulated model: an SQLite-backed prompt
cache, token/usage accounting, simulated rate limiting with retries, and
a concurrent batch-execution layer (:mod:`repro.api.batch`) that fans
independent prompts across worker threads under a shared budget, failing
fast (no backoff) when a fatal error such as budget exhaustion occurs.
"""

from repro.api.batch import (
    BatchExecutor,
    RequestRecord,
    SharedBudget,
    complete_all,
    get_default_workers,
    resolve_workers,
    set_default_workers,
)
from repro.api.cache import PromptCache, get_default_cache, set_default_cache
from repro.api.client import CompletionClient
from repro.api.retry import (
    BudgetExhaustedError,
    FatalError,
    RateLimitError,
    RetryPolicy,
)
from repro.api.usage import (
    Usage,
    UsageTracker,
    count_tokens,
    usage_delta,
)

__all__ = [
    "BatchExecutor",
    "BudgetExhaustedError",
    "CompletionClient",
    "FatalError",
    "PromptCache",
    "RateLimitError",
    "RequestRecord",
    "RetryPolicy",
    "SharedBudget",
    "Usage",
    "UsageTracker",
    "complete_all",
    "count_tokens",
    "get_default_cache",
    "get_default_workers",
    "resolve_workers",
    "set_default_cache",
    "set_default_workers",
    "usage_delta",
]
