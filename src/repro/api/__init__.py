"""Completion-API client layer.

The paper's experiments run against the OpenAI API; the released
``fm_data_tasks`` code wraps it with a response cache and cost accounting
so ablations don't re-pay for identical prompts.  This package reproduces
that engineering layer over the simulated model: an SQLite-backed prompt
cache, token/usage accounting, and simulated rate limiting with retries.
"""

from repro.api.cache import PromptCache
from repro.api.client import CompletionClient, RateLimitError
from repro.api.usage import Usage, UsageTracker, count_tokens

__all__ = [
    "CompletionClient",
    "PromptCache",
    "RateLimitError",
    "Usage",
    "UsageTracker",
    "count_tokens",
]
