"""Completion-API client layer.

The paper's experiments run against the OpenAI API; the released
``fm_data_tasks`` code wraps it with a response cache and cost accounting
so ablations don't re-pay for identical prompts.  This package reproduces
that engineering layer over the simulated model: an SQLite-backed prompt
cache, token/usage accounting, simulated rate limiting with retries, and
a concurrent batch-execution layer (:mod:`repro.api.batch`) that fans
independent prompts across worker threads under a shared budget, failing
fast (no backoff) when a fatal error such as budget exhaustion occurs.

:mod:`repro.api.faults` adds the chaos side of the same story: a seeded
deterministic :class:`FaultPlan` injects rate limits, timeouts,
connection drops, latency spikes, and corrupted completions at the
backend boundary, and :class:`CircuitBreaker` keeps a dying endpoint
from burning the whole batch on backoff sleeps.

:mod:`repro.api.resilience` is the service-level layer above both: a
:class:`Deadline` wall budget that fails a run fast at its SLO,
:class:`HedgePolicy` backup requests that cut tail latency without
double-charging budgets, :class:`AdmissionController` load shedding
(AIMD queueing + priority classes) that refuses work before it burns
budget, and a :class:`FallbackChain` that serves would-be quarantined
examples from cheaper model tiers (the paper's own Figure 4 ladder)
instead of dropping them.

:mod:`repro.api.backends` makes the completion source pluggable: a
:class:`CompletionBackend` protocol with a process-wide registry
(simulated GPT-3 tiers registered at import, OpenAI-compatible HTTP
adapters available for real endpoints), so :class:`CompletionClient`
resolves string model names through :func:`get_backend` and everything
above the client — caching, budgets, faults, resilience — is
backend-agnostic.  :class:`~repro.api.resilience.CascadePolicy` builds
on that to serve runs cheapest-tier-first, escalating only
low-confidence predictions.
"""

from repro.api.abatch import (
    AsyncBatchExecutor,
    get_serving_loop,
    shutdown_serving_loop,
)
from repro.api.batch import (
    BatchExecutor,
    BatchFailure,
    CircuitBreaker,
    RequestRecord,
    SharedBudget,
    complete_all,
    get_default_executor_kind,
    get_default_workers,
    make_executor,
    resolve_workers,
    set_default_executor_kind,
    set_default_workers,
)
from repro.api.backends import (
    AzureOpenAIBackend,
    BackendInfo,
    CompletionBackend,
    DirectOpenAIBackend,
    FailoverBackend,
    HTTPJSONTransport,
    InProcessFakeTransport,
    available_backends,
    backend_info,
    get_backend,
    get_default_backend_timeout,
    register_backend,
    register_failover,
    set_default_backend_timeout,
    unregister_backend,
    validate_completion_response,
)
from repro.api.cache import PromptCache, get_default_cache, set_default_cache
from repro.api.client import CompletionClient
from repro.api.faults import (
    FAULT_PROFILES,
    WIRE_PROFILES,
    ChaosTransport,
    FaultPlan,
    FaultProfile,
    WireFaultProfile,
    get_default_fault_plan,
    get_fault_profile,
    get_wire_profile,
    malformed_reason,
    set_default_fault_plan,
)
from repro.api.resilience import (
    AdmissionController,
    AIMDLimiter,
    BackendHealthTracker,
    CascadePolicy,
    Deadline,
    FailoverPolicy,
    FallbackChain,
    HedgePolicy,
    PRIORITIES,
)
from repro.api.retry import (
    BackendHTTPError,
    BackendRateLimitError,
    BackendRequestError,
    BackendUnavailableError,
    BudgetExhaustedError,
    CircuitOpenError,
    DeadlineExceededError,
    FatalError,
    MalformedResponseError,
    ParseError,
    RateLimitError,
    RetryPolicy,
    Shed,
    classify_http_error,
    retry_after_floor,
)
from repro.api.usage import (
    Usage,
    UsageTracker,
    count_tokens,
    usage_delta,
)

__all__ = [
    "AIMDLimiter",
    "AdmissionController",
    "AsyncBatchExecutor",
    "AzureOpenAIBackend",
    "BackendHTTPError",
    "BackendHealthTracker",
    "BackendInfo",
    "BackendRateLimitError",
    "BackendRequestError",
    "BackendUnavailableError",
    "BatchExecutor",
    "BatchFailure",
    "BudgetExhaustedError",
    "CascadePolicy",
    "ChaosTransport",
    "CircuitBreaker",
    "CircuitOpenError",
    "CompletionBackend",
    "CompletionClient",
    "Deadline",
    "DirectOpenAIBackend",
    "DeadlineExceededError",
    "FAULT_PROFILES",
    "FailoverBackend",
    "FailoverPolicy",
    "FallbackChain",
    "FatalError",
    "FaultPlan",
    "FaultProfile",
    "HTTPJSONTransport",
    "HedgePolicy",
    "InProcessFakeTransport",
    "MalformedResponseError",
    "PRIORITIES",
    "ParseError",
    "PromptCache",
    "RateLimitError",
    "RequestRecord",
    "RetryPolicy",
    "SharedBudget",
    "Shed",
    "Usage",
    "UsageTracker",
    "WIRE_PROFILES",
    "WireFaultProfile",
    "available_backends",
    "backend_info",
    "classify_http_error",
    "complete_all",
    "count_tokens",
    "get_backend",
    "get_default_backend_timeout",
    "get_default_cache",
    "get_default_executor_kind",
    "get_default_fault_plan",
    "get_default_workers",
    "get_fault_profile",
    "get_serving_loop",
    "get_wire_profile",
    "make_executor",
    "malformed_reason",
    "register_backend",
    "register_failover",
    "resolve_workers",
    "retry_after_floor",
    "set_default_backend_timeout",
    "set_default_cache",
    "set_default_executor_kind",
    "set_default_fault_plan",
    "set_default_workers",
    "shutdown_serving_loop",
    "unregister_backend",
    "usage_delta",
    "validate_completion_response",
]
