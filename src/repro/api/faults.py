"""Deterministic fault injection for chaos-testing the completion stack.

The paper's pipeline assumes a reliable GPT-3 endpoint; every production
deployment of prompted wrangling instead sees rate limits, timeouts,
dropped connections, latency spikes, truncated completions, and outright
garbage text.  A :class:`FaultPlan` wraps the simulated backend inside
:class:`~repro.api.client.CompletionClient` and injects a configurable
mix of exactly those faults — reproducibly.

**Determinism is the whole point.**  Every fault decision is a pure
function of ``(seed, fault kind, prompt)`` through BLAKE2 hashes, never
of call order, wall clock, worker count, or ``PYTHONHASHSEED``.  The
same seed therefore yields a byte-identical fault schedule whether a run
fans across 1 thread or 8, which is what makes "re-run the chaos sweep
and get the same quarantine set" possible.

Fault families:

* **transient** — :class:`~repro.api.retry.RateLimitError`,
  ``TimeoutError``, ``ConnectionError`` raised before the backend is
  touched.  A faulted prompt fails its first ``depth`` attempts (depth
  drawn deterministically in ``1..fault_depth``) and then recovers, so
  the retry layer above usually saves it; a deterministic
  ``unrecoverable`` fraction never recovers and exhausts retries.
* **response corruption** — garbage text (marked with U+FFFD so the
  engine's response validation can detect and quarantine it) or a silent
  mid-text truncation (undetectable by construction — the degradation it
  causes is what ``repro chaos`` reports as the resilience delta).
* **latency spikes** — a deterministic subset of prompts sleeps before
  answering; affects wall-clock only, never outcomes.

A process-wide default plan (``set_default_fault_plan``) mirrors the
default-cache/default-workers pattern: ``repro bench <exp> --chaos
PROFILE`` installs one, and every client the engine builds underneath
runs under it without threading a parameter through the bench modules.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, replace

from repro.api.retry import (
    MalformedResponseError,
    RateLimitError,
    classify_http_error,
)

__all__ = [
    "FAULT_PROFILES",
    "WIRE_PROFILES",
    "ChaosTransport",
    "FaultPlan",
    "FaultProfile",
    "ProcessChaos",
    "PromptSchedule",
    "WireFaultProfile",
    "WireSchedule",
    "get_default_fault_plan",
    "get_fault_profile",
    "get_wire_profile",
    "malformed_reason",
    "set_default_fault_plan",
]


def _unit(seed: int, *parts: str) -> float:
    """Deterministic uniform draw in [0, 1) from ``(seed, *parts)``.

    BLAKE2-based, so the value is stable across processes, platforms and
    ``PYTHONHASHSEED`` — unlike ``hash()``.
    """
    payload = "\x1f".join((str(seed), *parts)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultProfile:
    """Per-fault rates and knobs for one chaos scenario.

    ``rate_limit``/``timeout``/``connection`` are *disjoint* transient
    rates (one draw decides which, if any, a prompt gets), so their sum
    is the overall transient fraction.  ``fault_depth`` bounds how many
    consecutive attempts a recoverable transient fault fires;
    ``unrecoverable`` is the fraction of faulted prompts whose fault
    never stops (these exhaust retries and get quarantined).
    """

    name: str = "custom"
    rate_limit: float = 0.0
    timeout: float = 0.0
    connection: float = 0.0
    garbage: float = 0.0
    truncate: float = 0.0
    latency_spike: float = 0.0
    latency_spike_s: float = 0.005
    fault_depth: int = 2
    unrecoverable: float = 0.0
    #: Process-level chaos (sharded runs only): probability that a worker
    #: SIGKILLs itself at a given shard journal boundary.  See
    #: :class:`ProcessChaos` — kills land *after* the journal append, so
    #: "zero duplicate backend calls on resume" stays provable.
    worker_kill: float = 0.0

    @property
    def transient(self) -> float:
        """Overall probability that a prompt draws a transient fault."""
        return self.rate_limit + self.timeout + self.connection


#: Named chaos scenarios for the CLI (``repro chaos --profile NAME``).
#: ``ci`` is the canned acceptance profile: 10% transient (mostly
#: recoverable within two retries), 2% malformed output — a run should
#: complete degraded-but-scored with coverage >= 0.95.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "ci": FaultProfile(
        name="ci", rate_limit=0.04, timeout=0.03, connection=0.03,
        garbage=0.02, fault_depth=2, unrecoverable=0.1,
    ),
    "mild": FaultProfile(
        name="mild", rate_limit=0.03, timeout=0.02, garbage=0.01,
        fault_depth=1,
    ),
    "heavy": FaultProfile(
        name="heavy", rate_limit=0.10, timeout=0.08, connection=0.07,
        garbage=0.05, truncate=0.03, latency_spike=0.05, fault_depth=3,
        unrecoverable=0.2,
    ),
    "garbage": FaultProfile(name="garbage", garbage=0.10, truncate=0.05),
    # Spikes fire on a prompt's *first* attempt only (see
    # FaultPlan.on_request), so a hedged backup — attempt 2 by
    # construction — skips the spike: exactly the tail-at-scale behavior
    # that makes hedging effective, and what
    # benchmarks/bench_hedging_tail_latency.py measures.  The spike is
    # sized well above HedgePolicy's default 5 ms delay so the p99 win
    # is unambiguous even on noisy CI machines.
    "latency": FaultProfile(
        name="latency", latency_spike=0.5, latency_spike_s=0.03,
    ),
    # Process-level violence for sharded runs: a high worker-kill rate
    # plus recoverable transients.  Deliberately *no* unrecoverable or
    # corrupting faults — the shard drill pins byte-identical predictions
    # against an unfaulted run, so every injected fault must be one the
    # retry/restart machinery can fully absorb.
    "shard-heavy": FaultProfile(
        name="shard-heavy", rate_limit=0.03, timeout=0.03, fault_depth=2,
        unrecoverable=0.0, worker_kill=0.18,
    ),
}


def get_fault_profile(name: str) -> FaultProfile:
    """Resolve a named chaos profile (``repro chaos --profile``)."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise KeyError(f"unknown fault profile {name!r}; known: {known}") from None


@dataclass(frozen=True)
class PromptSchedule:
    """The resolved fault schedule for one prompt (pure, inspectable)."""

    transient_kind: str | None = None   # "rate_limit" | "timeout" | "connection"
    depth: int = 0                      # attempts 1..depth fail (if recoverable)
    unrecoverable: bool = False         # fault never stops firing
    corrupt: str | None = None          # "garbage" | "truncate"
    latency_spike: bool = False

    def to_dict(self) -> dict:
        return {
            "transient_kind": self.transient_kind,
            "depth": self.depth,
            "unrecoverable": self.unrecoverable,
            "corrupt": self.corrupt,
            "latency_spike": self.latency_spike,
        }


_TRANSIENT_ERRORS: dict[str, type[Exception]] = {
    "rate_limit": RateLimitError,
    "timeout": TimeoutError,
    "connection": ConnectionError,
}

#: Characters that mark a response as garbage.  Injected garbage carries
#: U+FFFD (the Unicode replacement character — what a real client sees
#: when the wire mangles an encoding); :func:`malformed_reason` treats it
#: and NUL as proof of corruption.
_GARBAGE_MARKERS = ("�", "\x00")


def malformed_reason(text) -> str | None:
    """Why ``text`` is not a usable completion, or ``None`` if it is.

    The engine's quarantine path validates responses before parsing the
    way a production harness checks ``finish_reason`` and body shape:
    empty/whitespace-only output and garbage bytes are errors, not
    predictions.  (Silent truncation is undetectable here by design.)
    """
    if not isinstance(text, str):
        return f"non-text response of type {type(text).__name__}"
    if not text.strip():
        return "empty response"
    if any(marker in text for marker in _GARBAGE_MARKERS):
        return "garbage bytes in response"
    return None


class FaultPlan:
    """A seeded, deterministic fault schedule over prompts.

    ``schedule_for(prompt)`` is a pure function of ``(seed, prompt)``;
    the only mutable state is the per-prompt attempt counter (so a
    recoverable fault stops after ``depth`` attempts) and the injection
    tallies — both lock-protected, neither affecting *which* faults
    fire.  One plan may be shared by every client of a bench sweep.
    """

    def __init__(self, profile: FaultProfile | str = "ci", seed: int = 0):
        if isinstance(profile, str):
            profile = get_fault_profile(profile)
        self.profile = profile
        self.seed = seed
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self._counts: dict[str, int] = {}

    # -- schedule (pure) ---------------------------------------------------

    def schedule_for(self, prompt: str) -> PromptSchedule:
        """The deterministic fault schedule of one prompt."""
        p = self.profile
        transient_kind = None
        depth = 0
        unrecoverable = False
        draw = _unit(self.seed, "transient", prompt)
        edge = 0.0
        for kind in ("rate_limit", "timeout", "connection"):
            rate = getattr(p, kind)
            if draw < edge + rate:
                transient_kind = kind
                break
            edge += rate
        if transient_kind is not None:
            depth = 1 + int(
                _unit(self.seed, "depth", prompt) * max(1, p.fault_depth)
            )
            unrecoverable = (
                _unit(self.seed, "unrecoverable", prompt) < p.unrecoverable
            )
        corrupt = None
        if _unit(self.seed, "garbage", prompt) < p.garbage:
            corrupt = "garbage"
        elif _unit(self.seed, "truncate", prompt) < p.truncate:
            corrupt = "truncate"
        latency_spike = _unit(self.seed, "latency", prompt) < p.latency_spike
        return PromptSchedule(
            transient_kind=transient_kind,
            depth=depth,
            unrecoverable=unrecoverable,
            corrupt=corrupt,
            latency_spike=latency_spike,
        )

    def schedule_digest(self, prompts: list[str]) -> str:
        """SHA-256 over the full fault schedule of ``prompts``.

        Two plans with the same seed and profile produce byte-identical
        digests — the pinned determinism test compares these across
        worker counts and ``PYTHONHASHSEED`` values.
        """
        import json

        schedules = [self.schedule_for(prompt).to_dict() for prompt in prompts]
        payload = json.dumps(schedules, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- injection hooks (called by CompletionClient) ----------------------

    def _prompt_key(self, prompt: str) -> str:
        return hashlib.blake2b(
            prompt.encode("utf-8"), digest_size=16
        ).hexdigest()

    def _count(self, kind: str) -> None:
        with self._lock:
            self._counts[kind] = self._counts.get(kind, 0) + 1

    def on_request(self, prompt: str) -> None:
        """Consult the schedule before a backend attempt; maybe raise.

        Attempt numbers are tracked per prompt, so interleaving across
        prompts (any worker count) cannot change when a given prompt's
        fault stops firing.
        """
        schedule = self.schedule_for(prompt)
        key = self._prompt_key(prompt)
        with self._lock:
            attempt = self._attempts[key] = self._attempts.get(key, 0) + 1
        if schedule.latency_spike and attempt == 1:
            self._count("latency_spike")
            time.sleep(self.profile.latency_spike_s)
        if schedule.transient_kind is not None and (
            schedule.unrecoverable or attempt <= schedule.depth
        ):
            self._count(schedule.transient_kind)
            raise _TRANSIENT_ERRORS[schedule.transient_kind](
                f"injected {schedule.transient_kind} fault "
                f"(attempt {attempt}, seed {self.seed})"
            )

    def on_response(self, prompt: str, text: str) -> str:
        """Maybe corrupt a completion on its way back from the backend."""
        schedule = self.schedule_for(prompt)
        if schedule.corrupt == "garbage":
            self._count("garbage")
            noise = hashlib.blake2b(
                f"{self.seed}|garbage|{prompt}".encode("utf-8"), digest_size=6
            ).hexdigest()
            return f"�{noise}�"
        if schedule.corrupt == "truncate":
            self._count("truncate")
            return text[: max(1, len(text) // 2)]
        return text

    # -- accounting --------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Cumulative injection tallies (copy; safe to diff across runs)."""
        with self._lock:
            return dict(self._counts)

    def describe(self) -> dict:
        """JSON-ready identity block for run manifests."""
        return {
            "profile": self.profile.name,
            "seed": self.seed,
            "rates": {
                "rate_limit": self.profile.rate_limit,
                "timeout": self.profile.timeout,
                "connection": self.profile.connection,
                "garbage": self.profile.garbage,
                "truncate": self.profile.truncate,
                "latency_spike": self.profile.latency_spike,
                "worker_kill": self.profile.worker_kill,
            },
        }

    def fork(self) -> FaultPlan:
        """A fresh plan with the same seed/profile and zeroed counters."""
        return FaultPlan(replace(self.profile), seed=self.seed)


class ProcessChaos:
    """Seeded worker-kill schedule for sharded runs (``repro shard-run``).

    ``should_kill(shard_id, boundary)`` is a pure function of
    ``(seed, shard_id, boundary)`` — which *worker process* happens to
    hold the shard is irrelevant, so the kill schedule is reproducible
    even though shard-to-worker assignment is timing-dependent (work
    stealing).  Workers consult it at journal-append boundaries only and
    deliver a real ``SIGKILL`` to themselves, which keeps the
    exactly-once invariant checkable: at a boundary nothing is in flight
    between the backend and the journal.

    One kill per shard: the worker drops a marker file (O_EXCL) before
    dying, and the schedule never fires for a marked shard again —
    otherwise a restarted worker would deterministically die at the same
    boundary forever.
    """

    def __init__(
        self,
        profile: FaultProfile | str = "shard-heavy",
        seed: int = 0,
        marker_dir: str | None = None,
    ):
        if isinstance(profile, str):
            profile = get_fault_profile(profile)
        self.profile = profile
        self.seed = seed
        self.marker_dir = marker_dir

    def _marker_path(self, shard_id: int) -> str | None:
        if self.marker_dir is None:
            return None
        import os

        return os.path.join(self.marker_dir, f"shard_{shard_id:04d}.killed")

    def kill_scheduled(self, shard_id: int, boundary: int) -> bool:
        """Pure draw: does the schedule fire at this shard boundary?"""
        return (
            _unit(self.seed, "worker_kill", str(shard_id), str(boundary))
            < self.profile.worker_kill
        )

    def should_kill(self, shard_id: int, boundary: int) -> bool:
        """Scheduled *and* this shard has not already been killed once."""
        if self.profile.worker_kill <= 0.0:
            return False
        if not self.kill_scheduled(shard_id, boundary):
            return False
        path = self._marker_path(shard_id)
        if path is None:
            return True
        import os

        return not os.path.exists(path)

    def mark_and_kill(self, shard_id: int, boundary: int) -> None:
        """Drop the one-kill-per-shard marker, then SIGKILL ourselves.

        The marker is created with ``O_EXCL`` *before* the kill so the
        next incarnation (supervisor restart or ``--resume``) sees the
        shard as already-martyred and makes progress.  Never returns.
        """
        import os
        import signal

        path = self._marker_path(shard_id)
        if path is not None:
            os.makedirs(self.marker_dir, exist_ok=True)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return  # lost a race with another incarnation; live on
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(
                    f'{{"shard_id": {shard_id}, "boundary": {boundary}, '
                    f'"seed": {self.seed}}}\n'
                )
        os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# Wire-level chaos: the same deterministic discipline applied one layer
# down, at the HTTP transport seam, where faults look like what a real
# completion API actually sends — status codes, resets, stalled bodies,
# mangled JSON — instead of pre-classified Python exceptions.


@dataclass(frozen=True)
class WireFaultProfile:
    """Per-fault rates for one wire-chaos scenario.

    The six *failing* kinds (429, 5xx, reset, truncated JSON, malformed
    JSON, schema-violating JSON) are disjoint — one draw decides which,
    if any, a prompt gets — so their sum is the overall failure
    fraction.  ``stall`` is independent (latency only, never outcomes).
    ``fault_depth``/``unrecoverable`` work exactly like
    :class:`FaultProfile`'s: a recoverable fault fires on a prompt's
    first ``depth`` posts through the transport and then stops; an
    unrecoverable one never stops — only failover to a clean group
    member can serve that prompt.
    """

    name: str = "custom"
    rate_limit: float = 0.0       # HTTP 429 with Retry-After
    server_error: float = 0.0     # HTTP 500/502/503
    reset: float = 0.0            # connection reset mid-request
    truncate_json: float = 0.0    # body cut mid-byte → undecodable
    malformed_json: float = 0.0   # body is not JSON at all
    schema_violation: float = 0.0  # valid JSON violating the contract
    stall: float = 0.0            # slow body (sleep, then succeed)
    stall_s: float = 0.005
    retry_after_s: float = 0.02   # advertised by injected 429s
    fault_depth: int = 2
    unrecoverable: float = 0.0

    @property
    def failing(self) -> float:
        """Overall probability that a prompt draws a failing wire fault."""
        return (
            self.rate_limit + self.server_error + self.reset
            + self.truncate_json + self.malformed_json
            + self.schema_violation
        )


#: Named wire-chaos scenarios (``--wire-chaos NAME``).  ``wire-heavy``
#: includes unrecoverable faults, so completing it with full coverage
#: requires failover to a clean equivalence-group member — exactly what
#: benchmarks/bench_transport_chaos.py pins.
WIRE_PROFILES: dict[str, WireFaultProfile] = {
    "wire-none": WireFaultProfile(name="wire-none"),
    "wire-ci": WireFaultProfile(
        name="wire-ci", rate_limit=0.04, server_error=0.03, reset=0.02,
        truncate_json=0.02, schema_violation=0.02, fault_depth=2,
        retry_after_s=0.01,
    ),
    "wire-heavy": WireFaultProfile(
        name="wire-heavy", rate_limit=0.08, server_error=0.06, reset=0.05,
        truncate_json=0.04, malformed_json=0.03, schema_violation=0.04,
        stall=0.05, stall_s=0.003, fault_depth=2, unrecoverable=0.35,
        retry_after_s=0.01,
    ),
}


def get_wire_profile(name: str) -> WireFaultProfile:
    """Resolve a named wire-chaos profile."""
    try:
        return WIRE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(WIRE_PROFILES))
        raise KeyError(
            f"unknown wire profile {name!r}; known: {known}"
        ) from None


@dataclass(frozen=True)
class WireSchedule:
    """The resolved wire-fault schedule for one prompt (pure)."""

    kind: str | None = None  # one of _WIRE_KINDS
    depth: int = 0
    unrecoverable: bool = False
    stall: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "depth": self.depth,
            "unrecoverable": self.unrecoverable,
            "stall": self.stall,
        }


_WIRE_KINDS = (
    "rate_limit", "server_error", "reset",
    "truncate_json", "malformed_json", "schema_violation",
)

#: The 5xx statuses injected server errors rotate through
#: (deterministically, by a per-prompt draw).
_SERVER_ERROR_STATUSES = (500, 502, 503)

#: Schema-violating-but-valid JSON bodies, rotated deterministically.
#: Each decodes fine and then fails the adapter's contract validation —
#: the exact class of garbage a proxy or a misconfigured endpoint emits.
_SCHEMA_VIOLATIONS = (
    {"choices": []},
    {"choices": [{"text": 12345, "finish_reason": "stop"}]},
    {"choices": [{"finish_reason": "stop"}]},
    {"choices": [{"text": "yes", "finish_reason": "because"}]},
    {"choices": [{"text": "yes", "logprobs": {"token_logprobs": ["hi"]}}]},
    {"object": "error", "message": "model overloaded"},
)


class ChaosTransport:
    """Wire-level chaos at the one-method transport seam.

    Wraps any transport with a ``post(url, headers, payload) -> dict``
    method and deterministically injects the faults a real completion
    API exhibits: 429 with ``Retry-After``, 500/502/503, connection
    resets, stalled bodies, truncated and malformed JSON, and
    schema-violating-but-valid JSON.  Same discipline as
    :class:`FaultPlan`: every decision is a BLAKE2 pure function of
    ``(seed, kind, payload["prompt"])`` — never call order, worker
    count, or ``PYTHONHASHSEED`` — with a per-prompt attempt counter so
    recoverable faults stop after their drawn depth.

    Faults surface exactly as the hardened
    :class:`~repro.api.backends.HTTPJSONTransport` would surface them:
    status faults raise the typed
    :class:`~repro.api.retry.BackendHTTPError` family via
    :func:`~repro.api.retry.classify_http_error`; truncated and
    malformed bodies are *actually* mangled JSON text run through
    ``json.loads`` (raising
    :class:`~repro.api.retry.MalformedResponseError`); schema
    violations are returned as decoded dicts so the adapter's contract
    validation is what catches them.
    """

    def __init__(
        self,
        inner,
        profile: WireFaultProfile | str = "wire-ci",
        seed: int = 0,
    ):
        if isinstance(profile, str):
            profile = get_wire_profile(profile)
        self.inner = inner
        self.profile = profile
        self.seed = seed
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self._counts: dict[str, int] = {}

    # -- schedule (pure) ---------------------------------------------------

    def schedule_for(self, prompt: str) -> WireSchedule:
        """The deterministic wire-fault schedule of one prompt."""
        p = self.profile
        kind = None
        draw = _unit(self.seed, "wire", prompt)
        edge = 0.0
        for candidate in _WIRE_KINDS:
            rate = getattr(p, candidate)
            if draw < edge + rate:
                kind = candidate
                break
            edge += rate
        depth = 0
        unrecoverable = False
        if kind is not None:
            depth = 1 + int(
                _unit(self.seed, "wire-depth", prompt) * max(1, p.fault_depth)
            )
            unrecoverable = (
                _unit(self.seed, "wire-unrecoverable", prompt)
                < p.unrecoverable
            )
        stall = _unit(self.seed, "wire-stall", prompt) < p.stall
        return WireSchedule(
            kind=kind, depth=depth, unrecoverable=unrecoverable, stall=stall
        )

    def schedule_digest(self, prompts: list[str]) -> str:
        """SHA-256 over the wire schedule of ``prompts`` (pure)."""
        import json

        schedules = [self.schedule_for(prompt).to_dict() for prompt in prompts]
        payload = json.dumps(schedules, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- injection ---------------------------------------------------------

    def _count(self, kind: str) -> None:
        with self._lock:
            self._counts[kind] = self._counts.get(kind, 0) + 1

    def _pick(self, options, prompt: str, salt: str):
        index = int(
            _unit(self.seed, salt, prompt) * len(options)
        ) % len(options)
        return options[index]

    def post(self, url: str, headers: dict, payload: dict) -> dict:
        import json

        prompt = str(payload.get("prompt", ""))
        schedule = self.schedule_for(prompt)
        key = hashlib.blake2b(
            prompt.encode("utf-8"), digest_size=16
        ).hexdigest()
        with self._lock:
            attempt = self._attempts[key] = self._attempts.get(key, 0) + 1
        if schedule.stall and attempt == 1:
            self._count("stall")
            time.sleep(self.profile.stall_s)
        if schedule.kind is None or not (
            schedule.unrecoverable or attempt <= schedule.depth
        ):
            return self.inner.post(url, headers, payload)
        kind = schedule.kind
        self._count(kind)
        if kind == "rate_limit":
            raise classify_http_error(
                429,
                f"injected rate limit (attempt {attempt}, seed {self.seed})",
                retry_after_s=self.profile.retry_after_s,
            )
        if kind == "server_error":
            status = self._pick(_SERVER_ERROR_STATUSES, prompt, "wire-status")
            raise classify_http_error(
                status,
                f"injected server error (attempt {attempt}, "
                f"seed {self.seed})",
            )
        if kind == "reset":
            raise ConnectionError(
                f"injected connection reset (attempt {attempt}, "
                f"seed {self.seed})"
            )
        if kind == "truncate_json":
            body = json.dumps(self.inner.post(url, headers, payload))
            mangled = body[: max(1, len(body) // 2)]
        elif kind == "malformed_json":
            noise = hashlib.blake2b(
                f"{self.seed}|wire|{prompt}".encode("utf-8"), digest_size=6
            ).hexdigest()
            mangled = f"<html>502 bad gateway {noise}</html>"
        else:  # schema_violation: valid JSON, broken contract
            return dict(
                self._pick(_SCHEMA_VIOLATIONS, prompt, "wire-schema")
            )
        try:
            json.loads(mangled)
        except json.JSONDecodeError as exc:
            raise MalformedResponseError(
                f"injected {kind} (attempt {attempt}, seed {self.seed}): "
                f"{exc}"
            ) from exc
        raise MalformedResponseError(
            f"injected {kind} (attempt {attempt}, seed {self.seed})"
        )

    # -- accounting --------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Cumulative injection tallies (copy; safe to diff)."""
        with self._lock:
            return dict(self._counts)

    def describe(self) -> dict:
        """JSON-ready identity block for manifests and benches."""
        return {
            "profile": self.profile.name,
            "seed": self.seed,
            "rates": {
                kind: getattr(self.profile, kind) for kind in _WIRE_KINDS
            } | {"stall": self.profile.stall},
        }


# Process-wide default plan.  ``repro bench --chaos PROFILE`` installs
# one so every client the engine constructs underneath injects the same
# schedule — the same pattern as the default worker count and cache.
_DEFAULT_PLAN: FaultPlan | None = None
_DEFAULT_PLAN_LOCK = threading.Lock()


def set_default_fault_plan(plan: FaultPlan | None) -> None:
    """Install (or with ``None``, clear) the process-wide fault plan."""
    global _DEFAULT_PLAN
    with _DEFAULT_PLAN_LOCK:
        _DEFAULT_PLAN = plan


def get_default_fault_plan() -> FaultPlan | None:
    with _DEFAULT_PLAN_LOCK:
        return _DEFAULT_PLAN
