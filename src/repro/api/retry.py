"""Error taxonomy and the shared retry policy for the completion stack.

The batch layer distinguishes two failure families:

* **transient** — simulated rate limits, timeouts, connection drops.
  These are worth a deterministic exponential backoff and a bounded
  number of retries; the endpoint "recovers" and the run proceeds.
* **fatal** — :class:`FatalError` and subclasses.  A run-level budget
  that is exhausted (:class:`BudgetExhaustedError`) can never recover
  mid-run, so retrying it only burns ``workers * Σ backoff`` of
  wall-clock before failing anyway.  The executor aborts the whole
  batch immediately instead: pending work is cancelled, in-flight work
  drains, and the original error propagates.

:class:`RetryPolicy` is the one object that encodes how retries behave
— which exceptions are retryable, how many attempts, and the backoff
schedule — shared by :class:`~repro.api.client.CompletionClient`,
:class:`~repro.api.batch.BatchExecutor`, and the task engine, so the
three layers can never disagree about what "retry" means.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


class RateLimitError(RuntimeError):
    """Raised by the simulated endpoint when a request budget is hit."""


class FatalError(RuntimeError):
    """A failure no amount of backoff can fix — fail the batch fast."""


class DeadlineExceededError(FatalError):
    """The run's wall-clock budget is spent.

    Raised by :meth:`repro.api.resilience.Deadline.check` — in the
    executor before each attempt, and in the client before each backend
    touch.  A :class:`FatalError`: time, like a request budget, cannot
    recover mid-run, so the batch layer aborts instead of backing off,
    and backoff sleeps are always clamped to the remaining budget so a
    retry can never sleep past the deadline.
    """


class Shed(RuntimeError):
    """Admission control refused this work unit before it burned budget.

    Raised (without touching the backend) for items an
    :class:`~repro.api.resilience.AdmissionController` decided to shed —
    the circuit breaker is degraded, or the shared budget is too close
    to exhaustion to serve this item's priority class.  Not retryable:
    the shed decision is made once, deterministically, at batch-plan
    time.  Under ``run_task(on_error="quarantine")`` a shed example
    surfaces as a ``BatchFailure(error_type="Shed")`` and is either
    served by the fallback chain or quarantined — never silently
    dropped.
    """


class ParseError(ValueError):
    """A completion could not be interpreted as a task prediction.

    Raised instead of whatever ``IndexError``/``KeyError`` a naive parser
    would leak when the model returns empty, truncated, or garbage text.
    Not retryable: the response is cached, so re-requesting the same
    prompt at temperature 0 yields the same unparseable text.  Under
    ``run_task(on_error="quarantine")`` the affected example is
    quarantined and scoring proceeds over the survivors.
    """


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open — the endpoint is presumed down.

    Raised (without touching the backend) for work attempted while a
    :class:`~repro.api.batch.CircuitBreaker` is open, so a dead endpoint
    costs one probe per cooldown instead of ``items × retries`` backoff
    sleeps.  Not retryable by policy: the breaker itself decides when to
    probe again.
    """


class BudgetExhaustedError(FatalError, RateLimitError):
    """A run-level request/token budget is spent.

    Subclasses :class:`RateLimitError` so existing ``except
    RateLimitError`` call sites keep working, and :class:`FatalError` so
    the batch layer knows not to back off: a budget cannot recover
    mid-run.
    """


class BackendHTTPError(RuntimeError):
    """An HTTP completion endpoint answered with a non-2xx status.

    Carries the ``status`` code and, for 429/503 responses that set a
    ``Retry-After`` header, ``retry_after_s`` — which the batch layer
    honors as a *floor* under its own exponential backoff (see
    :func:`retry_after_floor`).  Never raised directly: the transport
    calls :func:`classify_http_error`, which picks the subclass whose
    extra bases (:class:`RateLimitError`, :class:`ConnectionError`,
    :class:`FatalError`) make the existing :data:`DEFAULT_RETRY_ON`
    classification land correctly with zero policy changes.
    """

    def __init__(
        self,
        status: int,
        message: str = "",
        retry_after_s: float | None = None,
    ):
        detail = message or f"HTTP {status}"
        super().__init__(f"backend returned HTTP {status}: {detail}")
        self.status = int(status)
        self.retry_after_s = (
            float(retry_after_s) if retry_after_s is not None else None
        )


class BackendRateLimitError(BackendHTTPError, RateLimitError):
    """HTTP 429 — transient; back off (honoring any ``Retry-After``)."""


class BackendUnavailableError(BackendHTTPError, ConnectionError):
    """HTTP 5xx — the endpoint is degraded; transient, worth a retry."""


class BackendRequestError(BackendHTTPError, FatalError):
    """HTTP 4xx (other than 429) — the *request* is wrong.

    Bad auth, an unknown model, an oversized payload: retrying the same
    bytes yields the same rejection, so this is fatal and the batch
    layer fails fast instead of burning the backoff ladder.
    """


class MalformedResponseError(ConnectionError):
    """The endpoint answered, but with bytes violating its own contract.

    Truncated/garbage JSON, a missing ``choices`` list, a non-string
    ``text``, an impossible logprob shape: all the ways a proxy or an
    overloaded endpoint mangles a response in flight.  A
    :class:`ConnectionError` subclass — wire-level corruption is
    transient the way a reset is — so the default policy retries it,
    and a backend that *persistently* violates the contract exhausts
    retries into a typed error instead of a downstream ``KeyError``.
    """


def classify_http_error(
    status: int, message: str = "", retry_after_s: float | None = None
) -> BackendHTTPError:
    """The right :class:`BackendHTTPError` subclass for ``status``."""
    if status == 429:
        return BackendRateLimitError(status, message, retry_after_s)
    if status >= 500:
        return BackendUnavailableError(status, message, retry_after_s)
    return BackendRequestError(status, message, retry_after_s)


def retry_after_floor(exc: BaseException) -> float:
    """The server-mandated minimum backoff carried by ``exc`` (or 0).

    Applied by the batch layers as ``delay = max(delay, floor)`` so an
    explicit ``Retry-After`` is never undercut by the exponential
    ladder's small early rungs.
    """
    floor = getattr(exc, "retry_after_s", None)
    if floor is None:
        return 0.0
    try:
        return max(0.0, float(floor))
    except (TypeError, ValueError):
        return 0.0


#: Exception types worth a backoff-and-retry by default.  Fatal
#: subclasses are screened out explicitly, so ``BudgetExhaustedError``
#: being a ``RateLimitError`` does not make it retryable.  The wire
#: taxonomy folds in through inheritance: ``BackendRateLimitError`` is a
#: ``RateLimitError``, ``BackendUnavailableError`` and
#: ``MalformedResponseError`` are ``ConnectionError``s, and
#: ``BackendRequestError`` is screened by ``is_fatal``.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (
    RateLimitError,
    TimeoutError,
    ConnectionError,
)


def _jitter_unit(seed: int, attempt: int, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (attempt, key) pair.

    BLAKE2-based like :func:`repro.api.faults._unit`, so the value is a
    pure function of its inputs — stable across processes, platforms,
    worker counts, and ``PYTHONHASHSEED``.
    """
    payload = f"{seed}\x1fretry\x1f{attempt}\x1f{key}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) a failed request is retried.

    ``delay(attempt)`` is deterministic exponential backoff:
    ``backoff_base * 2**attempt`` capped at ``backoff_cap``.
    ``delay(attempt, key=...)`` additionally applies *decorrelated
    jitter*: the delay is scaled into ``[(1 - jitter) * window, window]``
    by a BLAKE2 draw over ``(jitter_seed, attempt, key)`` — a pure
    function like :class:`~repro.api.faults.FaultPlan`'s schedule, so
    runs stay reproducible while concurrent retries of *different* items
    wake at different times instead of synchronizing into a thundering
    herd.  With no ``key`` (or ``jitter=0``) the schedule is the exact
    unjittered ladder.  :class:`FatalError` is never retryable
    regardless of ``retry_on``.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    retry_on: tuple[type[BaseException], ...] = field(
        default=DEFAULT_RETRY_ON
    )
    #: Fraction of the backoff window subject to jitter (0 = none,
    #: 1 = "full jitter").  0.5 keeps every delay within [w/2, w].
    jitter: float = 0.5
    jitter_seed: int = 0

    def delay(self, attempt: int, key: str | None = None) -> float:
        """Backoff before retry number ``attempt + 1`` (0-based).

        ``key`` identifies the work item (the executor passes one per
        item); when given, the delay is decorrelated-jittered — still a
        pure function of ``(jitter_seed, attempt, key)``.
        """
        window = min(self.backoff_cap, self.backoff_base * (2**attempt))
        if key is None or self.jitter <= 0.0:
            return window
        draw = _jitter_unit(self.jitter_seed, attempt, key)
        return window * (1.0 - self.jitter * (1.0 - draw))

    def is_fatal(self, exc: BaseException) -> bool:
        return isinstance(exc, FatalError)

    def is_retryable(self, exc: BaseException) -> bool:
        return not self.is_fatal(exc) and isinstance(exc, tuple(self.retry_on))

    def should_retry(self, exc: BaseException, attempts: int) -> bool:
        """Whether a request that has made ``attempts`` tries goes again."""
        return self.is_retryable(exc) and attempts <= self.max_retries


#: The stack-wide default (used when no policy is passed explicitly).
DEFAULT_POLICY = RetryPolicy()

#: For layers that retry internally already (e.g. ``complete_many``'s
#: executor over a CompletionClient that retries injected failures).
NO_RETRY = RetryPolicy(max_retries=0)

__all__ = [
    "BackendHTTPError",
    "BackendRateLimitError",
    "BackendRequestError",
    "BackendUnavailableError",
    "BudgetExhaustedError",
    "CircuitOpenError",
    "DEFAULT_POLICY",
    "DEFAULT_RETRY_ON",
    "DeadlineExceededError",
    "FatalError",
    "MalformedResponseError",
    "NO_RETRY",
    "ParseError",
    "RateLimitError",
    "RetryPolicy",
    "Shed",
    "classify_http_error",
    "retry_after_floor",
]
