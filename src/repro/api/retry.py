"""Error taxonomy and the shared retry policy for the completion stack.

The batch layer distinguishes two failure families:

* **transient** — simulated rate limits, timeouts, connection drops.
  These are worth a deterministic exponential backoff and a bounded
  number of retries; the endpoint "recovers" and the run proceeds.
* **fatal** — :class:`FatalError` and subclasses.  A run-level budget
  that is exhausted (:class:`BudgetExhaustedError`) can never recover
  mid-run, so retrying it only burns ``workers * Σ backoff`` of
  wall-clock before failing anyway.  The executor aborts the whole
  batch immediately instead: pending work is cancelled, in-flight work
  drains, and the original error propagates.

:class:`RetryPolicy` is the one object that encodes how retries behave
— which exceptions are retryable, how many attempts, and the backoff
schedule — shared by :class:`~repro.api.client.CompletionClient`,
:class:`~repro.api.batch.BatchExecutor`, and the task engine, so the
three layers can never disagree about what "retry" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class RateLimitError(RuntimeError):
    """Raised by the simulated endpoint when a request budget is hit."""


class FatalError(RuntimeError):
    """A failure no amount of backoff can fix — fail the batch fast."""


class ParseError(ValueError):
    """A completion could not be interpreted as a task prediction.

    Raised instead of whatever ``IndexError``/``KeyError`` a naive parser
    would leak when the model returns empty, truncated, or garbage text.
    Not retryable: the response is cached, so re-requesting the same
    prompt at temperature 0 yields the same unparseable text.  Under
    ``run_task(on_error="quarantine")`` the affected example is
    quarantined and scoring proceeds over the survivors.
    """


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open — the endpoint is presumed down.

    Raised (without touching the backend) for work attempted while a
    :class:`~repro.api.batch.CircuitBreaker` is open, so a dead endpoint
    costs one probe per cooldown instead of ``items × retries`` backoff
    sleeps.  Not retryable by policy: the breaker itself decides when to
    probe again.
    """


class BudgetExhaustedError(FatalError, RateLimitError):
    """A run-level request/token budget is spent.

    Subclasses :class:`RateLimitError` so existing ``except
    RateLimitError`` call sites keep working, and :class:`FatalError` so
    the batch layer knows not to back off: a budget cannot recover
    mid-run.
    """


#: Exception types worth a backoff-and-retry by default.  Fatal
#: subclasses are screened out explicitly, so ``BudgetExhaustedError``
#: being a ``RateLimitError`` does not make it retryable.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (
    RateLimitError,
    TimeoutError,
    ConnectionError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) a failed request is retried.

    ``delay`` is deterministic exponential backoff: ``backoff_base *
    2**attempt`` capped at ``backoff_cap`` — no jitter, so test runs are
    reproducible.  :class:`FatalError` is never retryable regardless of
    ``retry_on``.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    retry_on: tuple[type[BaseException], ...] = field(
        default=DEFAULT_RETRY_ON
    )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2**attempt))

    def is_fatal(self, exc: BaseException) -> bool:
        return isinstance(exc, FatalError)

    def is_retryable(self, exc: BaseException) -> bool:
        return not self.is_fatal(exc) and isinstance(exc, tuple(self.retry_on))

    def should_retry(self, exc: BaseException, attempts: int) -> bool:
        """Whether a request that has made ``attempts`` tries goes again."""
        return self.is_retryable(exc) and attempts <= self.max_retries


#: The stack-wide default (used when no policy is passed explicitly).
DEFAULT_POLICY = RetryPolicy()

#: For layers that retry internally already (e.g. ``complete_many``'s
#: executor over a CompletionClient that retries injected failures).
NO_RETRY = RetryPolicy(max_retries=0)

__all__ = [
    "BudgetExhaustedError",
    "CircuitOpenError",
    "DEFAULT_POLICY",
    "DEFAULT_RETRY_ON",
    "FatalError",
    "NO_RETRY",
    "ParseError",
    "RateLimitError",
    "RetryPolicy",
]
