"""Size-dependent capability profiles for the simulated GPT-3 family.

Each capability is an explicit mechanism in the engine:

* ``knowledge_floor`` — minimum corpus frequency of a knowledge-base fact
  the model can recall.  Larger models remember rarer facts (Tables 2/5/6).
* ``semantic_depth`` — quality of fuzzy semantic comparison.  Low depth
  degrades on jargon tokens (product codes, version strings) and disables
  character-level reasoning such as spotting a single-character typo —
  small LMs see subword tokens, not characters.
* ``instruction_following`` — how reliably the model executes a task given
  only its description (zero-shot).  Low values mean format errors,
  embellished answers and default "No"s.
* ``icl_strength`` — how much of the demonstrations' signal the model
  absorbs (threshold calibration, format grounding, program induction).
* ``format_sensitivity`` — magnitude of the deterministic decision-bias a
  particular prompt wording induces (Table 4's Prompt 1 vs Prompt 2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Capability parameters of one simulated model size."""

    name: str
    n_parameters: int
    knowledge_floor: float
    semantic_depth: float
    instruction_following: float
    icl_strength: float
    format_sensitivity: float

    def __post_init__(self):
        for attr in (
            "semantic_depth", "instruction_following", "icl_strength",
            "format_sensitivity",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.n_parameters <= 0:
            raise ValueError("n_parameters must be positive")
        if self.knowledge_floor < 0:
            raise ValueError("knowledge_floor must be >= 0")

    @property
    def can_spot_character_errors(self) -> bool:
        """Character-level anomaly reasoning needs high semantic depth."""
        return self.semantic_depth >= 0.8


MODEL_PROFILES: dict[str, ModelProfile] = {
    "gpt3-1.3b": ModelProfile(
        name="gpt3-1.3b",
        n_parameters=1_300_000_000,
        knowledge_floor=80.0,
        semantic_depth=0.45,
        instruction_following=0.10,
        icl_strength=0.45,
        format_sensitivity=0.5,
    ),
    "gpt3-6.7b": ModelProfile(
        name="gpt3-6.7b",
        n_parameters=6_700_000_000,
        knowledge_floor=15.0,
        semantic_depth=0.62,
        instruction_following=0.30,
        icl_strength=0.72,
        format_sensitivity=0.4,
    ),
    "gpt3-175b": ModelProfile(
        name="gpt3-175b",
        n_parameters=175_000_000_000,
        knowledge_floor=0.4,
        semantic_depth=0.88,
        instruction_following=0.75,
        icl_strength=0.95,
        format_sensitivity=0.25,
    ),
}


def get_profile(name: str) -> ModelProfile:
    """Look up a profile; accepts the full name or the size suffix."""
    key = name.lower()
    if key in MODEL_PROFILES:
        return MODEL_PROFILES[key]
    suffixed = f"gpt3-{key}"
    if suffixed in MODEL_PROFILES:
        return MODEL_PROFILES[suffixed]
    known = ", ".join(sorted(MODEL_PROFILES))
    raise KeyError(f"unknown model {name!r}; known: {known}")
