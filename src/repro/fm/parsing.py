"""Prompt parsing — the mechanical analogue of in-context learning.

The engine receives one opaque string.  This module splits it into blank-
line-separated blocks, classifies each block as a demonstration or the
query of one of the recognized task shapes, and extracts structure:

* ``match``     — "<Noun> A is …\\n<Noun> B is …\\n<question>? [Yes|No]"
* ``schema``    — the same shape with noun "Attribute"
* ``error``     — "[context line]\\nIs there an error in attr: value? [Yes|No]"
* ``impute``    — "attr: val. … attr_j? [answer]"
* ``transform`` — "Input: …\\nOutput: [answer]"

Anything unrecognized at the top of the prompt is kept as the instruction.
The parser is intentionally tolerant about wording (question text is
captured verbatim — the engine hashes it for format sensitivity) but
strict about the structural skeleton, mirroring how a real FM keys off
prompt structure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_ENTITY_A_RE = re.compile(r"^([A-Z][A-Za-z]*) A is (.*?)\.?$")
_ENTITY_B_RE = re.compile(r"^([A-Z][A-Za-z]*) B is (.*?)\.?$")
_QUESTION_ANSWER_RE = re.compile(r"^(.*\?)(?:\s+(Yes|No))?\s*$")
_ERROR_RE = re.compile(
    r"^(?P<question>Is there an error in (?P<attribute>[\w &/-]+?)"
    r":\s*(?P<value>.*?)\?)(?:\s+(?P<answer>Yes|No))?\s*$"
)
_IMPUTE_RE = re.compile(
    r"^(?P<context>.+?)\.\s+(?P<attribute>[\w &/-]+?)\?(?:\s+(?P<answer>.+?))?\s*$"
)
_INPUT_RE = re.compile(r"^Input:\s*(?P<value>.*)$")
_OUTPUT_RE = re.compile(r"^Output:\s*(?P<value>.*)$")
# "name: " style key prefixes inside a serialized entity.
_KEY_RE = re.compile(r"(?:^|\.\s+)([A-Za-z_][\w ]{0,30}?):\s")
# Ditto-style "COL name VAL value" rendering.
_DITTO_RE = re.compile(r"COL ([\w ]{1,30}?) VAL ")


def parse_serialized_entity(text: str) -> dict[str, str] | None:
    """Recover the attr → value dict from ``serialize_row`` output.

    Returns ``None`` when no ``attr:`` keys are present (the "w/o attribute
    names" ablation), in which case callers fall back to whole-text
    comparison.
    """
    ditto_matches = list(_DITTO_RE.finditer(text))
    if ditto_matches:
        entity: dict[str, str] = {}
        for i, match in enumerate(ditto_matches):
            start = match.end()
            end = (
                ditto_matches[i + 1].start()
                if i + 1 < len(ditto_matches) else len(text)
            )
            entity[match.group(1).strip()] = text[start:end].strip()
        return entity
    matches = list(_KEY_RE.finditer(text))
    if not matches:
        return None
    entity: dict[str, str] = {}
    for i, match in enumerate(matches):
        key = match.group(1).strip()
        start = match.end()
        if i + 1 < len(matches):
            end = matches[i + 1].start()
        else:
            end = len(text)
        value = text[start:end].strip()
        # Trim the pair separator left behind before the next key.
        value = value.rstrip(".").strip()
        entity[key] = value
    return entity


@dataclass(frozen=True)
class MatchExample:
    """One (pair, label) in a match/schema prompt; label None = query."""

    left_text: str
    right_text: str
    question: str
    noun: str
    label: bool | None


@dataclass(frozen=True)
class ErrorExampleParsed:
    """One error-detection block."""

    context_text: str
    attribute: str
    value: str
    question: str
    label: bool | None


@dataclass(frozen=True)
class ImputeExampleParsed:
    """One imputation block."""

    context_text: str
    attribute: str
    answer: str | None


@dataclass(frozen=True)
class TransformExampleParsed:
    """One Input/Output block."""

    source: str
    target: str | None


@dataclass
class ParsedPrompt:
    """The parser's view of a prompt."""

    task: str                      # match / schema / error / impute / transform / unknown
    instruction: str | None = None
    demonstrations: list = field(default_factory=list)
    query: object | None = None

    @property
    def question_text(self) -> str:
        """Wording used for the format-sensitivity hash."""
        query = self.query
        if isinstance(query, (MatchExample, ErrorExampleParsed)):
            return query.question
        return ""


def _parse_match_block(block: str) -> MatchExample | None:
    lines = block.split("\n")
    if len(lines) != 3:
        return None
    a = _ENTITY_A_RE.match(lines[0])
    b = _ENTITY_B_RE.match(lines[1])
    qa = _QUESTION_ANSWER_RE.match(lines[2])
    if not (a and b and qa):
        return None
    if a.group(1) != b.group(1):
        return None
    answer = qa.group(2)
    return MatchExample(
        left_text=a.group(2),
        right_text=b.group(2),
        question=qa.group(1),
        noun=a.group(1),
        label=None if answer is None else answer == "Yes",
    )


def _parse_error_block(block: str) -> ErrorExampleParsed | None:
    lines = block.split("\n")
    match = _ERROR_RE.match(lines[-1])
    if not match:
        return None
    context = "\n".join(lines[:-1]).strip()
    answer = match.group("answer")
    return ErrorExampleParsed(
        context_text=context,
        attribute=match.group("attribute").strip(),
        value=match.group("value").strip(),
        question=match.group("question"),
        label=None if answer is None else answer == "Yes",
    )


def _parse_impute_block(block: str) -> ImputeExampleParsed | None:
    if "\n" in block:
        return None
    match = _IMPUTE_RE.match(block)
    if not match:
        return None
    context = match.group("context").strip()
    # The context must look like a serialization, otherwise this is just a
    # sentence that happens to end with a question.
    if ":" not in context:
        return None
    return ImputeExampleParsed(
        context_text=context,
        attribute=match.group("attribute").strip(),
        answer=match.group("answer"),
    )


def _parse_transform_block(block: str) -> TransformExampleParsed | None:
    lines = block.split("\n")
    if len(lines) != 2:
        return None
    source = _INPUT_RE.match(lines[0])
    target = _OUTPUT_RE.match(lines[1])
    if not (source and target):
        return None
    target_value = target.group("value")
    return TransformExampleParsed(
        source=source.group("value"),
        target=target_value if target_value else None,
    )


def _classify_block(block: str):
    """Try each block shape; order matters (most specific first)."""
    parsed = _parse_transform_block(block)
    if parsed is not None:
        return "transform", parsed
    parsed = _parse_match_block(block)
    if parsed is not None:
        task = "schema" if parsed.noun.lower() == "attribute" else "match"
        return task, parsed
    parsed = _parse_error_block(block)
    if parsed is not None:
        return "error", parsed
    parsed = _parse_impute_block(block)
    if parsed is not None:
        return "impute", parsed
    return "unknown", block


def parse_prompt(prompt: str) -> ParsedPrompt:
    """Parse a complete prompt into instruction + demonstrations + query."""
    blocks = [block.strip() for block in prompt.split("\n\n") if block.strip()]
    if not blocks:
        return ParsedPrompt(task="unknown")

    instruction: str | None = None
    examples: list[tuple[str, object]] = []
    for i, block in enumerate(blocks):
        task, parsed = _classify_block(block)
        if task == "unknown":
            if i == 0:
                instruction = block
            # Unrecognized non-leading blocks are ignored, the way an LM
            # glosses over text it cannot use.
            continue
        examples.append((task, parsed))

    if not examples:
        return ParsedPrompt(task="unknown", instruction=instruction)

    # The dominant task is decided by the query (final block); demos of a
    # different shape are dropped.
    query_task, query = examples[-1]
    demonstrations = [
        parsed for task, parsed in examples[:-1] if task == query_task
    ]
    return ParsedPrompt(
        task=query_task,
        instruction=instruction,
        demonstrations=demonstrations,
        query=query,
    )
