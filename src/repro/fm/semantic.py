"""Semantic comparison — the simulated model's "understanding" of values.

The comparator turns two serialized entities into a similarity score in
``[0, 1]``.  Its fidelity is governed by the model profile:

* ``semantic_depth`` controls how well fuzzy natural-language variation
  (typos, abbreviations, re-orderings) is seen through, and how *reliably*
  jargon tokens (model numbers, version strings) are compared — low-depth
  models "misread" codes, reproducing the paper's observation that GPT-3
  struggles on datasets dense with product-specific identifiers.
* ``knowledge_floor`` gates alias knowledge (venue aliases, brand aliases,
  month abbreviations): a model can only use an equivalence it can recall.

All stochastic degradation is *deterministic*: pseudo-random draws are
keyed by a stable hash of (profile, values), so a given model gives the
same answer to the same prompt every time — like a temperature-0 LM.
"""

from __future__ import annotations

import hashlib
import re

from repro.fm.parsing import parse_serialized_entity
from repro.fm.profiles import ModelProfile
from repro.knowledge.base import KnowledgeBase
from repro.text.normalize import normalize_value
from repro.text.patterns import is_identifier_token, is_numeric
from repro.text.similarity import (
    jaccard,
    jaro_winkler,
    levenshtein,
    monge_elkan,
    overlap_coefficient,
)
from repro.text.tokenize import word_tokens

#: Symmetric equivalence relations the comparator consults.
ALIAS_RELATIONS = (
    "venue_alias", "brand_alias", "month_abbrev", "weekday_abbrev",
    "attr_synonym",
)

_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?")


def stable_unit(key: str) -> float:
    """Deterministic uniform draw in [0, 1) keyed by ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


def _is_jargon_token(token: str) -> bool:
    """Model numbers, version strings and other identifier-like tokens."""
    return is_identifier_token(token)


class SemanticComparator:
    """Profile-conditioned similarity over values and serialized entities."""

    def __init__(self, profile: ModelProfile, kb: KnowledgeBase):
        self.profile = profile
        self.kb = kb
        # Entity comparisons repeat heavily (every few-shot prompt rescores
        # its demonstrations); memoize by text pair.
        self._entity_cache: dict[tuple[str, str], float] = {}

    # -- building blocks ----------------------------------------------------

    def _alias_equivalent(self, a: str, b: str) -> bool:
        """True if the KB holds a recallable equivalence between a and b."""
        floor = self.profile.knowledge_floor
        b_folded = b.casefold()
        for relation in ALIAS_RELATIONS:
            obj = self.kb.lookup_one(relation, a, min_frequency=floor)
            if obj is not None and obj.casefold() == b_folded:
                return True
        return False

    @staticmethod
    def _numeric_similarity(a: str, b: str, self_depth_hint: float = 1.0) -> float | None:
        """Similarity of numeric-ish values; None if either isn't numeric.

        Decimal quantities (prices, percentages) compare by relative
        difference — a 5% price gap between listings is weak evidence
        against a match.  Pure integers (years, ids, zip codes) are
        identifiers: anything but equality is a near-contradiction.
        """
        clean_a = a.replace("$", "").replace(",", "").strip()
        clean_b = b.replace("$", "").replace(",", "").strip()
        nums_a = _NUMBER_RE.findall(clean_a)
        nums_b = _NUMBER_RE.findall(clean_b)
        if len(nums_a) != 1 or len(nums_b) != 1:
            return None
        if not (is_numeric(clean_a) and is_numeric(clean_b)):
            return None
        if "." not in clean_a and "." not in clean_b:
            if clean_a == clean_b:
                return 1.0
            # A single slipped digit ("20066" for "2006") reads as a typo
            # to a deep model, not as a different identifier.
            if (
                self_depth_hint >= 0.6
                and levenshtein(clean_a, clean_b, max_distance=1) <= 1
            ):
                return 0.8
            return 0.15
        value_a, value_b = float(nums_a[0]), float(nums_b[0])
        if value_a == value_b:
            return 1.0
        scale = max(abs(value_a), abs(value_b))
        if scale == 0:
            return 1.0
        relative = abs(value_a - value_b) / scale
        return max(0.0, 1.0 - 4.0 * relative)

    def _natural_similarity(self, tokens_a: list[str], tokens_b: list[str]) -> float:
        """Fuzzy similarity over non-jargon tokens, blurred by depth.

        A deep model sees through typos and word reordering (Monge-Elkan
        over Jaro-Winkler); a shallow model is closer to exact-set overlap.
        """
        depth = self.profile.semantic_depth

        def near_exact(a: str, b: str) -> float:
            # A token either has a recognizable partner (typo distance) or
            # it doesn't; sub-threshold resemblance is noise, not signal.
            # Single letters match words they initialize ("a." vs "ada").
            if len(a) == 1 or len(b) == 1:
                shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
                return 0.85 if longer.startswith(shorter) else 0.0
            score = jaro_winkler(a, b)
            return score if score >= 0.82 else 0.0

        fuzzy = monge_elkan(tokens_a, tokens_b, inner=near_exact)
        exact = jaccard(tokens_a, tokens_b)
        return depth * fuzzy + (1.0 - depth) * exact

    def _jargon_similarity(self, tokens_a: list[str], tokens_b: list[str]) -> float:
        """Identifier comparison with depth-scaled perception noise."""
        true_overlap = overlap_coefficient(tokens_a, tokens_b)
        blur = (1.0 - self.profile.semantic_depth) * 1.2
        if blur <= 0:
            return true_overlap
        # Order-independent key: misreading "11.0 vs 12.0" must equal
        # misreading "12.0 vs 11.0" (value similarity is symmetric).
        sides = sorted((str(sorted(tokens_a)), str(sorted(tokens_b))))
        key = f"{self.profile.name}|jargon|{sides[0]}|{sides[1]}"
        noise = (stable_unit(key) - 0.5) * blur
        return min(1.0, max(0.0, true_overlap + noise))

    # -- public API -----------------------------------------------------------

    def value_similarity(self, a: str | None, b: str | None) -> float:
        """Similarity of two cell values in [0, 1]."""
        if not a and not b:
            return 1.0
        if not a or not b:
            return 0.0
        norm_a, norm_b = normalize_value(a), normalize_value(b)
        if norm_a == norm_b:
            return 1.0
        if self._alias_equivalent(a.strip(), b.strip()) or self._alias_equivalent(
            norm_a, norm_b
        ):
            return 0.97
        numeric = self._numeric_similarity(a, b, self.profile.semantic_depth)
        if numeric is not None:
            return numeric

        tokens_a, tokens_b = word_tokens(norm_a), word_tokens(norm_b)
        jargon_a = [token for token in tokens_a if _is_jargon_token(token)]
        jargon_b = [token for token in tokens_b if _is_jargon_token(token)]
        natural_a = [token for token in tokens_a if not _is_jargon_token(token)]
        natural_b = [token for token in tokens_b if not _is_jargon_token(token)]

        components: list[tuple[float, float]] = []  # (similarity, weight)
        if natural_a or natural_b:
            jargon_fraction = (len(jargon_a) + len(jargon_b)) / max(
                1, len(tokens_a) + len(tokens_b)
            )
            natural = self._natural_similarity(natural_a, natural_b)
            # Containment reading: "granite peak brewing hazy trail" IS
            # "hazy trail" with the brewery prefixed.  Deep models see
            # through such decoration.
            if self.profile.semantic_depth >= 0.55 and natural_a and natural_b:
                set_a, set_b = set(natural_a), set(natural_b)
                smaller = min(len(set_a), len(set_b))
                if smaller >= 2 and (set_a <= set_b or set_b <= set_a):
                    natural = max(natural, 0.93)
            components.append((natural, 1.0 - 0.5 * jargon_fraction))
        if jargon_a and jargon_b:
            # Identifiers are decisive when both sides carry them.
            components.append((self._jargon_similarity(jargon_a, jargon_b), 1.0))
        if not components:
            return 0.0
        total_weight = sum(weight for _sim, weight in components)
        return sum(sim * weight for sim, weight in components) / total_weight

    def infer_brand(self, text: str) -> str | None:
        """Recallable brand mentioned in ``text``, if any.

        Scans the knowledge base's brand inventory (``brand_category``
        subjects plus aliases) for a token-level mention, honouring the
        knowledge floor.
        """
        floor = self.profile.knowledge_floor
        tokens = set(word_tokens(normalize_value(text)))
        if not tokens:
            return None
        for brand in self.kb.subjects("brand_category"):
            fact = self.kb.lookup("brand_category", brand)
            if not fact or fact[0].frequency < floor:
                continue
            brand_tokens = set(word_tokens(normalize_value(brand)))
            if brand_tokens and brand_tokens <= tokens:
                return brand
            alias = self.kb.lookup_one("brand_alias", brand, min_frequency=floor)
            if alias is not None:
                alias_tokens = set(word_tokens(normalize_value(alias)))
                if alias_tokens and alias_tokens <= tokens:
                    return brand
        return None

    def entity_similarity(self, left_text: str, right_text: str) -> float:
        """Similarity of two serialized entities.

        Parses ``attr: val`` structure when present (attribute-aligned
        comparison); otherwise compares whole strings — which is exactly
        why the paper's "w/o attribute names" ablation loses accuracy.
        """
        cache_key = (left_text, right_text)
        cached = self._entity_cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._entity_similarity_uncached(left_text, right_text)
        if len(self._entity_cache) < 200_000:
            self._entity_cache[cache_key] = result
        return result

    def _entity_similarity_uncached(self, left_text: str, right_text: str) -> float:
        left = parse_serialized_entity(left_text)
        right = parse_serialized_entity(right_text)
        if left is None or right is None:
            # No attribute names: the model must guess which tokens align
            # with which, and the comparison gets noticeably noisier (the
            # paper's "w/o attr names" ablation).
            base = self.value_similarity(left_text, right_text)
            wobble = (
                stable_unit(f"flat|{self.profile.name}|{left_text}|{right_text}")
                - 0.5
            ) * 0.4
            return min(1.0, max(0.0, base + wobble))

        scored: list[tuple[float, float]] = []  # (similarity, weight)
        shared = [attr for attr in left if attr in right]
        left_blob = " ".join(value for value in left.values() if value)
        right_blob = " ".join(value for value in right.values() if value)
        for attribute in shared:
            value_left, value_right = left[attribute], right[attribute]
            # Identity-bearing attributes (names, titles) dominate the
            # verdict the way they dominate a human's.
            folded = attribute.casefold()
            weight = 2.0 if ("name" in folded or "title" in folded) else 1.0
            if value_left and value_right:
                scored.append(
                    (self.value_similarity(value_left, value_right), weight)
                )
                continue
            if not value_left and not value_right:
                continue
            # One side is NULL: a deep model tries cross-attribute reasoning
            # ("the missing manufacturer appears inside the other title").
            present = value_left or value_right
            other_blob = right_blob if value_left else left_blob
            if self.profile.semantic_depth >= 0.6 and present:
                present_tokens = set(word_tokens(normalize_value(present)))
                blob_tokens = set(word_tokens(normalize_value(other_blob)))
                if present_tokens and present_tokens <= blob_tokens:
                    scored.append((0.9, weight))
                    continue
            if weight > 1.0:
                # The identity-bearing field is missing on one side and the
                # cross-attribute reading failed: genuine uncertainty.
                scored.append((0.5, weight))
        # Orphan attributes (present on one side only) are ignored, the way
        # a reader glosses over fields the other listing simply lacks.
        if not scored:
            return self.value_similarity(left_blob, right_blob)
        # One clearly contradictory attribute outweighs agreement elsewhere
        # (different authors on near-identical titles = different paper), so
        # the verdict leans toward the worst attribute, not the average.
        total_weight = sum(weight for _s, weight in scored)
        mean_score = sum(s * weight for s, weight in scored) / total_weight
        min_score = min(s for s, _w in scored)
        return 0.45 * min_score + 0.55 * mean_score

    def entity_features(self, left_text: str, right_text: str) -> dict[str, float]:
        """Per-attribute similarity features (used by finetuning heads)."""
        left = parse_serialized_entity(left_text) or {"text": left_text}
        right = parse_serialized_entity(right_text) or {"text": right_text}
        features: dict[str, float] = {}
        for attribute in left:
            if attribute in right:
                features[f"sim_{attribute}"] = self.value_similarity(
                    left[attribute], right[attribute]
                )
        features["sim_overall"] = self.entity_similarity(left_text, right_text)
        return features
